//! # proptest (offline stand-in)
//!
//! This workspace builds in environments without access to crates.io, so the
//! external `proptest` dependency is replaced by this minimal, API-compatible
//! stand-in. It implements the subset of the proptest 1.x interface the
//! workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive` and `boxed`,
//! * strategies for integer/bool [`strategy::any`], integer ranges, tuples (up to six
//!   elements) and [`collection::vec`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros,
//! * a [`test_runner::TestRunner`] driven by [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from the real crate are deliberate simplifications: cases are
//! generated from a per-test deterministic seed (derived from the test name,
//! overridable with the `PROPTEST_SEED` environment variable), and failing
//! inputs are reported but not shrunk. Determinism makes every CI failure
//! reproducible locally with no corpus directory.
//!
//! [`ProptestConfig`]: test_runner::ProptestConfig
//! [`proptest!`]: crate::proptest
//! [`prop_oneof!`]: crate::prop_oneof
//! [`prop_assert!`]: crate::prop_assert
//! [`prop_assert_eq!`]: crate::prop_assert_eq
//! [`prop_assume!`]: crate::prop_assume

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares a block of property tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)*);
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(stringify!($name), &strategy, |($($arg,)*)| {
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @fns ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Picks one of several strategies with equal probability.
///
/// All arms must produce the same value type; each arm is boxed into a
/// [`strategy::Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test, failing the current case with
/// both values in the message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right,
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
