//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's property tests use.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree or shrinking: a strategy
/// is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it and
    /// draws the final value from that strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves and `f` maps
    /// a strategy for depth-`d` values to one for depth-`d + 1` values.
    ///
    /// `depth` bounds the recursion; `_desired_size` and `_expected_branch`
    /// are accepted for API compatibility and ignored. At every level the
    /// result mixes in the leaf strategy so that generated structures vary in
    /// depth instead of always reaching the bound.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = Union::new(vec![leaf.clone(), f(current).boxed()]).boxed();
        }
        current
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type with a canonical "generate any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates one uniformly distributed value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, W> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> W,
{
    type Value = W;

    fn new_value(&self, rng: &mut StdRng) -> W {
        (self.f)(self.inner.new_value(rng))
    }
}

/// The strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A cheaply clonable, type-erased strategy handle.
///
/// The real proptest uses `Box<dyn Strategy>`; an `Rc` lets
/// [`Strategy::prop_recursive`] closures clone the inner handle freely.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Picks uniformly among boxed alternatives; the [`prop_oneof!`] strategy.
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union of the given alternatives. Panics if empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.alternatives.len());
        self.alternatives[index].new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}
