//! Collection strategies, mirroring `proptest::collection`.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec()`]: an exact length or a range of lengths.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn pick_len(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Generates a `Vec` whose elements are drawn from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.pick_len(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
