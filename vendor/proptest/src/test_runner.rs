//! The test runner driving [`proptest!`] blocks.
//!
//! [`proptest!`]: crate::proptest

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Configuration for a [`TestRunner`], mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The outcome of a single failed or discarded test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a [`prop_assume!`] precondition.
    ///
    /// [`prop_assume!`]: crate::prop_assume
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Runs a property test: draws inputs from a strategy and applies the test
/// closure until the configured number of cases pass.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `config.cases` generated inputs, panicking on the
    /// first failure.
    ///
    /// The RNG seed is derived from the test name (so every test draws a
    /// distinct, deterministic stream) unless the `PROPTEST_SEED`
    /// environment variable overrides it. Cases rejected by `prop_assume!`
    /// are not counted; if the rejection count exceeds 100× the case count
    /// the run panics (like the real proptest's "too many global rejects"),
    /// so an always-false precondition cannot produce a vacuous green test.
    pub fn run<S, F>(&mut self, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => fnv1a(name.as_bytes()),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = u64::from(self.config.cases) * 100;
        while passed < self.config.cases {
            let value = strategy.new_value(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest {name}: too many prop_assume! rejects \
                         ({rejected} rejects, {passed}/{} cases passed, seed {seed})",
                        self.config.cases
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest {name} failed at case {passed} (seed {seed}):\n{message}\n\
                         rerun with PROPTEST_SEED={seed} to reproduce"
                    );
                }
            }
        }
    }
}

/// FNV-1a, used to derive a per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
