//! # rand (offline stand-in)
//!
//! This workspace builds in environments without access to crates.io, so the
//! external `rand` dependency is replaced by this minimal, API-compatible
//! stand-in. It implements the subset of the rand 0.8 interface the
//! workspace actually uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_bool`] and [`Rng::gen_range`] over the integer
//!   ranges the generators need.
//!
//! The generator is SplitMix64: deterministic, fast, and statistically solid
//! for simulation-pattern and workload generation (it is the seeding
//! generator of xoshiro). Determinism is a feature here — every workload,
//! pattern set and property test in the repository is reproducible from its
//! seed alone, on every platform.

#![forbid(unsafe_code)]

/// Concrete random number generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard RNG of this stand-in: SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this generator is *stable across
    /// versions and platforms*: the same seed always produces the same
    /// stream, which the workload generators rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }

        /// Advances the SplitMix64 state and returns the next 64-bit output.
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A type that can be created from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_state(seed)
    }
}

/// A sample-able value type, mirroring the `Standard` distribution of rand.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// A half-open or inclusive range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, like the real rand.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws one value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;

    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 random bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "heads={heads}");
    }
}
