//! # criterion (offline stand-in)
//!
//! This workspace builds in environments without access to crates.io, so the
//! external `criterion` dependency is replaced by this minimal stand-in. It
//! implements the subset of the criterion 0.5 interface the `bench` crate's
//! benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! on top of a plain wall-clock sampler.
//!
//! Instead of criterion's statistical analysis it reports the minimum, mean
//! and maximum of `sample_size` samples per benchmark, where each sample
//! times a small adaptive batch of iterations. That is enough to track the
//! relative cost of the simulators and sweepers over time; the `table1` /
//! `table2` binaries in the `bench` crate remain the primary measurement
//! harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An identifier for `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    ///
    /// Each sample runs an adaptive batch of iterations sized so very fast
    /// routines are still timed above clock resolution.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size targeting ~2 ms per sample, capped so a
        // slow routine runs exactly once per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{label}: no samples (closure never called iter)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {group}/{label}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
