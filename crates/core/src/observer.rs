//! Progress observation for sweeping runs.
//!
//! An [`Observer`] receives the engine's events as they happen: round
//! starts, SAT calls, class refinements, merges and counter-examples.  Every
//! method has a no-op default, so an observer implements only what it needs
//! (a progress bar wants [`Observer::on_round`] and [`Observer::on_merge`];
//! a dashboard wants everything).
//!
//! [`StatsObserver`] is the built-in observer that counts events; the
//! engine derives the countable fields of [`SweepReport`] from exactly
//! these events, so an external `StatsObserver` attached to a run sees the
//! same numbers the run returns.

use crate::checkpoint::SweepCheckpoint;
use crate::pipeline::PassReport;
use crate::report::SweepReport;
use netlist::{Lit, NodeId};

/// Outcome of a single sweeping SAT query, as seen by observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatCallOutcome {
    /// Satisfiable: the pair was disproved and a counter-example follows.
    Sat,
    /// Unsatisfiable: the merge (or constant) was proved.
    Unsat,
    /// The conflict budget ran out (`unDET` in the paper).
    Undetermined,
}

/// Receives engine events during a sweeping run.
///
/// All methods default to no-ops.  Observers are passed to
/// [`crate::Sweeper::observer`] / [`crate::Pipeline::observer`] by mutable
/// reference, so the caller keeps ownership and can inspect the observer
/// after the run.
pub trait Observer {
    /// A sweep round starts: `round` is the zero-based round index (a plain
    /// [`crate::Sweeper`] run is round 0; [`crate::Pipeline`] and fixpoint
    /// sweeps advance it per pass), `gates` the AND count of the network
    /// being swept.
    fn on_round(&mut self, round: usize, gates: usize) {
        let _ = (round, gates);
    }

    /// A counter-example refined the candidate classes: `num_classes`
    /// classes remain and `moved` members changed class or were dropped.
    fn on_class_refined(&mut self, num_classes: usize, moved: usize) {
        let _ = (num_classes, moved);
    }

    /// A sweeping SAT query finished (pattern-generation queries are not
    /// reported, mirroring the paper's Table II accounting).
    fn on_sat_call(&mut self, outcome: SatCallOutcome) {
        let _ = outcome;
    }

    /// `candidate` was proved equal to `replacement` and merged away.  A
    /// constant `replacement` ([`Lit::is_constant`]) is a constant
    /// substitution, anything else a pairwise merge.
    fn on_merge(&mut self, candidate: NodeId, replacement: Lit) {
        let _ = (candidate, replacement);
    }

    /// A satisfiable SAT query produced this distinguishing input
    /// assignment (one `bool` per primary input).
    fn on_counterexample(&mut self, assignment: &[bool]) {
        let _ = assignment;
    }

    /// Exhaustive STP window simulation settled the pair `(candidate,
    /// driver)` without a SAT call: `equivalent` tells whether the pair was
    /// proved or disproved.
    fn on_simulation_verdict(&mut self, candidate: NodeId, driver: NodeId, equivalent: bool) {
        let _ = (candidate, driver, equivalent);
    }

    /// A counter-example was resimulated incrementally: fresh values were
    /// requested for `targets` candidate nodes, `resimulated` AND nodes were
    /// actually evaluated, and `skipped` AND nodes were left alone (a full
    /// `simulate_all` pass would have evaluated them too).
    fn on_resimulation(&mut self, targets: usize, resimulated: usize, skipped: usize) {
        let _ = (targets, resimulated, skipped);
    }

    /// A parallel SAT-proving batch was committed at its barrier: `batch` is
    /// the zero-based batch index within the round, `committed` the number
    /// of speculative results accepted at the barrier, `settled` how many of
    /// those finished their candidate (a committed counter-example refines
    /// classes but leaves its candidate pending), and `conflicts` the number
    /// of speculative SAT calls discarded because an earlier commit in the
    /// same batch invalidated them.  The batch sequence — and therefore this
    /// event stream — is identical for every
    /// [`crate::SweepConfig::sat_parallelism`], batch policy and shard
    /// count.
    fn on_batch_proved(
        &mut self,
        batch: usize,
        committed: usize,
        settled: usize,
        conflicts: usize,
    ) {
        let _ = (batch, committed, settled, conflicts);
    }

    /// A periodic checkpoint was captured (every
    /// [`crate::SweepConfig::checkpoint_interval`] committed candidates
    /// and/or every [`crate::SweepConfig::checkpoint_interval_millis`]
    /// milliseconds of wall-clock time, whichever fires first).  The
    /// checkpoint describes the session state at a candidate boundary:
    /// persist it and a later [`crate::Sweeper::resume_from`] continues the
    /// run with results identical to an uninterrupted sweep.  `encoded` is
    /// the [`SweepCheckpoint::encode`] serialisation, produced exactly once
    /// per emission — observers that spill to disk write these bytes
    /// instead of re-encoding, and observers that meter checkpoint cost
    /// read `encoded.len()`.  Candidate-count checkpoints fire at
    /// deterministic points, so their event stream is identical for every
    /// `sat_parallelism` and `num_threads`; wall-clock checkpoints fire at
    /// time-dependent points, but checkpoints never change the sweep, so
    /// the *results* stay byte-identical either way.
    fn on_checkpoint(&mut self, checkpoint: &SweepCheckpoint, encoded: &[u8]) {
        let _ = (checkpoint, encoded);
    }

    /// A [`crate::PassManager`] pass is about to run: `name` is the pass
    /// name (e.g. `"rewrite"`), `gates` the AND count entering the pass.
    /// Sub-reports of composite passes (fixpoint rounds, `dc2` iterations)
    /// do not re-trigger this hook — one start/end bracket per scheduled
    /// pass.
    fn on_pass_start(&mut self, name: &str, gates: usize) {
        let _ = (name, gates);
    }

    /// A [`crate::PassManager`] pass finished with this [`PassReport`].
    fn on_pass_end(&mut self, report: &PassReport) {
        let _ = report;
    }

    /// The pattern set was compacted (every
    /// [`crate::SweepConfig::compact_every`] counter-examples): `kept`
    /// pattern columns survived, `dropped` dead columns — columns no
    /// surviving candidate class disagrees on — were removed.  Compaction
    /// happens at deterministic points and never changes the sweep result,
    /// so this event stream is identical for every thread count.
    fn on_compaction(&mut self, kept: usize, dropped: usize) {
        let _ = (kept, dropped);
    }
}

/// The no-op observer (every method keeps its default body).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Counts engine events; the source of the countable [`SweepReport`]
/// fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsObserver {
    /// Number of rounds started.
    pub rounds: usize,
    /// Pairwise merges applied.
    pub merges: usize,
    /// Constant substitutions applied.
    pub constants: usize,
    /// Satisfiable sweeping SAT calls.
    pub sat_calls_sat: u64,
    /// Unsatisfiable sweeping SAT calls.
    pub sat_calls_unsat: u64,
    /// Sweeping SAT calls that ran out of conflicts.
    pub sat_calls_undet: u64,
    /// Pairs proved by exhaustive window simulation alone.
    pub proved_by_simulation: u64,
    /// Pairs disproved by exhaustive window simulation alone.
    pub disproved_by_simulation: u64,
    /// Counter-examples simulated.
    pub counterexamples: u64,
    /// Class refinements triggered.
    pub refinements: u64,
    /// Incremental resimulation events.
    pub resim_events: u64,
    /// AND nodes evaluated by incremental resimulation, over all events.
    pub resim_nodes: u64,
    /// AND nodes incremental resimulation skipped, over all events.
    pub resim_skipped_nodes: u64,
    /// Parallel SAT-proving batches committed.
    pub sat_batches: u64,
    /// Speculative results accepted at batch commit barriers, summed.
    pub sat_batch_committed: u64,
    /// Speculative SAT calls discarded at batch commit barriers.
    pub sat_parallel_conflicts: u64,
    /// Periodic checkpoints captured (not part of [`SweepReport`]: a
    /// resumed run re-emits its own checkpoints, while the report counters
    /// stay identical to an uninterrupted run).
    pub checkpoints: u64,
    /// Total serialised checkpoint bytes across those emissions (the sum of
    /// `encoded.len()` seen by [`Observer::on_checkpoint`]) — the cost the
    /// cheap-checkpoint encoding keeps down.  Like `checkpoints`, not part
    /// of [`SweepReport`].
    pub checkpoint_bytes: u64,
    /// Pipeline passes started (one per [`Observer::on_pass_start`]; not
    /// part of [`SweepReport`]).
    pub passes: u64,
    /// Pattern compactions performed.
    pub compactions: u64,
    /// Dead pattern columns dropped, summed over compactions.
    pub patterns_dropped: u64,
}

impl StatsObserver {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        StatsObserver::default()
    }

    /// Total sweeping SAT calls of any outcome.
    pub fn sat_calls_total(&self) -> u64 {
        self.sat_calls_sat + self.sat_calls_unsat + self.sat_calls_undet
    }

    /// The counted fields as a [`SweepReport`] (gate counts and times are
    /// zero — the session fills those from its own measurements).
    pub fn counts(&self) -> SweepReport {
        SweepReport {
            merges: self.merges,
            constants: self.constants,
            sat_calls_sat: self.sat_calls_sat,
            sat_calls_unsat: self.sat_calls_unsat,
            sat_calls_undet: self.sat_calls_undet,
            sat_calls_total: self.sat_calls_total(),
            proved_by_simulation: self.proved_by_simulation,
            disproved_by_simulation: self.disproved_by_simulation,
            resim_events: self.resim_events,
            resim_nodes: self.resim_nodes,
            resim_skipped_nodes: self.resim_skipped_nodes,
            sat_batches: self.sat_batches,
            sat_batch_committed: self.sat_batch_committed,
            sat_parallel_conflicts: self.sat_parallel_conflicts,
            patterns_dropped: self.patterns_dropped,
            ..SweepReport::default()
        }
    }
}

impl Observer for StatsObserver {
    fn on_round(&mut self, _round: usize, _gates: usize) {
        self.rounds += 1;
    }

    fn on_class_refined(&mut self, _num_classes: usize, _moved: usize) {
        self.refinements += 1;
    }

    fn on_sat_call(&mut self, outcome: SatCallOutcome) {
        match outcome {
            SatCallOutcome::Sat => self.sat_calls_sat += 1,
            SatCallOutcome::Unsat => self.sat_calls_unsat += 1,
            SatCallOutcome::Undetermined => self.sat_calls_undet += 1,
        }
    }

    fn on_merge(&mut self, _candidate: NodeId, replacement: Lit) {
        if replacement.is_constant() {
            self.constants += 1;
        } else {
            self.merges += 1;
        }
    }

    fn on_counterexample(&mut self, _assignment: &[bool]) {
        self.counterexamples += 1;
    }

    fn on_simulation_verdict(&mut self, _candidate: NodeId, _driver: NodeId, equivalent: bool) {
        if equivalent {
            self.proved_by_simulation += 1;
        } else {
            self.disproved_by_simulation += 1;
        }
    }

    fn on_resimulation(&mut self, _targets: usize, resimulated: usize, skipped: usize) {
        self.resim_events += 1;
        self.resim_nodes += resimulated as u64;
        self.resim_skipped_nodes += skipped as u64;
    }

    fn on_batch_proved(
        &mut self,
        _batch: usize,
        committed: usize,
        _settled: usize,
        conflicts: usize,
    ) {
        self.sat_batches += 1;
        self.sat_batch_committed += committed as u64;
        self.sat_parallel_conflicts += conflicts as u64;
    }

    fn on_checkpoint(&mut self, _checkpoint: &SweepCheckpoint, encoded: &[u8]) {
        self.checkpoints += 1;
        self.checkpoint_bytes += encoded.len() as u64;
    }

    fn on_pass_start(&mut self, _name: &str, _gates: usize) {
        self.passes += 1;
    }

    fn on_compaction(&mut self, _kept: usize, dropped: usize) {
        self.compactions += 1;
        self.patterns_dropped += dropped as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_observer_counts_every_event_kind() {
        let mut stats = StatsObserver::new();
        stats.on_round(0, 100);
        stats.on_sat_call(SatCallOutcome::Sat);
        stats.on_sat_call(SatCallOutcome::Unsat);
        stats.on_sat_call(SatCallOutcome::Unsat);
        stats.on_sat_call(SatCallOutcome::Undetermined);
        stats.on_merge(7, Lit::positive(3));
        stats.on_merge(9, Lit::TRUE);
        stats.on_counterexample(&[true, false]);
        stats.on_class_refined(4, 2);
        stats.on_simulation_verdict(5, 3, true);
        stats.on_simulation_verdict(6, 3, false);
        stats.on_resimulation(3, 5, 95);
        stats.on_batch_proved(0, 5, 4, 0);
        stats.on_batch_proved(1, 2, 2, 3);
        stats.on_compaction(96, 160);

        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.merges, 1);
        assert_eq!(stats.constants, 1);
        assert_eq!(stats.sat_calls_sat, 1);
        assert_eq!(stats.sat_calls_unsat, 2);
        assert_eq!(stats.sat_calls_undet, 1);
        assert_eq!(stats.sat_calls_total(), 4);
        assert_eq!(stats.counterexamples, 1);
        assert_eq!(stats.refinements, 1);
        assert_eq!(stats.proved_by_simulation, 1);
        assert_eq!(stats.disproved_by_simulation, 1);
        assert_eq!(stats.resim_events, 1);
        assert_eq!(stats.resim_nodes, 5);
        assert_eq!(stats.resim_skipped_nodes, 95);
        assert_eq!(stats.sat_batches, 2);
        assert_eq!(stats.sat_batch_committed, 7);
        assert_eq!(stats.sat_parallel_conflicts, 3);
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.patterns_dropped, 160);

        let report = stats.counts();
        assert_eq!(report.merges, 1);
        assert_eq!(report.constants, 1);
        assert_eq!(report.sat_calls_total, 4);
        assert_eq!(report.resim_events, 1);
        assert_eq!(report.resim_nodes, 5);
        assert_eq!(report.resim_skipped_nodes, 95);
        assert_eq!(report.sat_batches, 2);
        assert_eq!(report.sat_batch_committed, 7);
        assert_eq!(report.sat_parallel_conflicts, 3);
        assert_eq!(report.patterns_dropped, 160);
        assert_eq!(report.gates_before, 0, "gate counts belong to the session");
    }

    #[test]
    fn default_observer_methods_are_noops() {
        let mut noop = NoopObserver;
        noop.on_round(0, 10);
        noop.on_sat_call(SatCallOutcome::Sat);
        noop.on_merge(1, Lit::FALSE);
        noop.on_counterexample(&[]);
        noop.on_class_refined(0, 0);
        noop.on_simulation_verdict(1, 2, true);
        noop.on_resimulation(0, 0, 0);
        noop.on_batch_proved(0, 0, 0, 0);
    }
}
