//! Multi-pass optimisation runs.
//!
//! A [`PassManager`] (aliased as [`Pipeline`] for the original API) owns a
//! sequence of boxed [`Pass`]es — sweeps, structural cleanups, rewriting,
//! verification — and executes them in order inside one budgeted,
//! observable run:
//!
//! ```
//! use netlist::Aig;
//! use stp_sweep::{Engine, Pipeline, SweepConfig};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! let outcome = Pipeline::new(SweepConfig::fast())
//!     .sweep(Engine::Stp)
//!     .strash()
//!     .sweep(Engine::Stp)
//!     .verify()
//!     .run(&aig)
//!     .expect("pipeline runs and verifies");
//! assert!(outcome.aig.num_ands() <= aig.num_ands());
//! assert_eq!(outcome.passes.len(), 4);
//! ```
//!
//! The per-pass [`PassReport`]s record where the gates and the time went;
//! the aggregate [`PipelineResult::report`] is the fold of all sweep passes
//! via [`crate::SweepReport::merge`].  Beyond the builder verbs, arbitrary
//! pass sequences come from [`PassManager::pass`] (any [`Pass`]
//! implementation) or from a textual script via [`PassManager::parse`] /
//! [`PassManager::with_script`] (see [`crate::passes::parse_script`]).

use crate::budget::Budget;
use crate::error::SweepError;
use crate::observer::Observer;
use crate::passes::{
    ConstantFold, DanglingGc, Dc2, ParsePassError, Pass, PassCtx, Rewrite, Strash, Sweep,
    SweepToFixpoint, Verify,
};
use crate::report::{SweepConfig, SweepReport, SweepResult};
use crate::session::Engine;
use netlist::Aig;
use std::time::{Duration, Instant};

/// Measurements of a single executed pass.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Human-readable pass name (`"sweep(stp)"`, `"strash"`, `"verify"`,
    /// `"sweep(stp) round 2"`, `"dc2[1] rewrite"` …).
    pub name: String,
    /// AND gates entering the pass.
    pub gates_before: usize,
    /// AND gates leaving the pass.
    pub gates_after: usize,
    /// The full sweep report, for sweep passes.
    pub report: Option<SweepReport>,
    /// Wall-clock time of the pass.
    pub time: Duration,
    /// Pass-specific counters (name, value) in a pass-chosen, deterministic
    /// order — e.g. `rewrites` for [`Rewrite`], `iterations` for [`Dc2`].
    pub counters: Vec<(String, u64)>,
}

impl PassReport {
    /// Looks up a pass-specific counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// The outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The final network.
    pub aig: Aig,
    /// Aggregate of all sweep passes (see [`SweepReport::merge`]).
    pub report: SweepReport,
    /// Per-pass measurements, in execution order.  Composite passes
    /// contribute several entries (per-round reports of a fixpoint sweep,
    /// per-iteration sub-reports of [`Dc2`]) followed by their own.
    pub passes: Vec<PassReport>,
}

impl PipelineResult {
    /// Collapses the pipeline outcome into the single-sweep result shape.
    pub fn into_sweep_result(self) -> SweepResult {
        SweepResult {
            aig: self.aig,
            report: self.report,
        }
    }
}

/// Builder and executor of a multi-pass optimisation run.
///
/// Passes run in the order they were added.  One [`Budget`] spans the whole
/// run: each sweep pass receives whatever remains, and an exhausted budget
/// is also checked *before* every structural/verify pass (a running
/// structural pass is not interrupted mid-pass).  One [`Observer`] sees
/// every sweep round with an increasing round index, plus an
/// [`Observer::on_pass_start`] / [`Observer::on_pass_end`] bracket around
/// each scheduled pass.
pub struct PassManager<'o> {
    passes: Vec<Box<dyn Pass>>,
    config: SweepConfig,
    budget: Budget,
    observer: Option<&'o mut dyn Observer>,
    verify_conflict_limit: u64,
}

/// The original name of [`PassManager`], kept so existing pipeline callers
/// compile unchanged.
pub type Pipeline<'o> = PassManager<'o>;

impl Default for PassManager<'_> {
    fn default() -> Self {
        PassManager::new(SweepConfig::default())
    }
}

impl<'o> PassManager<'o> {
    /// Starts an empty pass sequence with the given sweep configuration.
    pub fn new(config: SweepConfig) -> Self {
        PassManager {
            passes: Vec::new(),
            config,
            budget: Budget::unlimited(),
            observer: None,
            verify_conflict_limit: 500_000,
        }
    }

    /// Builds a pass manager with the default configuration from a textual
    /// pass script (see [`crate::passes::parse_script`] for the grammar).
    pub fn parse(script: &str) -> Result<Self, ParsePassError> {
        PassManager::new(SweepConfig::default()).with_script(script)
    }

    /// Appends every pass of a textual script.
    pub fn with_script(mut self, script: &str) -> Result<Self, ParsePassError> {
        self.passes.extend(crate::passes::parse_script(script)?);
        Ok(self)
    }

    /// Appends an arbitrary pass.
    pub fn pass(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Appends a single sweep round of `engine`.
    pub fn sweep(self, engine: Engine) -> Self {
        self.pass(Box::new(Sweep::new(engine)))
    }

    /// Appends a fixpoint sweep: rounds of `engine` until no further gate is
    /// removed, capped at `max_rounds` (at least one round always runs).
    pub fn sweep_to_fixpoint(self, engine: Engine, max_rounds: usize) -> Self {
        self.pass(Box::new(SweepToFixpoint::new(engine, max_rounds)))
    }

    /// Appends a structural-hashing cleanup pass.  Merging can expose new
    /// structural sharing; a `strash` between sweeps lets the next round
    /// find it.
    pub fn strash(self) -> Self {
        self.pass(Box::new(Strash))
    }

    /// Appends an in-place constant/unit-literal folding pass.
    pub fn constant_fold(self) -> Self {
        self.pass(Box::new(ConstantFold))
    }

    /// Appends a structure-preserving dead-node sweep.
    pub fn dangling_gc(self) -> Self {
        self.pass(Box::new(DanglingGc))
    }

    /// Appends a cut-based NPN rewriting pass.
    pub fn rewrite(self) -> Self {
        self.pass(Box::new(Rewrite::new()))
    }

    /// Appends a `dc2` loop (rewrite → strash → sweep until the node count
    /// stops improving), capped at `max_iters` iterations.
    pub fn dc2(self, max_iters: usize) -> Self {
        self.pass(Box::new(Dc2::new(max_iters)))
    }

    /// Appends a verification pass: the current network is CEC-checked
    /// against the run *input*; a mismatch aborts the run with
    /// [`SweepError::Inconsistent`].
    pub fn verify(self) -> Self {
        self.pass(Box::new(Verify))
    }

    /// Sets the SAT conflict budget of `verify` passes (default 500 000).
    pub fn verify_conflict_limit(mut self, limit: u64) -> Self {
        self.verify_conflict_limit = limit;
        self
    }

    /// Sets the budget spanning the whole run.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches an observer to every pass (and to every sweep round).
    pub fn observer(mut self, observer: &'o mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Executes the pass sequence on `aig`.
    ///
    /// On budget exhaustion, the aggregate partial result (the merges of
    /// every completed and the truncated pass) is returned inside
    /// [`SweepError::BudgetExhausted`].
    pub fn run(mut self, aig: &'o Aig) -> Result<PipelineResult, SweepError> {
        self.config.validate()?;
        let mut passes = std::mem::take(&mut self.passes);
        let mut ctx = PassCtx {
            aig: aig.clone(),
            config: self.config,
            aggregate: SweepReport {
                gates_before: aig.num_ands(),
                gates_after: aig.num_ands(),
                levels: aig.depth(),
                ..SweepReport::default()
            },
            sat_calls_used: 0,
            verify_conflict_limit: self.verify_conflict_limit,
            budget: self.budget,
            observer: self.observer,
            started: Instant::now(),
            round: 0,
            input: aig,
            recorded: Vec::new(),
        };
        let mut reports: Vec<PassReport> = Vec::new();
        for pass in &mut passes {
            if let Some(obs) = ctx.observer.as_deref_mut() {
                let gates = ctx.aig.num_ands();
                obs.on_pass_start(pass.name(), gates);
            }
            let outcome = pass.run(&mut ctx);
            reports.extend(ctx.take_recorded());
            let report = outcome?;
            if let Some(obs) = ctx.observer.as_deref_mut() {
                obs.on_pass_end(&report);
            }
            reports.push(report);
        }
        Ok(PipelineResult {
            aig: ctx.aig,
            report: ctx.aggregate,
            passes: reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cec::check_equivalence;
    use crate::observer::StatsObserver;

    fn redundant_circuit() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 5);
        let f1 = aig.and(xs[0], xs[1]);
        let f2_inner = aig.nand(xs[0], xs[1]);
        let f2 = !f2_inner;
        let g1 = aig.xor(xs[2], xs[3]);
        let g2_t = aig.or(xs[2], xs[3]);
        let g2_b = aig.nand(xs[2], xs[3]);
        let g2 = aig.and(g2_t, g2_b);
        let o1 = aig.mux(xs[4], f1, g2);
        let o2 = aig.mux(xs[4], g1, f2);
        aig.add_output("o1", o1);
        aig.add_output("o2", o2);
        aig
    }

    #[test]
    fn pipeline_accumulates_per_pass_reports() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .strash()
            .sweep(Engine::Stp)
            .verify()
            .run(&aig)
            .expect("pipeline verifies");
        assert_eq!(outcome.passes.len(), 4);
        assert_eq!(outcome.passes[0].name, "sweep(stp)");
        assert_eq!(outcome.passes[1].name, "strash");
        assert_eq!(outcome.passes[3].name, "verify");
        // The aggregate merges exactly the two sweep passes.
        let sweep_merges: usize = outcome
            .passes
            .iter()
            .filter_map(|p| p.report.as_ref())
            .map(|r| r.merges)
            .sum();
        assert_eq!(outcome.report.merges, sweep_merges);
        assert_eq!(outcome.report.gates_before, aig.num_ands());
        assert_eq!(outcome.report.gates_after, outcome.aig.num_ands());
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
    }

    #[test]
    fn fixpoint_pass_converges() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep_to_fixpoint(Engine::Stp, 4)
            .run(&aig)
            .expect("runs");
        assert!(!outcome.passes.is_empty());
        assert!(outcome.passes.len() <= 4);
        assert!(outcome.passes[0].name.contains("round 0"));
        // The last round removed nothing (that is what convergence means),
        // unless the cap cut the loop short.
        if outcome.passes.len() < 4 {
            let last = outcome.passes.last().unwrap();
            assert_eq!(last.gates_before, last.gates_after);
        }
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
    }

    #[test]
    fn observer_sees_increasing_round_indices() {
        let aig = redundant_circuit();
        let mut stats = StatsObserver::new();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .sweep(Engine::Stp)
            .observer(&mut stats)
            .run(&aig)
            .expect("runs");
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.merges + stats.constants, {
            outcome.report.merges + outcome.report.constants
        });
    }

    #[test]
    fn observer_gets_a_bracket_per_scheduled_pass() {
        let aig = redundant_circuit();
        let mut stats = StatsObserver::new();
        let outcome = Pipeline::new(SweepConfig::default())
            .rewrite()
            .strash()
            .sweep_to_fixpoint(Engine::Stp, 4)
            .verify()
            .observer(&mut stats)
            .run(&aig)
            .expect("runs");
        // Four scheduled passes — fixpoint rounds do not re-trigger the
        // bracket even though they contribute extra reports.
        assert_eq!(stats.passes, 4);
        assert!(outcome.passes.len() >= 4);
    }

    #[test]
    fn pipeline_budget_returns_aggregate_partial() {
        let aig = redundant_circuit();
        let err = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .sweep(Engine::Stp)
            .budget(Budget::unlimited().with_max_sat_calls(0))
            .run(&aig)
            .unwrap_err();
        let partial = err.into_partial().expect("partial result");
        assert_eq!(partial.report.sat_calls_total, 0);
        assert_eq!(partial.report.gates_before, aig.num_ands());
        assert!(check_equivalence(&aig, &partial.aig, 100_000).equivalent);
    }

    #[test]
    fn exhausted_budget_stops_before_strash_and_verify() {
        let aig = redundant_circuit();
        let err = Pipeline::new(SweepConfig::default())
            .strash()
            .verify()
            .budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .run(&aig)
            .unwrap_err();
        let partial = err.into_partial().expect("partial result");
        assert_eq!(partial.aig.num_ands(), aig.num_ands());
        assert_eq!(partial.report.merges, 0);
    }

    #[test]
    fn default_pipeline_verify_budget_is_usable() {
        // Pipeline::default() must behave like Pipeline::new(default config):
        // a verify pass on a correct sweep passes instead of failing with a
        // zero conflict budget.
        let aig = redundant_circuit();
        let outcome = Pipeline::default()
            .sweep(Engine::Stp)
            .verify()
            .run(&aig)
            .expect("default pipeline verifies");
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
    }

    #[test]
    fn verify_pass_passes_on_a_correct_sweep() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .verify()
            .run(&aig)
            .expect("a correct sweep verifies");
        assert_eq!(outcome.passes.last().unwrap().name, "verify");
    }

    #[test]
    fn starved_verify_pass_reports_inconsistency_not_success() {
        // With a one-conflict budget the CEC proof cannot finish; the
        // pipeline must surface that as `Inconsistent` instead of silently
        // reporting a verified result.
        let aig = redundant_circuit();
        let err = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .verify()
            .verify_conflict_limit(1)
            .run(&aig)
            .unwrap_err();
        assert!(matches!(err, SweepError::Inconsistent(_)));
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn empty_pipeline_is_identity_with_empty_report() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .run(&aig)
            .expect("runs");
        assert_eq!(outcome.aig.num_ands(), aig.num_ands());
        assert_eq!(outcome.report.merges, 0);
        assert!(outcome.passes.is_empty());
        assert_eq!(outcome.report.gates_after, aig.num_ands());
    }

    #[test]
    fn structural_passes_preserve_equivalence_and_report_counters() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .constant_fold()
            .dangling_gc()
            .rewrite()
            .strash()
            .verify()
            .run(&aig)
            .expect("structural flow verifies");
        assert!(outcome.aig.num_ands() <= aig.num_ands());
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
        let names: Vec<&str> = outcome.passes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["cfold", "gc", "rewrite", "strash", "verify"]);
        let rewrite = &outcome.passes[2];
        assert!(rewrite.counter("rewrites").is_some());
        assert!(rewrite.counter("candidates").unwrap_or(0) >= rewrite.counter("rewrites").unwrap());
    }

    #[test]
    fn dc2_records_sub_reports_and_reduces() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .dc2(3)
            .verify()
            .run(&aig)
            .expect("dc2 verifies");
        assert!(outcome.aig.num_ands() < aig.num_ands());
        let summary = outcome
            .passes
            .iter()
            .find(|p| p.name == "dc2")
            .expect("dc2 summary report");
        assert!(summary.counter("iterations").unwrap() >= 1);
        assert!(outcome.passes.iter().any(|p| p.name == "dc2[0] rewrite"));
        assert!(outcome.passes.iter().any(|p| p.name == "dc2[0] strash"));
        assert!(outcome.passes.iter().any(|p| p.name == "dc2[0] sweep(stp)"));
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
    }

    #[test]
    fn parsed_script_runs_like_the_builder() {
        let aig = redundant_circuit();
        let scripted = Pipeline::parse("sweep(stp); strash; sweep(stp); verify")
            .expect("script parses")
            .run(&aig)
            .expect("scripted pipeline verifies");
        let built = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .strash()
            .sweep(Engine::Stp)
            .verify()
            .run(&aig)
            .expect("built pipeline verifies");
        assert_eq!(scripted.aig.num_ands(), built.aig.num_ands());
        assert_eq!(scripted.passes.len(), built.passes.len());
        assert_eq!(scripted.report.merges, built.report.merges);
    }
}
