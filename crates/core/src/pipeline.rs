//! Multi-pass sweeping pipelines.
//!
//! A [`Pipeline`] composes passes — sweeps, structural-hashing cleanups and
//! an equivalence verification against the pipeline input — into one
//! budgeted, observable run:
//!
//! ```
//! use netlist::Aig;
//! use stp_sweep::{Engine, Pipeline, SweepConfig};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! let outcome = Pipeline::new(SweepConfig::fast())
//!     .sweep(Engine::Stp)
//!     .strash()
//!     .sweep(Engine::Stp)
//!     .verify()
//!     .run(&aig)
//!     .expect("pipeline runs and verifies");
//! assert!(outcome.aig.num_ands() <= aig.num_ands());
//! assert_eq!(outcome.passes.len(), 4);
//! ```
//!
//! The per-pass [`PassReport`]s record where the gates and the time went;
//! the aggregate [`PipelineResult::report`] is the fold of all sweep passes
//! via [`crate::SweepReport::merge`].  A fixpoint sweep
//! ([`Pipeline::sweep_to_fixpoint`]) subsumes the legacy
//! `sweep_stp_to_fixpoint` free function.

use crate::budget::{Budget, BudgetCause};
use crate::cec;
use crate::error::SweepError;
use crate::observer::Observer;
use crate::report::{SweepConfig, SweepReport, SweepResult};
use crate::session::{Engine, Sweeper};
use netlist::Aig;
use std::time::{Duration, Instant};

/// Wraps the pipeline's current state into a budget-exhaustion error so the
/// work done by the completed passes is handed back, not discarded.
fn budget_stop(cause: BudgetCause, current: Aig, aggregate: SweepReport) -> SweepError {
    SweepError::BudgetExhausted {
        cause,
        partial: Box::new(SweepResult {
            aig: current,
            report: aggregate,
        }),
        checkpoint: None,
    }
}

/// One pass of a [`Pipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassSpec {
    /// A single sweep round of the given engine.
    Sweep(Engine),
    /// Sweep rounds of the given engine until no gate is removed (or the
    /// round cap is reached).
    SweepToFixpoint(Engine, usize),
    /// Structural-hashing cleanup (re-hash and drop dead nodes).
    Strash,
    /// CEC verification of the current network against the pipeline input.
    Verify,
}

/// Measurements of a single executed pass.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Human-readable pass name (`"sweep(stp)"`, `"strash"`, `"verify"`,
    /// `"sweep(stp) round 2"` …).
    pub name: String,
    /// AND gates entering the pass.
    pub gates_before: usize,
    /// AND gates leaving the pass.
    pub gates_after: usize,
    /// The full sweep report, for sweep passes.
    pub report: Option<SweepReport>,
    /// Wall-clock time of the pass.
    pub time: Duration,
}

/// The outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The final network.
    pub aig: Aig,
    /// Aggregate of all sweep passes (see [`SweepReport::merge`]).
    pub report: SweepReport,
    /// Per-pass measurements, in execution order.
    pub passes: Vec<PassReport>,
}

impl PipelineResult {
    /// Collapses the pipeline outcome into the single-sweep result shape.
    pub fn into_sweep_result(self) -> SweepResult {
        SweepResult {
            aig: self.aig,
            report: self.report,
        }
    }
}

/// Builder and executor of a multi-pass sweeping pipeline.
///
/// Passes run in the order they were added.  One [`Budget`] spans the whole
/// pipeline: each sweep pass receives whatever remains, and an exhausted
/// budget is also checked *before* every strash/verify pass (a running
/// strash or verify is not interrupted mid-pass).  One [`Observer`] sees
/// every sweep round with an increasing round index.
pub struct Pipeline<'o> {
    passes: Vec<PassSpec>,
    config: SweepConfig,
    budget: Budget,
    observer: Option<&'o mut dyn Observer>,
    verify_conflict_limit: u64,
}

impl Default for Pipeline<'_> {
    fn default() -> Self {
        Pipeline::new(SweepConfig::default())
    }
}

impl<'o> Pipeline<'o> {
    /// Starts an empty pipeline with the given sweep configuration.
    pub fn new(config: SweepConfig) -> Self {
        Pipeline {
            passes: Vec::new(),
            config,
            budget: Budget::unlimited(),
            observer: None,
            verify_conflict_limit: 500_000,
        }
    }

    /// Appends a single sweep round of `engine`.
    pub fn sweep(mut self, engine: Engine) -> Self {
        self.passes.push(PassSpec::Sweep(engine));
        self
    }

    /// Appends a fixpoint sweep: rounds of `engine` until no further gate is
    /// removed, capped at `max_rounds` (at least one round always runs).
    pub fn sweep_to_fixpoint(mut self, engine: Engine, max_rounds: usize) -> Self {
        self.passes
            .push(PassSpec::SweepToFixpoint(engine, max_rounds));
        self
    }

    /// Appends a structural-hashing cleanup pass.  Merging can expose new
    /// structural sharing; a `strash` between sweeps lets the next round
    /// find it.
    pub fn strash(mut self) -> Self {
        self.passes.push(PassSpec::Strash);
        self
    }

    /// Appends a verification pass: the current network is CEC-checked
    /// against the pipeline *input*; a mismatch aborts the pipeline with
    /// [`SweepError::Inconsistent`].
    pub fn verify(mut self) -> Self {
        self.passes.push(PassSpec::Verify);
        self
    }

    /// Sets the SAT conflict budget of `verify` passes (default 500 000).
    pub fn verify_conflict_limit(mut self, limit: u64) -> Self {
        self.verify_conflict_limit = limit;
        self
    }

    /// Sets the budget spanning the whole pipeline.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches an observer to every sweep pass.
    pub fn observer(mut self, observer: &'o mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Executes the pipeline on `aig`.
    ///
    /// On budget exhaustion, the aggregate partial result (the merges of
    /// every completed and the truncated pass) is returned inside
    /// [`SweepError::BudgetExhausted`].
    pub fn run(mut self, aig: &Aig) -> Result<PipelineResult, SweepError> {
        self.config.validate()?;
        let started = Instant::now();
        let mut current = aig.clone();
        let mut aggregate = SweepReport {
            gates_before: aig.num_ands(),
            gates_after: aig.num_ands(),
            levels: aig.depth(),
            ..SweepReport::default()
        };
        let mut passes: Vec<PassReport> = Vec::new();
        let mut round = 0usize;
        let mut sat_calls_used = 0u64;

        let specs = std::mem::take(&mut self.passes);
        for spec in &specs {
            match *spec {
                PassSpec::Sweep(engine) => {
                    let name = format!("sweep({engine})");
                    self.run_sweep_pass(
                        engine,
                        name,
                        &mut current,
                        &mut aggregate,
                        &mut passes,
                        &mut round,
                        &mut sat_calls_used,
                        started,
                    )?;
                }
                PassSpec::SweepToFixpoint(engine, max_rounds) => {
                    for fix_round in 0..max_rounds.max(1) {
                        let gates_entering = current.num_ands();
                        let name = format!("sweep({engine}) round {fix_round}");
                        self.run_sweep_pass(
                            engine,
                            name,
                            &mut current,
                            &mut aggregate,
                            &mut passes,
                            &mut round,
                            &mut sat_calls_used,
                            started,
                        )?;
                        if current.num_ands() == gates_entering {
                            break;
                        }
                    }
                }
                PassSpec::Strash => {
                    if let Some(cause) = self.budget.exceeded(started, sat_calls_used) {
                        return Err(budget_stop(cause, current, aggregate));
                    }
                    let pass_start = Instant::now();
                    let gates_before = current.num_ands();
                    let (cleaned, _) = current.cleanup();
                    current = cleaned;
                    let time = pass_start.elapsed();
                    aggregate.gates_after = current.num_ands();
                    aggregate.total_time += time;
                    passes.push(PassReport {
                        name: "strash".into(),
                        gates_before,
                        gates_after: current.num_ands(),
                        report: None,
                        time,
                    });
                }
                PassSpec::Verify => {
                    if let Some(cause) = self.budget.exceeded(started, sat_calls_used) {
                        return Err(budget_stop(cause, current, aggregate));
                    }
                    let pass_start = Instant::now();
                    let check = cec::check_equivalence(aig, &current, self.verify_conflict_limit);
                    let time = pass_start.elapsed();
                    aggregate.total_time += time;
                    passes.push(PassReport {
                        name: "verify".into(),
                        gates_before: current.num_ands(),
                        gates_after: current.num_ands(),
                        report: None,
                        time,
                    });
                    if !check.equivalent {
                        // An undetermined check means the CEC ran out of
                        // conflicts, not that the sweep is wrong — but a
                        // verification the pipeline promised could not be
                        // completed, which callers must not mistake for a
                        // verified result.
                        return Err(SweepError::Inconsistent(if check.undetermined {
                            "verify pass could not prove equivalence within its budget \
                             (raise Pipeline::verify_conflict_limit)"
                                .into()
                        } else {
                            "verify pass found the swept network inequivalent to the input".into()
                        }));
                    }
                }
            }
        }
        Ok(PipelineResult {
            aig: current,
            report: aggregate,
            passes,
        })
    }

    /// Runs one sweep round, folding its report into the aggregate and
    /// recording a [`PassReport`].  On budget exhaustion the aggregate
    /// partial result is wrapped and returned as the error.
    #[allow(clippy::too_many_arguments)]
    fn run_sweep_pass(
        &mut self,
        engine: Engine,
        name: String,
        current: &mut Aig,
        aggregate: &mut SweepReport,
        passes: &mut Vec<PassReport>,
        round: &mut usize,
        sat_calls_used: &mut u64,
        started: Instant,
    ) -> Result<(), SweepError> {
        let remaining = self.budget.remaining(started.elapsed(), *sat_calls_used);
        let mut sweeper = Sweeper::new(engine)
            .config(self.config)
            .budget(remaining)
            .round_index(*round);
        if let Some(obs) = self.observer.as_deref_mut() {
            sweeper = sweeper.observer(obs);
        }
        *round += 1;
        let gates_before = current.num_ands();
        match sweeper.run(current) {
            Ok(result) => {
                aggregate.merge(&result.report);
                *sat_calls_used += result.report.sat_calls_total;
                passes.push(PassReport {
                    name,
                    gates_before,
                    gates_after: result.aig.num_ands(),
                    report: Some(result.report),
                    time: result.report.total_time,
                });
                *current = result.aig;
                Ok(())
            }
            Err(SweepError::BudgetExhausted {
                cause,
                partial,
                checkpoint,
            }) => {
                aggregate.merge(&partial.report);
                passes.push(PassReport {
                    name,
                    gates_before,
                    gates_after: partial.aig.num_ands(),
                    report: Some(partial.report),
                    time: partial.report.total_time,
                });
                // The interrupted sweep pass's checkpoint travels with the
                // pipeline error: resuming it completes that pass exactly;
                // the passes after it have to be re-run by the caller.
                Err(SweepError::BudgetExhausted {
                    cause,
                    partial: Box::new(SweepResult {
                        aig: partial.aig,
                        report: *aggregate,
                    }),
                    checkpoint,
                })
            }
            Err(other) => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cec::check_equivalence;
    use crate::observer::StatsObserver;

    fn redundant_circuit() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 5);
        let f1 = aig.and(xs[0], xs[1]);
        let f2_inner = aig.nand(xs[0], xs[1]);
        let f2 = !f2_inner;
        let g1 = aig.xor(xs[2], xs[3]);
        let g2_t = aig.or(xs[2], xs[3]);
        let g2_b = aig.nand(xs[2], xs[3]);
        let g2 = aig.and(g2_t, g2_b);
        let o1 = aig.mux(xs[4], f1, g2);
        let o2 = aig.mux(xs[4], g1, f2);
        aig.add_output("o1", o1);
        aig.add_output("o2", o2);
        aig
    }

    #[test]
    fn pipeline_accumulates_per_pass_reports() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .strash()
            .sweep(Engine::Stp)
            .verify()
            .run(&aig)
            .expect("pipeline verifies");
        assert_eq!(outcome.passes.len(), 4);
        assert_eq!(outcome.passes[0].name, "sweep(stp)");
        assert_eq!(outcome.passes[1].name, "strash");
        assert_eq!(outcome.passes[3].name, "verify");
        // The aggregate merges exactly the two sweep passes.
        let sweep_merges: usize = outcome
            .passes
            .iter()
            .filter_map(|p| p.report.as_ref())
            .map(|r| r.merges)
            .sum();
        assert_eq!(outcome.report.merges, sweep_merges);
        assert_eq!(outcome.report.gates_before, aig.num_ands());
        assert_eq!(outcome.report.gates_after, outcome.aig.num_ands());
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
    }

    #[test]
    fn fixpoint_pass_converges() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep_to_fixpoint(Engine::Stp, 4)
            .run(&aig)
            .expect("runs");
        assert!(!outcome.passes.is_empty());
        assert!(outcome.passes.len() <= 4);
        assert!(outcome.passes[0].name.contains("round 0"));
        // The last round removed nothing (that is what convergence means),
        // unless the cap cut the loop short.
        if outcome.passes.len() < 4 {
            let last = outcome.passes.last().unwrap();
            assert_eq!(last.gates_before, last.gates_after);
        }
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
    }

    #[test]
    fn observer_sees_increasing_round_indices() {
        let aig = redundant_circuit();
        let mut stats = StatsObserver::new();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .sweep(Engine::Stp)
            .observer(&mut stats)
            .run(&aig)
            .expect("runs");
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.merges + stats.constants, {
            outcome.report.merges + outcome.report.constants
        });
    }

    #[test]
    fn pipeline_budget_returns_aggregate_partial() {
        let aig = redundant_circuit();
        let err = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .sweep(Engine::Stp)
            .budget(Budget::unlimited().with_max_sat_calls(0))
            .run(&aig)
            .unwrap_err();
        let partial = err.into_partial().expect("partial result");
        assert_eq!(partial.report.sat_calls_total, 0);
        assert_eq!(partial.report.gates_before, aig.num_ands());
        assert!(check_equivalence(&aig, &partial.aig, 100_000).equivalent);
    }

    #[test]
    fn exhausted_budget_stops_before_strash_and_verify() {
        let aig = redundant_circuit();
        let err = Pipeline::new(SweepConfig::default())
            .strash()
            .verify()
            .budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .run(&aig)
            .unwrap_err();
        let partial = err.into_partial().expect("partial result");
        assert_eq!(partial.aig.num_ands(), aig.num_ands());
        assert_eq!(partial.report.merges, 0);
    }

    #[test]
    fn default_pipeline_verify_budget_is_usable() {
        // Pipeline::default() must behave like Pipeline::new(default config):
        // a verify pass on a correct sweep passes instead of failing with a
        // zero conflict budget.
        let aig = redundant_circuit();
        let outcome = Pipeline::default()
            .sweep(Engine::Stp)
            .verify()
            .run(&aig)
            .expect("default pipeline verifies");
        assert!(check_equivalence(&aig, &outcome.aig, 100_000).equivalent);
    }

    #[test]
    fn verify_pass_passes_on_a_correct_sweep() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .verify()
            .run(&aig)
            .expect("a correct sweep verifies");
        assert_eq!(outcome.passes.last().unwrap().name, "verify");
    }

    #[test]
    fn starved_verify_pass_reports_inconsistency_not_success() {
        // With a one-conflict budget the CEC proof cannot finish; the
        // pipeline must surface that as `Inconsistent` instead of silently
        // reporting a verified result.
        let aig = redundant_circuit();
        let err = Pipeline::new(SweepConfig::default())
            .sweep(Engine::Stp)
            .verify()
            .verify_conflict_limit(1)
            .run(&aig)
            .unwrap_err();
        assert!(matches!(err, SweepError::Inconsistent(_)));
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn empty_pipeline_is_identity_with_empty_report() {
        let aig = redundant_circuit();
        let outcome = Pipeline::new(SweepConfig::default())
            .run(&aig)
            .expect("runs");
        assert_eq!(outcome.aig.num_ands(), aig.num_ands());
        assert_eq!(outcome.report.merges, 0);
        assert!(outcome.passes.is_empty());
        assert_eq!(outcome.report.gates_after, aig.num_ands());
    }
}
