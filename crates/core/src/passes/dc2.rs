//! The `dc2` combinational optimisation loop.

use super::sweep::run_one_sweep;
use super::{Pass, PassCtx, Rewrite, Strash};
use crate::error::SweepError;
use crate::pipeline::PassReport;
use crate::session::Engine;
use std::time::Instant;

/// Fixpoint optimisation: alternate rewrite → strash → SAT sweep until the
/// AND count stops improving (or `max_iters` / the budget runs out).
///
/// Each sub-pass records its own [`PassReport`] named
/// `"dc2[{iter}] {sub}"`; the report returned by the pass itself summarises
/// the whole loop with an `iterations` counter.
#[derive(Debug, Default)]
pub struct Dc2 {
    max_iters: usize,
    rewrite: Rewrite,
}

impl Dc2 {
    /// Default iteration cap when none is given.
    pub const DEFAULT_MAX_ITERS: usize = 10;

    /// Creates the loop capped at `max_iters` iterations (at least one
    /// iteration always runs).
    pub fn new(max_iters: usize) -> Self {
        Dc2 {
            max_iters,
            rewrite: Rewrite::new(),
        }
    }
}

impl Pass for Dc2 {
    fn name(&self) -> &str {
        "dc2"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        let pass_start = Instant::now();
        let gates_before = ctx.aig.num_ands();
        let mut iterations = 0u64;
        for iter in 0..self.max_iters.max(1) {
            if let Some(cause) = ctx.budget_exceeded() {
                return Err(ctx.budget_stop(cause));
            }
            let entering = ctx.aig.num_ands();

            let mut report = self.rewrite.run(ctx)?;
            report.name = format!("dc2[{iter}] rewrite");
            ctx.record(report);

            let mut report = Strash.run(ctx)?;
            report.name = format!("dc2[{iter}] strash");
            ctx.record(report);

            let report = run_one_sweep(ctx, Engine::Stp, format!("dc2[{iter}] sweep(stp)"))?;
            ctx.record(report);

            iterations += 1;
            if ctx.aig.num_ands() >= entering {
                break;
            }
        }
        Ok(PassReport {
            name: self.name().into(),
            gates_before,
            gates_after: ctx.aig.num_ands(),
            report: None,
            time: pass_start.elapsed(),
            counters: vec![("iterations".into(), iterations)],
        })
    }
}
