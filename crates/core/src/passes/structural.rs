//! Structural cleanup passes: strash, constant folding, dangling-node GC.

use super::{Pass, PassCtx};
use crate::error::SweepError;
use crate::pipeline::PassReport;
use netlist::{Aig, AigNode, Lit};
use std::time::Instant;

/// Structural-hashing cleanup: rebuilds the network keeping only the logic
/// reachable from the outputs, re-running constant propagation and
/// structural hashing (see [`Aig::cleanup`]).  Merging can expose new
/// structural sharing; a `strash` between sweeps lets the next round find
/// it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Strash;

impl Pass for Strash {
    fn name(&self) -> &str {
        "strash"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        if let Some(cause) = ctx.budget_exceeded() {
            return Err(ctx.budget_stop(cause));
        }
        let pass_start = Instant::now();
        let gates_before = ctx.aig.num_ands();
        let (cleaned, _) = ctx.aig.cleanup();
        ctx.aig = cleaned;
        let time = pass_start.elapsed();
        ctx.aggregate.gates_after = ctx.aig.num_ands();
        ctx.aggregate.total_time += time;
        Ok(PassReport {
            name: self.name().into(),
            gates_before,
            gates_after: ctx.aig.num_ands(),
            report: None,
            time,
            counters: vec![(
                "removed".into(),
                gates_before.saturating_sub(ctx.aig.num_ands()) as u64,
            )],
        })
    }
}

/// In-place constant and unit-literal propagation.
///
/// Walks the AND nodes in topological order and redirects every node whose
/// fanins force its value: a `0` fanin (or complementary fanins) makes the
/// node constant false, a `1` fanin (or equal fanins) makes it a copy of
/// the other fanin.  Redirections cascade, since later nodes see the
/// already-redirected fanins.  The node count is unchanged — folded nodes
/// become dangling and a later [`DanglingGc`] or [`Strash`] removes them —
/// so this pass composes with structure-preserving flows.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFold;

impl Pass for ConstantFold {
    fn name(&self) -> &str {
        "cfold"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        if let Some(cause) = ctx.budget_exceeded() {
            return Err(ctx.budget_stop(cause));
        }
        let pass_start = Instant::now();
        let gates_before = ctx.aig.num_ands();
        let ids: Vec<usize> = ctx.aig.and_ids().collect();
        let mut constants = 0u64;
        let mut units = 0u64;
        for id in ids {
            let fanins = ctx.aig.node(id).fanins();
            let (a, b) = (fanins[0], fanins[1]);
            if a == Lit::FALSE || b == Lit::FALSE || a == !b {
                ctx.aig.replace_node(id, Lit::FALSE);
                constants += 1;
            } else if a == Lit::TRUE {
                ctx.aig.replace_node(id, b);
                units += 1;
            } else if b == Lit::TRUE || a == b {
                ctx.aig.replace_node(id, a);
                units += 1;
            }
        }
        let time = pass_start.elapsed();
        ctx.aggregate.gates_after = ctx.aig.num_ands();
        ctx.aggregate.total_time += time;
        Ok(PassReport {
            name: self.name().into(),
            gates_before,
            gates_after: ctx.aig.num_ands(),
            report: None,
            time,
            counters: vec![("constants".into(), constants), ("units".into(), units)],
        })
    }
}

/// Dead-node sweep: rebuilds the network keeping exactly the nodes
/// reachable from the primary outputs, preserving their structure.
///
/// Unlike [`Strash`], surviving nodes are copied verbatim (via
/// [`Aig::and_raw`]) — no re-folding, no re-sharing — so this pass only
/// ever removes dangling logic (e.g. the leftovers of [`ConstantFold`]
/// redirections) and never perturbs the live structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct DanglingGc;

impl Pass for DanglingGc {
    fn name(&self) -> &str {
        "gc"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        if let Some(cause) = ctx.budget_exceeded() {
            return Err(ctx.budget_stop(cause));
        }
        let pass_start = Instant::now();
        let gates_before = ctx.aig.num_ands();

        let aig = &ctx.aig;
        let mut new = Aig::new();
        let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
        map[0] = Some(Lit::FALSE);
        // Inputs are always kept so that PI ordering is stable.
        for (pos, &id) in aig.inputs().iter().enumerate() {
            map[id] = Some(new.add_input(aig.input_name(pos).to_string()));
        }
        // Mark reachable nodes from outputs.
        let mut reachable = vec![false; aig.num_nodes()];
        let mut stack: Vec<usize> = aig.outputs().iter().map(|o| o.lit.node()).collect();
        while let Some(id) = stack.pop() {
            if reachable[id] {
                continue;
            }
            reachable[id] = true;
            for f in aig.node(id).fanins() {
                stack.push(f.node());
            }
        }
        for id in aig.node_ids() {
            if !reachable[id] {
                continue;
            }
            if let AigNode::And { fanin0, fanin1 } = *aig.node(id) {
                let f0 = map[fanin0.node()]
                    .expect("fanin precedes node in topological order")
                    .complement_if(fanin0.is_complemented());
                let f1 = map[fanin1.node()]
                    .expect("fanin precedes node in topological order")
                    .complement_if(fanin1.is_complemented());
                map[id] = Some(new.and_raw(f0, f1));
            }
        }
        for output in aig.outputs() {
            let lit = map[output.lit.node()]
                .expect("output driver is reachable")
                .complement_if(output.lit.is_complemented());
            new.add_output(output.name.clone(), lit);
        }
        ctx.aig = new;

        let time = pass_start.elapsed();
        ctx.aggregate.gates_after = ctx.aig.num_ands();
        ctx.aggregate.total_time += time;
        Ok(PassReport {
            name: self.name().into(),
            gates_before,
            gates_after: ctx.aig.num_ands(),
            report: None,
            time,
            counters: vec![(
                "removed".into(),
                gates_before.saturating_sub(ctx.aig.num_ands()) as u64,
            )],
        })
    }
}
