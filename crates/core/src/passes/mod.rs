//! The optimisation-pass framework.
//!
//! A [`Pass`] is one transformation of the network: a sweep, a structural
//! cleanup, a rewrite, a verification.  Passes run inside a [`PassCtx`]
//! that carries the current network, the sweep configuration, the budget
//! spanning the whole run, the observer and the cumulative statistics.  The
//! [`crate::PassManager`] (aliased as [`crate::Pipeline`]) owns a sequence
//! of boxed passes and executes them in order, collecting one
//! [`PassReport`] per pass.
//!
//! The built-in passes:
//!
//! | pass | script name | effect |
//! |------|-------------|--------|
//! | [`Strash`] | `strash` | re-hash, re-fold constants, drop dead nodes |
//! | [`ConstantFold`] | `cfold` | in-place 0/1 and unit-literal propagation |
//! | [`DanglingGc`] | `gc` | dead-node sweep with PO reachability, structure preserved |
//! | [`Rewrite`] | `rewrite` | 4-input cut rewriting against an NPN class library |
//! | [`Sweep`] | `sweep(stp)` | one SAT-sweeping round of an engine |
//! | [`SweepToFixpoint`] | `sweep_fix(n)` | sweep rounds until no gate is removed |
//! | [`Verify`] | `verify` | CEC check of the current network against the input |
//! | [`Dc2`] | `dc2(n)` | rewrite → strash → sweep until the node count stops improving |
//!
//! Every structural pass is deterministic — the output is a pure function
//! of the input network — and preserves functional equivalence, which the
//! test suite pins with CEC checks per pass.
//!
//! ```
//! use netlist::Aig;
//! use stp_sweep::PassManager;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! let outcome = PassManager::parse("strash;rewrite;sweep(stp);verify")
//!     .expect("script parses")
//!     .run(&aig)
//!     .expect("pipeline verifies");
//! assert!(outcome.aig.num_ands() <= aig.num_ands());
//! ```

mod dc2;
mod rewrite;
mod script;
mod structural;
mod sweep;

pub use dc2::Dc2;
pub use rewrite::Rewrite;
pub use script::{parse_script, ParsePassError};
pub use structural::{ConstantFold, DanglingGc, Strash};
pub use sweep::{Sweep, SweepToFixpoint, Verify};

use crate::budget::{Budget, BudgetCause};
use crate::error::SweepError;
use crate::observer::Observer;
use crate::pipeline::PassReport;
use crate::report::{SweepConfig, SweepReport, SweepResult};
use netlist::Aig;
use std::time::Instant;

/// One transformation step of a [`crate::PassManager`] run.
///
/// Implementations transform [`PassCtx::aig`] in place (replacing it is
/// fine) and return a [`PassReport`] describing what happened.  A pass that
/// emits several reports (e.g. a fixpoint loop reporting each round)
/// records the earlier ones with [`PassCtx::record`] and returns the last.
pub trait Pass {
    /// Human-readable pass name (also the name used in pass scripts).
    fn name(&self) -> &str;

    /// Runs the pass on the context's network.
    ///
    /// Budgeted passes should call [`PassCtx::budget_exceeded`] before
    /// starting (and, for long passes, at internal boundaries) and return
    /// [`PassCtx::budget_stop`] so the work of earlier passes is handed
    /// back instead of discarded.
    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError>;
}

/// Shared state threaded through every pass of a [`crate::PassManager`]
/// run.
pub struct PassCtx<'a> {
    /// The network being transformed.  Passes mutate or replace it.
    pub aig: Aig,
    /// The sweep configuration of the run.
    pub config: SweepConfig,
    /// Cumulative statistics: sweep passes merge their reports here (see
    /// [`SweepReport::merge`] for the policy), structural passes add their
    /// wall time and keep `gates_after` current.
    pub aggregate: SweepReport,
    /// Sweeping SAT calls consumed so far (drives the budget).
    pub sat_calls_used: u64,
    /// SAT conflict budget of [`Verify`] passes.
    pub verify_conflict_limit: u64,
    pub(crate) budget: Budget,
    pub(crate) observer: Option<&'a mut dyn Observer>,
    pub(crate) started: Instant,
    pub(crate) round: usize,
    pub(crate) input: &'a Aig,
    pub(crate) recorded: Vec<PassReport>,
}

impl<'a> PassCtx<'a> {
    /// The original input network of the run (the reference of [`Verify`]).
    pub fn input(&self) -> &Aig {
        self.input
    }

    /// Records an intermediate [`PassReport`] (for passes that emit more
    /// than one, e.g. per-round reports of a fixpoint loop).  Recorded
    /// reports appear in [`crate::PipelineResult::passes`] before the
    /// report the pass returns.
    pub fn record(&mut self, report: PassReport) {
        self.recorded.push(report);
    }

    /// Checks the run-spanning budget against the resources consumed so
    /// far.  `None` means the run may continue.
    pub fn budget_exceeded(&self) -> Option<BudgetCause> {
        self.budget.exceeded(self.started, self.sat_calls_used)
    }

    /// The budget that remains for the next sweep pass.
    pub fn remaining_budget(&self) -> Budget {
        self.budget
            .remaining(self.started.elapsed(), self.sat_calls_used)
    }

    /// Wraps the run's current state into a budget-exhaustion error so the
    /// work done by the completed passes is handed back, not discarded.
    pub fn budget_stop(&self, cause: BudgetCause) -> SweepError {
        SweepError::BudgetExhausted {
            cause,
            partial: Box::new(SweepResult {
                aig: self.aig.clone(),
                report: self.aggregate,
            }),
            checkpoint: None,
        }
    }

    pub(crate) fn take_recorded(&mut self) -> Vec<PassReport> {
        std::mem::take(&mut self.recorded)
    }
}
