//! Sweeping and verification passes.

use super::{Pass, PassCtx};
use crate::cec;
use crate::error::SweepError;
use crate::pipeline::PassReport;
use crate::report::SweepResult;
use crate::session::{Engine, Sweeper};
use std::time::Instant;

/// Runs one sweep round of `engine` inside `ctx`, folding the round's
/// report into the aggregate.  Shared by [`Sweep`], [`SweepToFixpoint`] and
/// [`super::Dc2`].
pub(crate) fn run_one_sweep(
    ctx: &mut PassCtx<'_>,
    engine: Engine,
    name: String,
) -> Result<PassReport, SweepError> {
    let remaining = ctx.remaining_budget();
    let mut sweeper = Sweeper::new(engine)
        .config(ctx.config)
        .budget(remaining)
        .round_index(ctx.round);
    if let Some(obs) = ctx.observer.as_deref_mut() {
        sweeper = sweeper.observer(obs);
    }
    ctx.round += 1;
    let gates_before = ctx.aig.num_ands();
    match sweeper.run(&ctx.aig) {
        Ok(result) => {
            ctx.aggregate.merge(&result.report);
            ctx.sat_calls_used += result.report.sat_calls_total;
            let report = PassReport {
                name,
                gates_before,
                gates_after: result.aig.num_ands(),
                report: Some(result.report),
                time: result.report.total_time,
                counters: Vec::new(),
            };
            ctx.aig = result.aig;
            Ok(report)
        }
        Err(SweepError::BudgetExhausted {
            cause,
            partial,
            checkpoint,
        }) => {
            ctx.aggregate.merge(&partial.report);
            // The interrupted sweep pass's checkpoint travels with the
            // pipeline error: resuming it completes that pass exactly; the
            // passes after it have to be re-run by the caller.
            Err(SweepError::BudgetExhausted {
                cause,
                partial: Box::new(SweepResult {
                    aig: partial.aig,
                    report: ctx.aggregate,
                }),
                checkpoint,
            })
        }
        Err(other) => Err(other),
    }
}

/// One SAT-sweeping round of an [`Engine`].
#[derive(Debug, Clone)]
pub struct Sweep {
    engine: Engine,
    name: String,
}

impl Sweep {
    /// Creates a single-round sweep pass for `engine`.
    pub fn new(engine: Engine) -> Self {
        Sweep {
            engine,
            name: format!("sweep({engine})"),
        }
    }
}

impl Pass for Sweep {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        run_one_sweep(ctx, self.engine, self.name.clone())
    }
}

/// Sweep rounds of an [`Engine`] until no gate is removed (or the round cap
/// is reached).  At least one round always runs; each round gets its own
/// [`PassReport`] named `"sweep({engine}) round {n}"`.
#[derive(Debug, Clone)]
pub struct SweepToFixpoint {
    engine: Engine,
    max_rounds: usize,
    name: String,
}

impl SweepToFixpoint {
    /// Creates a fixpoint sweep pass for `engine` capped at `max_rounds`.
    pub fn new(engine: Engine, max_rounds: usize) -> Self {
        SweepToFixpoint {
            engine,
            max_rounds,
            name: format!("sweep({engine}) to fixpoint"),
        }
    }
}

impl Pass for SweepToFixpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        let mut last: Option<PassReport> = None;
        for fix_round in 0..self.max_rounds.max(1) {
            let gates_entering = ctx.aig.num_ands();
            let name = format!("sweep({}) round {fix_round}", self.engine);
            let report = run_one_sweep(ctx, self.engine, name)?;
            if let Some(earlier) = last.replace(report) {
                ctx.record(earlier);
            }
            if ctx.aig.num_ands() == gates_entering {
                break;
            }
        }
        Ok(last.expect("at least one round always runs"))
    }
}

/// CEC verification of the current network against the run's input; a
/// mismatch (or an inconclusive check) aborts with
/// [`SweepError::Inconsistent`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Verify;

impl Pass for Verify {
    fn name(&self) -> &str {
        "verify"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        if let Some(cause) = ctx.budget_exceeded() {
            return Err(ctx.budget_stop(cause));
        }
        let pass_start = Instant::now();
        let check = cec::check_equivalence(ctx.input(), &ctx.aig, ctx.verify_conflict_limit);
        let time = pass_start.elapsed();
        ctx.aggregate.total_time += time;
        let report = PassReport {
            name: "verify".into(),
            gates_before: ctx.aig.num_ands(),
            gates_after: ctx.aig.num_ands(),
            report: None,
            time,
            counters: Vec::new(),
        };
        if !check.equivalent {
            ctx.record(report);
            // An undetermined check means the CEC ran out of conflicts, not
            // that the sweep is wrong — but a verification the pipeline
            // promised could not be completed, which callers must not
            // mistake for a verified result.
            return Err(SweepError::Inconsistent(if check.undetermined {
                "verify pass could not prove equivalence within its budget \
                 (raise Pipeline::verify_conflict_limit)"
                    .into()
            } else {
                "verify pass found the swept network inequivalent to the input".into()
            }));
        }
        Ok(report)
    }
}
