//! Cut-based NPN rewriting.
//!
//! For every AND node the pass enumerates 4-feasible cuts
//! ([`netlist::cuts`]), NPN-canonicalises each cut function
//! ([`truthtable::npn`]) and compares the node's cut-local MFFC — the gates
//! that die when the node is replaced — against a precomputed replacement
//! network for the canonical class.  Replacements with non-negative gain
//! are applied by rebuilding the network: rewritten roots get their library
//! implementation (leaves permuted/complemented per the inverse NPN
//! transform), claimed MFFC internals are skipped, everything else is
//! copied through the structural hash.
//!
//! The pass is deterministic (nodes are visited in topological order, cuts
//! in their enumeration order, ties broken first-wins) and never increases
//! the AND count: each accepted rewrite adds at most as many nodes as its
//! claimed MFFC removes, and accepted cuts are chosen so their MFFCs are
//! disjoint and their leaves and roots are never claimed by a later
//! rewrite.

use super::{Pass, PassCtx};
use crate::error::SweepError;
use crate::pipeline::PassReport;
use netlist::cuts::{self, Cut, CutParams};
use netlist::{Aig, AigNode, Lit};
use std::collections::HashMap;
use std::time::Instant;
use truthtable::npn::{self, NpnTransform};

/// A reference to a value inside a [`LibEntry`]: a constant, one of the
/// four leaf slots, or the result of an earlier step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Ref {
    /// Constant false (`Const(true)` after negation is constant true).
    Const(bool),
    /// Leaf slot 0–3, with complement.
    Leaf(u8, bool),
    /// Result of step `i`, with complement.
    Step(u16, bool),
}

impl Ref {
    fn negate(self) -> Self {
        match self {
            Ref::Const(b) => Ref::Const(!b),
            Ref::Leaf(i, c) => Ref::Leaf(i, !c),
            Ref::Step(i, c) => Ref::Step(i, !c),
        }
    }
}

/// A replacement network for one NPN class: a straight-line list of AND
/// steps over the four leaf slots, plus the output reference.
#[derive(Debug, Clone)]
struct LibEntry {
    steps: Vec<(Ref, Ref)>,
    out: Ref,
}

impl LibEntry {
    /// Number of AND gates the entry materialises (before strash sharing).
    fn size(&self) -> usize {
        self.steps.len()
    }

    /// Builds the entry into `aig` over the given leaf literals, returning
    /// the output literal.
    fn instantiate(&self, aig: &mut Aig, leaves: &[Lit; 4]) -> Lit {
        let mut values: Vec<Lit> = Vec::with_capacity(self.steps.len());
        let resolve = |r: Ref, values: &[Lit]| -> Lit {
            match r {
                Ref::Const(b) => Lit::FALSE.complement_if(b),
                Ref::Leaf(i, c) => leaves[i as usize].complement_if(c),
                Ref::Step(i, c) => values[i as usize].complement_if(c),
            }
        };
        for &(a, b) in &self.steps {
            let fa = resolve(a, &values);
            let fb = resolve(b, &values);
            values.push(aig.and(fa, fb));
        }
        resolve(self.out, &values)
    }
}

/// Truth tables of the four leaf slots as 4-variable `u16` tables.
const VAR_MASKS: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

/// Deterministic Shannon synthesis of a 4-variable function into a
/// [`LibEntry`]: split on the lowest variable in the support, share equal
/// and complementary subfunctions, fold constants.
fn synthesize(tt: u16) -> LibEntry {
    struct Synth {
        steps: Vec<(Ref, Ref)>,
        memo: HashMap<u16, Ref>,
        step_memo: HashMap<(Ref, Ref), u16>,
    }

    impl Synth {
        fn and(&mut self, a: Ref, b: Ref) -> Ref {
            if a == Ref::Const(false) || b == Ref::Const(false) || a == b.negate() {
                return Ref::Const(false);
            }
            if a == Ref::Const(true) || a == b {
                return b;
            }
            if b == Ref::Const(true) {
                return a;
            }
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            if let Some(&i) = self.step_memo.get(&(x, y)) {
                return Ref::Step(i, false);
            }
            let i = self.steps.len() as u16;
            self.steps.push((x, y));
            self.step_memo.insert((x, y), i);
            Ref::Step(i, false)
        }

        fn build(&mut self, tt: u16) -> Ref {
            if tt == 0 {
                return Ref::Const(false);
            }
            if tt == u16::MAX {
                return Ref::Const(true);
            }
            for (v, mask) in VAR_MASKS.iter().enumerate() {
                if tt == *mask {
                    return Ref::Leaf(v as u8, false);
                }
                if tt == !*mask {
                    return Ref::Leaf(v as u8, true);
                }
            }
            if let Some(&r) = self.memo.get(&tt) {
                return r;
            }
            if let Some(&r) = self.memo.get(&!tt) {
                return r.negate();
            }
            // Split on the lowest support variable:
            // f = (x ∧ f|x=1) ∨ (¬x ∧ f|x=0).
            let v = (0..4)
                .find(|&v| cofactor(tt, v, false) != cofactor(tt, v, true))
                .expect("non-constant table has a support variable");
            let c0 = cofactor(tt, v, false);
            let c1 = cofactor(tt, v, true);
            let x = Ref::Leaf(v as u8, false);
            let r1 = self.build(c1);
            let r0 = self.build(c0);
            let t1 = self.and(x, r1);
            let t0 = self.and(x.negate(), r0);
            let r = self.and(t1.negate(), t0.negate()).negate();
            self.memo.insert(tt, r);
            r
        }
    }

    let mut synth = Synth {
        steps: Vec::new(),
        memo: HashMap::new(),
        step_memo: HashMap::new(),
    };
    let out = synth.build(tt);
    LibEntry {
        steps: synth.steps,
        out,
    }
}

/// The cofactor of `tt` with variable `v` fixed to `value`, replicated
/// back over both halves so the result is again a 4-variable table.
fn cofactor(tt: u16, v: usize, value: bool) -> u16 {
    let shift = 1usize << v;
    if value {
        let hi = tt & VAR_MASKS[v];
        hi | (hi >> shift)
    } else {
        let lo = tt & !VAR_MASKS[v];
        lo | (lo << shift)
    }
}

/// The per-class replacement library, synthesised on first demand and
/// memoised.  Entries are a pure function of the canonical table, so the
/// library contents never depend on lookup order.
#[derive(Debug, Default)]
struct RewriteLibrary {
    entries: HashMap<u16, LibEntry>,
}

impl RewriteLibrary {
    fn entry(&mut self, canon: u16) -> &LibEntry {
        self.entries
            .entry(canon)
            .or_insert_with(|| synthesize(canon))
    }
}

/// An accepted rewrite decision for one root node.
struct Choice {
    cut: Cut,
    canon: u16,
    inverse: NpnTransform,
}

/// Cut-based NPN rewriting (see [`crate::passes`] for the pass table).
#[derive(Debug, Default)]
pub struct Rewrite {
    library: RewriteLibrary,
}

impl Rewrite {
    /// Creates the pass with an empty (lazily filled) class library.
    pub fn new() -> Self {
        Rewrite::default()
    }
}

impl Pass for Rewrite {
    fn name(&self) -> &str {
        "rewrite"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<PassReport, SweepError> {
        if let Some(cause) = ctx.budget_exceeded() {
            return Err(ctx.budget_stop(cause));
        }
        let pass_start = Instant::now();
        let gates_before = ctx.aig.num_ands();

        let aig = &ctx.aig;
        let params = CutParams {
            max_leaves: 4,
            max_cuts: 8,
        };
        let cut_sets = cuts::enumerate_cuts(aig, params);
        let fanouts = aig.fanout_counts();
        let n = aig.num_nodes();

        // Decision phase: visit AND nodes in topological order and pick at
        // most one rewrite per node.  `claimed` nodes are expected to die
        // with an accepted rewrite; `locked` nodes (accepted roots and
        // their cut leaves) must stay alive, so later rewrites may not
        // claim them.
        let mut claimed = vec![false; n];
        let mut locked = vec![false; n];
        let mut choices: Vec<Option<Choice>> = Vec::new();
        choices.resize_with(n, || None);
        let mut candidates = 0u64;
        let mut applied = 0u64;
        let mut estimated_gain = 0u64;

        for id in aig.and_ids() {
            let mut best: Option<(isize, usize, Choice, Vec<usize>)> = None;
            for cut in cut_sets[id].cuts() {
                if !(2..=4).contains(&cut.size()) {
                    continue;
                }
                if cut.leaves().iter().any(|&l| claimed[l]) {
                    continue;
                }
                let (cone, mffc) = cuts::cut_mffc(aig, id, cut, &fanouts);
                if cone.iter().any(|&c| c != id && claimed[c]) {
                    continue;
                }
                if mffc.iter().any(|&m| locked[m]) {
                    continue;
                }
                let table = cuts::cut_truth_table(aig, id, cut);
                let tt = npn::from_table(&table).expect("cut has at most 4 leaves");
                let (canon, transform) = npn::canonicalize4(tt);
                let size = self.library.entry(canon).size();
                candidates += 1;
                let gain = mffc.len() as isize - size as isize;
                if gain < 0 {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((best_gain, best_size, _, _)) => {
                        gain > *best_gain || (gain == *best_gain && size < *best_size)
                    }
                };
                if better {
                    let choice = Choice {
                        cut: cut.clone(),
                        canon,
                        inverse: transform.inverse(),
                    };
                    best = Some((gain, size, choice, mffc));
                }
            }
            if let Some((gain, _, choice, mffc)) = best {
                for &m in &mffc {
                    claimed[m] = true;
                }
                locked[id] = true;
                for &l in choice.cut.leaves() {
                    locked[l] = true;
                }
                choices[id] = Some(choice);
                applied += 1;
                estimated_gain += gain as u64;
            }
        }

        // Construction phase: rebuild into a fresh network.  Rewritten
        // roots get their library implementation, claimed internals are
        // skipped (nothing that survives references them), everything else
        // is copied through the structural hash.
        let mut new = Aig::new();
        let mut map: Vec<Option<Lit>> = vec![None; n];
        map[0] = Some(Lit::FALSE);
        for (pos, &iid) in aig.inputs().iter().enumerate() {
            map[iid] = Some(new.add_input(aig.input_name(pos).to_string()));
        }
        for id in aig.node_ids() {
            if !aig.node(id).is_and() {
                continue;
            }
            if let Some(choice) = &choices[id] {
                let entry = self.library.entry(choice.canon);
                let mut leaves = [Lit::FALSE; 4];
                for (j, leaf) in leaves.iter_mut().enumerate() {
                    // Library slot `j` reads cut leaf `inverse.perm[j]`;
                    // slots beyond the cut are outside the function's
                    // support and stay bound to constant false.
                    let src = choice.inverse.perm[j] as usize;
                    let mut lit = if src < choice.cut.size() {
                        map[choice.cut.leaves()[src]].expect("cut leaves are never claimed")
                    } else {
                        Lit::FALSE
                    };
                    lit = lit.complement_if((choice.inverse.input_neg >> j) & 1 == 1);
                    *leaf = lit;
                }
                let out = entry.instantiate(&mut new, &leaves);
                map[id] = Some(out.complement_if(choice.inverse.output_neg));
            } else if claimed[id] {
                map[id] = None;
            } else if let AigNode::And { fanin0, fanin1 } = *aig.node(id) {
                let f0 = map[fanin0.node()]
                    .expect("fanin precedes node in topological order")
                    .complement_if(fanin0.is_complemented());
                let f1 = map[fanin1.node()]
                    .expect("fanin precedes node in topological order")
                    .complement_if(fanin1.is_complemented());
                map[id] = Some(new.and(f0, f1));
            }
        }
        for output in aig.outputs() {
            let lit = map[output.lit.node()]
                .expect("output drivers are never claimed internals")
                .complement_if(output.lit.is_complemented());
            new.add_output(output.name.clone(), lit);
        }
        ctx.aig = new;

        let time = pass_start.elapsed();
        ctx.aggregate.gates_after = ctx.aig.num_ands();
        ctx.aggregate.total_time += time;
        Ok(PassReport {
            name: self.name().into(),
            gates_before,
            gates_after: ctx.aig.num_ands(),
            report: None,
            time,
            counters: vec![
                ("candidates".into(), candidates),
                ("rewrites".into(), applied),
                ("estimated_gain".into(), estimated_gain),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_synthesis_matches_the_table() {
        // Every step list must evaluate back to the function it was built
        // from, across a deterministic sample of tables.
        let mut state = 0x5EEDu32;
        let mut sample = Vec::new();
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            sample.push((state & 0xFFFF) as u16);
        }
        sample.extend_from_slice(&[0, 0xFFFF, 0xAAAA, 0x5555, 0x6996, 0x8000, 0xFFFE]);
        for tt in sample {
            let entry = synthesize(tt);
            for i in 0..16u16 {
                let mut values: Vec<bool> = Vec::new();
                let eval = |r: Ref, values: &[bool]| -> bool {
                    match r {
                        Ref::Const(b) => b,
                        Ref::Leaf(v, c) => ((i >> v) & 1 == 1) ^ c,
                        Ref::Step(s, c) => values[s as usize] ^ c,
                    }
                };
                for &(a, b) in &entry.steps {
                    let value = eval(a, &values) && eval(b, &values);
                    values.push(value);
                }
                assert_eq!(
                    eval(entry.out, &values),
                    (tt >> i) & 1 == 1,
                    "table {tt:#06x}, minterm {i}"
                );
            }
        }
    }

    #[test]
    fn cofactors_fix_one_variable() {
        let tt = 0x6996u16; // 4-input XOR
        for v in 0..4 {
            let c0 = cofactor(tt, v, false);
            let c1 = cofactor(tt, v, true);
            assert_eq!(c0, !c1, "XOR cofactors are complementary");
            // Cofactors no longer depend on the split variable.
            assert_eq!(cofactor(c0, v, false), cofactor(c0, v, true));
        }
    }

    #[test]
    fn synthesis_of_simple_classes_is_small() {
        // x0 & x1 replicated over the two unused variables.
        let and_tt = {
            let mut tt = 0u16;
            for i in 0..16 {
                if (i & 1 == 1) && (i & 2 == 2) {
                    tt |= 1 << i;
                }
            }
            tt
        };
        assert_eq!(synthesize(and_tt).size(), 1);
        // 2-input XOR costs three ANDs.
        let xor_tt = {
            let mut tt = 0u16;
            for i in 0..16 {
                if (i & 1 == 1) ^ (i & 2 == 2) {
                    tt |= 1 << i;
                }
            }
            tt
        };
        assert_eq!(synthesize(xor_tt).size(), 3);
        assert_eq!(synthesize(0).size(), 0);
        assert_eq!(synthesize(u16::MAX).size(), 0);
        assert_eq!(synthesize(0xAAAA).size(), 0); // projection of x0
    }
}
