//! Textual pass scripts.
//!
//! A script is a `;`-separated list of pass names, each optionally carrying
//! one parenthesised argument: `"strash;rewrite;sweep(stp);dc2(3)"`.  The
//! grammar is deliberately tiny — see [`parse_script`] for the accepted
//! names.

use super::{ConstantFold, DanglingGc, Dc2, Pass, Rewrite, Strash, Sweep, SweepToFixpoint, Verify};
use crate::session::Engine;
use std::fmt;

/// A pass script failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePassError {
    /// The script contains no passes at all.
    Empty,
    /// An item names no known pass.
    UnknownPass {
        /// The unrecognised pass name.
        name: String,
    },
    /// An item's parenthesised argument is not valid for its pass.
    BadArgument {
        /// The pass the argument was given to.
        pass: String,
        /// The offending argument text.
        argument: String,
        /// What the pass would have accepted.
        expected: &'static str,
    },
    /// An item has unbalanced or misplaced parentheses.
    UnbalancedParens {
        /// The malformed item.
        item: String,
    },
}

impl fmt::Display for ParsePassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePassError::Empty => write!(f, "pass script is empty"),
            ParsePassError::UnknownPass { name } => {
                write!(
                    f,
                    "unknown pass `{name}` (expected strash, cfold, gc, rewrite, \
                     sweep, sweep_fix, dc2 or verify)"
                )
            }
            ParsePassError::BadArgument {
                pass,
                argument,
                expected,
            } => {
                write!(
                    f,
                    "bad argument `{argument}` for pass `{pass}`: expected {expected}"
                )
            }
            ParsePassError::UnbalancedParens { item } => {
                write!(f, "malformed pass item `{item}`: unbalanced parentheses")
            }
        }
    }
}

impl std::error::Error for ParsePassError {}

/// Splits one script item into a name and an optional argument.
fn split_item(item: &str) -> Result<(&str, Option<&str>), ParsePassError> {
    match (item.find('('), item.ends_with(')')) {
        (None, false) => {
            if item.contains(')') {
                return Err(ParsePassError::UnbalancedParens { item: item.into() });
            }
            Ok((item, None))
        }
        (Some(open), true) => {
            let arg = &item[open + 1..item.len() - 1];
            if arg.contains('(') || arg.contains(')') {
                return Err(ParsePassError::UnbalancedParens { item: item.into() });
            }
            Ok((item[..open].trim_end(), Some(arg.trim())))
        }
        _ => Err(ParsePassError::UnbalancedParens { item: item.into() }),
    }
}

fn parse_engine(pass: &str, arg: Option<&str>) -> Result<Engine, ParsePassError> {
    match arg {
        None | Some("stp") => Ok(Engine::Stp),
        Some("baseline") => Ok(Engine::Baseline),
        Some(other) => Err(ParsePassError::BadArgument {
            pass: pass.into(),
            argument: other.into(),
            expected: "an engine name (`stp` or `baseline`)",
        }),
    }
}

fn parse_count(pass: &str, arg: &str) -> Result<usize, ParsePassError> {
    arg.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| ParsePassError::BadArgument {
            pass: pass.into(),
            argument: arg.into(),
            expected: "a positive iteration count",
        })
}

fn no_argument(pass: &str, arg: Option<&str>) -> Result<(), ParsePassError> {
    match arg {
        None => Ok(()),
        Some(argument) => Err(ParsePassError::BadArgument {
            pass: pass.into(),
            argument: argument.into(),
            expected: "no argument",
        }),
    }
}

/// Parses a pass script into an executable pass sequence.
///
/// Accepted items (whitespace around items and a trailing `;` are
/// tolerated):
///
/// * `strash` — [`Strash`]
/// * `cfold` / `constant_fold` — [`ConstantFold`]
/// * `gc` / `dangling_gc` — [`DanglingGc`]
/// * `rewrite` — [`Rewrite`]
/// * `sweep` / `sweep(stp)` / `sweep(baseline)` — [`Sweep`]
/// * `sweep_fix(n)` / `sweep_fix(engine, n)` — [`SweepToFixpoint`]
/// * `dc2` / `dc2(n)` — [`Dc2`] capped at `n` iterations
/// * `verify` — [`Verify`]
///
/// ```
/// use stp_sweep::passes::parse_script;
/// let passes = parse_script("strash; rewrite; sweep(stp); dc2(3); verify").unwrap();
/// assert_eq!(passes.len(), 5);
/// assert_eq!(passes[3].name(), "dc2");
/// assert!(parse_script("frobnicate").is_err());
/// ```
pub fn parse_script(script: &str) -> Result<Vec<Box<dyn Pass>>, ParsePassError> {
    let mut passes: Vec<Box<dyn Pass>> = Vec::new();
    for raw in script.split(';') {
        let item = raw.trim();
        if item.is_empty() {
            continue;
        }
        let (name, arg) = split_item(item)?;
        match name {
            "strash" => {
                no_argument(name, arg)?;
                passes.push(Box::new(Strash));
            }
            "cfold" | "constant_fold" => {
                no_argument(name, arg)?;
                passes.push(Box::new(ConstantFold));
            }
            "gc" | "dangling_gc" => {
                no_argument(name, arg)?;
                passes.push(Box::new(DanglingGc));
            }
            "rewrite" => {
                no_argument(name, arg)?;
                passes.push(Box::new(Rewrite::new()));
            }
            "verify" => {
                no_argument(name, arg)?;
                passes.push(Box::new(Verify));
            }
            "sweep" => {
                let engine = parse_engine(name, arg)?;
                passes.push(Box::new(Sweep::new(engine)));
            }
            "sweep_fix" => {
                let arg = arg.ok_or_else(|| ParsePassError::BadArgument {
                    pass: name.into(),
                    argument: String::new(),
                    expected: "a round cap, e.g. `sweep_fix(4)` or `sweep_fix(stp, 4)`",
                })?;
                let (engine, count) = match arg.split_once(',') {
                    None => (Engine::Stp, parse_count(name, arg.trim())?),
                    Some((eng, n)) => (
                        parse_engine(name, Some(eng.trim()))?,
                        parse_count(name, n.trim())?,
                    ),
                };
                passes.push(Box::new(SweepToFixpoint::new(engine, count)));
            }
            "dc2" => {
                let iters = match arg {
                    None => Dc2::DEFAULT_MAX_ITERS,
                    Some(n) => parse_count(name, n)?,
                };
                passes.push(Box::new(Dc2::new(iters)));
            }
            other => {
                return Err(ParsePassError::UnknownPass { name: other.into() });
            }
        }
    }
    if passes.is_empty() {
        return Err(ParsePassError::Empty);
    }
    Ok(passes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let passes = parse_script(
            "strash; cfold; gc; rewrite; sweep; sweep(stp); sweep(baseline); \
             sweep_fix(4); sweep_fix(baseline, 2); dc2; dc2(3); verify;",
        )
        .unwrap();
        let names: Vec<&str> = passes.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "strash",
                "cfold",
                "gc",
                "rewrite",
                "sweep(stp)",
                "sweep(stp)",
                "sweep(baseline)",
                "sweep(stp) to fixpoint",
                "sweep(baseline) to fixpoint",
                "dc2",
                "dc2",
                "verify",
            ]
        );
    }

    #[test]
    fn aliases_resolve() {
        let passes = parse_script("constant_fold; dangling_gc").unwrap();
        assert_eq!(passes[0].name(), "cfold");
        assert_eq!(passes[1].name(), "gc");
    }

    #[test]
    fn rejects_the_invalid() {
        assert_eq!(parse_script("").err().unwrap(), ParsePassError::Empty);
        assert_eq!(parse_script(" ; ; ").err().unwrap(), ParsePassError::Empty);
        assert!(matches!(
            parse_script("frobnicate").err().unwrap(),
            ParsePassError::UnknownPass { name } if name == "frobnicate"
        ));
        assert!(matches!(
            parse_script("sweep(kissat)").err().unwrap(),
            ParsePassError::BadArgument { pass, .. } if pass == "sweep"
        ));
        assert!(matches!(
            parse_script("dc2(0)").err().unwrap(),
            ParsePassError::BadArgument { pass, .. } if pass == "dc2"
        ));
        assert!(matches!(
            parse_script("dc2(three)").err().unwrap(),
            ParsePassError::BadArgument { .. }
        ));
        assert!(matches!(
            parse_script("strash(now)").err().unwrap(),
            ParsePassError::BadArgument { pass, .. } if pass == "strash"
        ));
        assert!(matches!(
            parse_script("dc2(3").err().unwrap(),
            ParsePassError::UnbalancedParens { .. }
        ));
        assert!(matches!(
            parse_script("dc2)3(").err().unwrap(),
            ParsePassError::UnbalancedParens { .. }
        ));
        let err = parse_script("sweep(kissat)").err().unwrap();
        assert!(err.to_string().contains("kissat"), "{err}");
    }
}
