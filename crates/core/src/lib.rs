//! # stp_sweep — STP-based circuit simulation and SAT-sweeping
//!
//! This crate is the reproduction of the paper's contribution:
//!
//! * [`stp_sim`] — the STP-based simulator of k-LUT networks (Algorithm 1)
//!   together with the cut algorithm of Section III-B: non-target logic is
//!   collapsed into k-LUTs whose truth tables are obtained by semi-tensor
//!   (logic-matrix) composition, so that only the nodes of interest are
//!   simulated — with exhaustive patterns whenever the window is small.
//! * [`equiv`] — the candidate equivalence-class manager of Fig. 2.
//! * [`patterns`] — SAT-guided initial simulation patterns and constant-node
//!   detection (Section IV-A, after [Amarù et al., DAC'20]).
//! * [`session`] — the sweeping engine behind both the baseline and the
//!   STP sweeper (Algorithm 2), driven through the [`Sweeper`] builder:
//!   engine selection ([`Engine`]), progress [`Observer`]s, resource
//!   [`Budget`]s with partial results, and typed [`SweepError`]s.
//! * [`prover`] / [`batching`] — parallel SAT proving over speculative
//!   candidate batches ([`ParallelProver`]): prefix batch formation under a
//!   pluggable [`BatchPolicy`] (support-disjointness prior, or the
//!   refinement-aware policy learning from the co-split statistic), slot-keyed
//!   solver pools with pre-query snapshots, optional sharded proving
//!   ([`SweepConfig::shards`]), all committed at a barrier in canonical
//!   candidate order so every [`SweepConfig::sat_parallelism`], policy and
//!   shard count commits the identical sweep.
//! * [`passes`] / [`pipeline`] — the optimisation-pass framework: a
//!   [`Pass`] trait with structural cleanups, cut-based NPN rewriting
//!   ([`passes::Rewrite`]), the [`passes::Dc2`] fixpoint loop, sweeps and
//!   CEC verification, composed by the [`PassManager`] (aliased
//!   [`Pipeline`]) with per-pass reports — built programmatically or from a
//!   textual script ([`PassManager::parse`]).
//! * [`resim`] — incremental counter-example resimulation: single-pattern
//!   evaluation restricted to the transitive fanin of the surviving
//!   candidates, with a dirty-set tracking the nodes whose signature history
//!   was left behind.  Both engines route counter-examples through it; the
//!   per-run counts surface in [`SweepReport`] and
//!   [`Observer::on_resimulation`].
//! * [`fraig`] / [`sweeper`] — the legacy free-function wrappers
//!   (`sweep_fraig`, `sweep_stp`, `sweep_stp_to_fixpoint`), kept as
//!   deprecated thin shims over the builder.
//! * [`cec`] — combinational equivalence checking used to verify every sweep
//!   (the `&cec` analog).
//! * [`sequential`] — sequential SAT-sweeping over latches, activated by
//!   [`SweepConfig::seq_depth`] (see [`SweepConfig::sequential`]): ternary
//!   fixpoint analysis of the initial states, multi-frame binary
//!   refinement of latch-correspondence classes and k-step induction per
//!   candidate pair, with the same determinism, budget and checkpoint
//!   guarantees as the combinational engine ([`Sweeper::resume_run`]).
//! * [`bmc`] — the bounded-model-checking sequential-equivalence oracle
//!   ([`bmc::bmc_sec`]) the sequential test battery verifies every latch
//!   merge against.
//!
//! The entry point is the [`Sweeper`] builder:
//!
//! ```
//! use netlist::Aig;
//! use stp_sweep::{cec, Engine, StatsObserver, SweepConfig, Sweeper};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! let mut stats = StatsObserver::new();
//! let result = Sweeper::new(Engine::Stp)
//!     .config(SweepConfig::paper())
//!     .observer(&mut stats)
//!     .run(&aig)
//!     .expect("valid config, unlimited budget");
//! assert!(result.aig.num_ands() <= aig.num_ands());
//! assert!(cec::check_equivalence(&aig, &result.aig, 1_000).equivalent);
//! assert_eq!(stats.merges, result.report.merges);
//! ```
//!
//! Multi-pass flows compose through [`Pipeline`], and long runs stay
//! interruptible through [`Budget`] (deadline, SAT-call cap,
//! [`CancelToken`]) — a tripped budget returns the partial result inside
//! [`SweepError::BudgetExhausted`] instead of discarding the work done,
//! together with a resumable [`SweepCheckpoint`] ([`checkpoint`]):
//! [`Sweeper::resume_from`] continues a cancelled run with SAT calls,
//! merges and output bytes identical to an uninterrupted sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
pub mod bmc;
pub mod budget;
pub mod cec;
pub mod checkpoint;
pub mod equiv;
pub mod error;
pub mod fraig;
pub mod observer;
pub mod passes;
pub mod patterns;
pub mod pipeline;
pub mod prover;
pub mod report;
pub mod resim;
pub mod sequential;
pub mod session;
pub mod stp_sim;
pub mod sweeper;
pub mod window;

pub use bmc::{bmc_sec, SecResult};
pub use budget::{Budget, BudgetCause, CancelToken};
pub use checkpoint::{netlist_fingerprint, CheckpointError, SweepCheckpoint};
pub use error::SweepError;
pub use observer::{NoopObserver, Observer, SatCallOutcome, StatsObserver};
pub use passes::{ParsePassError, Pass, PassCtx};
pub use pipeline::{PassManager, PassReport, Pipeline, PipelineResult};
pub use prover::{shard_slots, BatchProof, ParallelProver, SupportIndex};
pub use report::{BatchPolicy, SweepConfig, SweepReport, SweepResult};
pub use session::{Engine, SweepSession, Sweeper};
