//! # stp_sweep — STP-based circuit simulation and SAT-sweeping
//!
//! This crate is the reproduction of the paper's contribution:
//!
//! * [`stp_sim`] — the STP-based simulator of k-LUT networks (Algorithm 1)
//!   together with the cut algorithm of Section III-B: non-target logic is
//!   collapsed into k-LUTs whose truth tables are obtained by semi-tensor
//!   (logic-matrix) composition, so that only the nodes of interest are
//!   simulated — with exhaustive patterns whenever the window is small.
//! * [`equiv`] — the candidate equivalence-class manager of Fig. 2.
//! * [`patterns`] — SAT-guided initial simulation patterns and constant-node
//!   detection (Section IV-A, after [Amarù et al., DAC'20]).
//! * [`fraig`] — the baseline SAT sweeper (the `&fraig -x` analog): random
//!   simulation, equivalence classes, SAT queries, bitwise counter-example
//!   resimulation.
//! * [`sweeper`] — the proposed STP-based SAT sweeper (Algorithm 2):
//!   SAT-guided patterns, constant substitution, reverse topological
//!   processing, a TFI/driver budget, don't-touch marking on `unDET`, and
//!   exhaustive STP window refinement that disproves most false candidates
//!   without calling the SAT solver.
//! * [`cec`] — combinational equivalence checking used to verify every sweep
//!   (the `&cec` analog).
//!
//! ```
//! use netlist::Aig;
//! use stp_sweep::{sweeper, SweepConfig};
//!
//! # fn main() {
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! let result = sweeper::sweep_stp(&aig, &SweepConfig::default());
//! assert!(result.aig.num_ands() <= aig.num_ands());
//! assert!(stp_sweep::cec::check_equivalence(&aig, &result.aig, 1_000).equivalent);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cec;
pub mod equiv;
pub mod fraig;
pub mod patterns;
pub mod report;
pub mod stp_sim;
pub mod sweeper;
pub mod window;

pub use report::{SweepConfig, SweepReport, SweepResult};
