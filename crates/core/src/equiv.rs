//! The candidate equivalence-class manager (Fig. 2 of the paper).
//!
//! Nodes with identical simulation signatures — up to complementation — form
//! candidate equivalence classes.  The manager builds the classes from a set
//! of signatures, refines them when new patterns (counter-examples) arrive,
//! tracks constant candidates, and hands out the candidate pairs the SAT
//! solver has to decide.

use bitsim::{SigRef, Signature};
use netlist::NodeId;
use std::collections::HashMap;

/// FNV-1a fingerprint of a signature's *canonical* form (complemented when
/// `phase` is set, tail bits masked), used to bucket borrowed [`SigRef`]
/// views without materialising owned canonical keys.
fn canonical_fingerprint(sig: SigRef<'_>, phase: bool) -> u64 {
    let flip = if phase { u64::MAX } else { 0 };
    let rem = sig.len() % 64;
    let tail = if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    };
    let words = sig.words();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for (i, &w) in words.iter().enumerate() {
        let mut canonical = w ^ flip;
        if i + 1 == words.len() {
            canonical &= tail;
        }
        hash ^= canonical;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= sig.len() as u64;
    hash.wrapping_mul(0x0000_0100_0000_01b3)
}

/// `true` if the canonical forms of the two views are identical, i.e. the
/// nodes' signatures are equal up to complementation with the given phases.
fn canonical_eq(a: SigRef<'_>, phase_a: bool, b: SigRef<'_>, phase_b: bool) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let flip = if phase_a != phase_b { u64::MAX } else { 0 };
    let rem = a.len() % 64;
    let tail = if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    };
    let wa = a.words();
    let wb = b.words();
    wa.iter().zip(wb).enumerate().all(|(i, (&x, &y))| {
        let mut diff = x ^ y ^ flip;
        if i + 1 == wa.len() {
            diff &= tail;
        }
        diff == 0
    })
}

/// The result of a tracked refinement pass
/// ([`EquivClasses::refine_tracked`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineOutcome {
    /// Number of nodes that moved class or were dropped.
    pub moved: usize,
    /// Pre-split representatives of every class the refinement split,
    /// sorted ascending.  Classes that merely re-sorted or kept all members
    /// together are not reported.
    pub split_representatives: Vec<NodeId>,
}

/// A candidate constant node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantCandidate {
    /// The node whose signature is constant.
    pub node: NodeId,
    /// The constant value suggested by simulation.
    pub value: bool,
}

/// One candidate equivalence class.
///
/// The representative is the member with the smallest node id (the earliest
/// node in topological order); every other member is a merge candidate onto
/// the representative.  `phase[i]` records whether member `i`'s signature is
/// the complement of the representative's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivClass {
    members: Vec<NodeId>,
    phases: Vec<bool>,
}

impl EquivClass {
    /// The representative (earliest member).
    pub fn representative(&self) -> NodeId {
        self.members[0]
    }

    /// All members, representative first, ascending node id.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `member` is complemented relative to the representative.
    ///
    /// # Panics
    ///
    /// Panics if `member` is not in the class.
    pub fn phase_of(&self, member: NodeId) -> bool {
        let idx = self
            .members
            .iter()
            .position(|&m| m == member)
            .expect("member belongs to the class");
        self.phases[idx]
    }

    /// Per-member complement phases, aligned with [`EquivClass::members`]
    /// (the representative's phase is always `false`).
    pub fn phases(&self) -> &[bool] {
        &self.phases
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the class has at most one member (nothing to merge).
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }
}

/// The equivalence-class manager.
#[derive(Debug, Clone, Default)]
pub struct EquivClasses {
    classes: Vec<EquivClass>,
    constants: Vec<ConstantCandidate>,
}

impl EquivClasses {
    /// Builds candidate classes from node signatures.
    ///
    /// `signatures` maps node ids to their simulation signature; only the
    /// provided nodes are classified (the caller passes the AND nodes).
    /// Nodes whose signature is all-zero or all-one become
    /// [`ConstantCandidate`]s instead of class members.
    pub fn from_signatures(signatures: &HashMap<NodeId, Signature>) -> Self {
        let mut constants = Vec::new();
        let mut buckets: HashMap<Signature, Vec<(NodeId, bool)>> = HashMap::new();
        for (&node, sig) in signatures {
            if sig.is_const0() {
                constants.push(ConstantCandidate { node, value: false });
                continue;
            }
            if sig.is_const1() {
                constants.push(ConstantCandidate { node, value: true });
                continue;
            }
            let key = sig.canonical_key();
            let phase = sig.get_bit(0);
            buckets.entry(key).or_default().push((node, phase));
        }
        let mut classes = Vec::new();
        for (_, mut members) in buckets {
            if members.len() < 2 {
                continue;
            }
            members.sort_unstable();
            // Normalise phases relative to the representative.
            let repr_phase = members[0].1;
            let phases = members.iter().map(|&(_, p)| p != repr_phase).collect();
            classes.push(EquivClass {
                members: members.into_iter().map(|(n, _)| n).collect(),
                phases,
            });
        }
        classes.sort_by_key(|c| c.representative());
        constants.sort_by_key(|c| c.node);
        EquivClasses { classes, constants }
    }

    /// Builds candidate classes straight from borrowed arena views — the
    /// zero-clone priming path.
    ///
    /// Semantically identical to [`EquivClasses::from_signatures`] (the
    /// produced classes and constants are equal for equal inputs), but the
    /// signatures are consumed as [`SigRef`] views: bucketing uses a
    /// complement-normalised FNV fingerprint and an exact canonical
    /// comparison within each bucket, so no per-node `Signature` clone is
    /// ever materialised.
    pub fn from_node_signatures<'a, I>(signatures: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, SigRef<'a>)>,
    {
        let mut constants = Vec::new();
        let mut buckets: HashMap<u64, Vec<(NodeId, SigRef<'a>, bool)>> = HashMap::new();
        for (node, sig) in signatures {
            if sig.is_const0() {
                constants.push(ConstantCandidate { node, value: false });
                continue;
            }
            if sig.is_const1() {
                constants.push(ConstantCandidate { node, value: true });
                continue;
            }
            let phase = !sig.is_empty() && sig.get_bit(0);
            buckets
                .entry(canonical_fingerprint(sig, phase))
                .or_default()
                .push((node, sig, phase));
        }
        let mut classes = Vec::new();
        for (_, bucket) in buckets {
            // Split fingerprint collisions with exact canonical comparison.
            let mut groups: Vec<Vec<(NodeId, bool)>> = Vec::new();
            let mut group_reps: Vec<(SigRef<'a>, bool)> = Vec::new();
            for (node, sig, phase) in bucket {
                match group_reps
                    .iter()
                    .position(|&(rs, rp)| canonical_eq(sig, phase, rs, rp))
                {
                    Some(g) => groups[g].push((node, phase)),
                    None => {
                        group_reps.push((sig, phase));
                        groups.push(vec![(node, phase)]);
                    }
                }
            }
            for mut members in groups {
                if members.len() < 2 {
                    continue;
                }
                members.sort_unstable();
                let repr_phase = members[0].1;
                let phases = members.iter().map(|&(_, p)| p != repr_phase).collect();
                classes.push(EquivClass {
                    members: members.into_iter().map(|(n, _)| n).collect(),
                    phases,
                });
            }
        }
        classes.sort_by_key(|c| c.representative());
        constants.sort_by_key(|c| c.node);
        EquivClasses { classes, constants }
    }

    /// The candidate classes (each with at least two members).
    pub fn classes(&self) -> &[EquivClass] {
        &self.classes
    }

    /// Rebuilds a manager from raw class parts (member/phase vectors) and
    /// constant candidates, validating the invariants the engine relies on.
    /// Used to restore a checkpointed session; corrupt data is rejected with
    /// an error message instead of producing a manager that misbehaves.
    pub fn from_parts(
        parts: Vec<(Vec<NodeId>, Vec<bool>)>,
        constants: Vec<ConstantCandidate>,
    ) -> Result<Self, &'static str> {
        let mut classes = Vec::with_capacity(parts.len());
        for (members, phases) in parts {
            if members.len() < 2 {
                return Err("equivalence class with fewer than two members");
            }
            if members.len() != phases.len() {
                return Err("equivalence class phases disagree with members");
            }
            if members.windows(2).any(|w| w[0] >= w[1]) {
                return Err("equivalence class members are not sorted and unique");
            }
            if phases[0] {
                return Err("equivalence class representative has a nonzero phase");
            }
            classes.push(EquivClass { members, phases });
        }
        if constants.windows(2).any(|w| w[0].node >= w[1].node) {
            return Err("constant candidates are not sorted and unique");
        }
        Ok(EquivClasses { classes, constants })
    }

    /// The candidate constant nodes.
    pub fn constants(&self) -> &[ConstantCandidate] {
        &self.constants
    }

    /// Total number of merge candidates (class members beyond the
    /// representative, plus constant candidates).
    pub fn num_candidates(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum::<usize>() + self.constants.len()
    }

    /// Finds the class containing `node`, if any.
    pub fn class_of(&self, node: NodeId) -> Option<&EquivClass> {
        self.classes.iter().find(|c| c.members.contains(&node))
    }

    /// Refines every class using additional signature information (e.g.
    /// after simulating a counter-example): members whose new signatures
    /// disagree (up to the class phase) with their representative are split
    /// into new classes.  Constant candidates whose new signature is no
    /// longer constant are dropped.
    ///
    /// `signatures` only needs to contain nodes that were actually
    /// re-simulated; members without an entry keep their current class.
    ///
    /// Returns the number of nodes that moved or were dropped.
    pub fn refine(&mut self, signatures: &HashMap<NodeId, Signature>) -> usize {
        self.refine_tracked(signatures).moved
    }

    /// Like [`refine`](Self::refine), but also reports which classes were
    /// split, identified by their *pre-split* representative.  This is the
    /// feed for the refinement-aware batching statistic
    /// ([`bitsim::CoSplitTable`]): one committed counter-example produces one
    /// refinement, and the set of representatives it split is one co-split
    /// event.
    pub fn refine_tracked(&mut self, signatures: &HashMap<NodeId, Signature>) -> RefineOutcome {
        let mut split_representatives = Vec::new();
        let mut moved = 0usize;

        // Drop disproved constant candidates.
        let before = self.constants.len();
        self.constants.retain(|c| match signatures.get(&c.node) {
            Some(sig) => {
                if c.value {
                    sig.is_const1()
                } else {
                    sig.is_const0()
                }
            }
            None => true,
        });
        moved += before - self.constants.len();

        let mut new_classes = Vec::new();
        for class in &self.classes {
            // Bucket members by their new signature relative to phase; members
            // without new data keep the representative's bucket key `None`.
            let mut buckets: HashMap<Option<Signature>, Vec<(NodeId, bool)>> = HashMap::new();
            for (idx, &member) in class.members.iter().enumerate() {
                let phase = class.phases[idx];
                let key = signatures.get(&member).map(|sig| {
                    // Normalise by phase so that complement-equivalent members
                    // stay together.
                    if phase {
                        sig.complement()
                    } else {
                        sig.clone()
                    }
                });
                buckets.entry(key).or_default().push((member, phase));
            }
            if buckets.len() == 1 {
                new_classes.push(class.clone());
                continue;
            }
            // The bucket containing the representative keeps the `None`
            // members (unsimulated nodes default to staying with their
            // representative only if the representative itself was not
            // re-simulated; otherwise they join the representative's bucket).
            let repr_key = signatures.get(&class.representative()).map(|sig| {
                if class.phase_of(class.representative()) {
                    sig.complement()
                } else {
                    sig.clone()
                }
            });
            let mut merged: HashMap<Option<Signature>, Vec<(NodeId, bool)>> = HashMap::new();
            for (key, members) in buckets {
                let target = if key.is_none() { repr_key.clone() } else { key };
                merged.entry(target).or_default().extend(members);
            }
            if merged.len() > 1 {
                split_representatives.push(class.representative());
            }
            for (_, mut members) in merged {
                if members.len() < 2 {
                    moved += members.len();
                    continue;
                }
                members.sort_unstable();
                let repr_phase = members[0].1;
                let phases: Vec<bool> = members.iter().map(|&(_, p)| p != repr_phase).collect();
                let class_members: Vec<NodeId> = members.into_iter().map(|(n, _)| n).collect();
                if class_members != class.members {
                    moved += 1;
                }
                new_classes.push(EquivClass {
                    members: class_members,
                    phases,
                });
            }
        }
        new_classes.sort_by_key(|c| c.representative());
        self.classes = new_classes;
        split_representatives.sort_unstable();
        RefineOutcome {
            moved,
            split_representatives,
        }
    }

    /// Removes a node from its class (e.g. after it has been merged away or
    /// marked don't-touch).  Classes that shrink below two members are
    /// dropped.
    pub fn remove(&mut self, node: NodeId) {
        for class in &mut self.classes {
            if let Some(idx) = class.members.iter().position(|&m| m == node) {
                class.members.remove(idx);
                class.phases.remove(idx);
                if idx == 0 && !class.members.is_empty() {
                    // Re-normalise phases relative to the new representative.
                    let base = class.phases[0];
                    for p in &mut class.phases {
                        *p = *p != base;
                    }
                }
            }
        }
        self.classes.retain(|c| c.members.len() >= 2);
        self.constants.retain(|c| c.node != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(bits: &[u8]) -> Signature {
        Signature::from_bits(bits.iter().map(|&b| b == 1))
    }

    fn build(map: &[(NodeId, Signature)]) -> EquivClasses {
        EquivClasses::from_signatures(&map.iter().cloned().collect())
    }

    #[test]
    fn from_node_signatures_matches_from_signatures() {
        use bitsim::{AigSimulator, PatternSet};
        use netlist::Aig;

        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 4);
        let a = aig.and(xs[0], xs[1]);
        let b = aig.and(xs[1], xs[0]); // structurally equal to `a`
        let c = aig.xor(xs[2], xs[3]);
        let d = !aig.xor(xs[3], xs[2]); // complement of `c`
        let e = aig.and(a, !a); // constant 0
        let f = aig.or(c, !c); // constant 1
        let o = aig.or(b, d);
        let k = aig.and(e, f);
        aig.add_output("o", o);
        aig.add_output("k", k);
        let patterns = PatternSet::exhaustive(4);
        let state = AigSimulator::new(&aig).run(&patterns);

        let cloned: std::collections::HashMap<NodeId, Signature> = aig
            .and_ids()
            .map(|id| (id, state.signature(id).to_signature()))
            .collect();
        let expected = EquivClasses::from_signatures(&cloned);
        let got =
            EquivClasses::from_node_signatures(aig.and_ids().map(|id| (id, state.signature(id))));

        assert_eq!(got.constants(), expected.constants());
        assert_eq!(got.classes().len(), expected.classes().len());
        for (g, e) in got.classes().iter().zip(expected.classes()) {
            assert_eq!(g.members(), e.members());
            for &m in g.members() {
                assert_eq!(g.phase_of(m), e.phase_of(m));
            }
        }
    }

    #[test]
    fn groups_equal_and_complementary_signatures() {
        let classes = build(&[
            (3, sig(&[0, 1, 1, 0])),
            (5, sig(&[0, 1, 1, 0])),
            (7, sig(&[1, 0, 0, 1])), // complement of the others
            (9, sig(&[0, 0, 1, 0])), // different
        ]);
        assert_eq!(classes.classes().len(), 1);
        let class = &classes.classes()[0];
        assert_eq!(class.representative(), 3);
        assert_eq!(class.members(), &[3, 5, 7]);
        assert!(!class.phase_of(5));
        assert!(class.phase_of(7));
        assert_eq!(classes.num_candidates(), 2);
        assert!(classes.class_of(9).is_none());
    }

    #[test]
    fn constant_candidates_are_split_out() {
        let classes = build(&[
            (2, sig(&[0, 0, 0, 0])),
            (4, sig(&[1, 1, 1, 1])),
            (6, sig(&[0, 1, 0, 1])),
        ]);
        assert_eq!(classes.classes().len(), 0);
        assert_eq!(
            classes.constants(),
            &[
                ConstantCandidate {
                    node: 2,
                    value: false
                },
                ConstantCandidate {
                    node: 4,
                    value: true
                }
            ]
        );
        assert_eq!(classes.num_candidates(), 2);
    }

    #[test]
    fn refine_splits_on_new_evidence() {
        let mut classes = build(&[
            (3, sig(&[0, 1, 1, 0])),
            (5, sig(&[0, 1, 1, 0])),
            (8, sig(&[0, 1, 1, 0])),
        ]);
        assert_eq!(classes.classes()[0].len(), 3);
        // A counter-example distinguishes node 8 from 3 and 5.
        let new: HashMap<NodeId, Signature> = [(3, sig(&[0])), (5, sig(&[0])), (8, sig(&[1]))]
            .into_iter()
            .collect();
        let moved = classes.refine(&new);
        assert!(moved > 0);
        assert_eq!(classes.classes().len(), 1);
        assert_eq!(classes.classes()[0].members(), &[3, 5]);
    }

    #[test]
    fn refine_tracked_reports_split_classes_by_pre_split_representative() {
        // Two classes: {3, 5, 8} and {10, 12}.
        let mut classes = build(&[
            (3, sig(&[0, 1, 1, 0])),
            (5, sig(&[0, 1, 1, 0])),
            (8, sig(&[0, 1, 1, 0])),
            (10, sig(&[0, 0, 1, 1])),
            (12, sig(&[0, 0, 1, 1])),
        ]);
        assert_eq!(classes.classes().len(), 2);
        // The counter-example splits 8 out of the first class and leaves the
        // second class intact.
        let new: HashMap<NodeId, Signature> = [
            (3, sig(&[0])),
            (5, sig(&[0])),
            (8, sig(&[1])),
            (10, sig(&[1])),
            (12, sig(&[1])),
        ]
        .into_iter()
        .collect();
        let outcome = classes.refine_tracked(&new);
        assert!(outcome.moved > 0);
        assert_eq!(outcome.split_representatives, vec![3]);
        // A refinement that splits nothing reports no representatives.
        let outcome = classes.refine_tracked(&HashMap::new());
        assert_eq!(outcome.moved, 0);
        assert!(outcome.split_representatives.is_empty());
        // One splitting both remaining classes reports both (sorted).
        let new: HashMap<NodeId, Signature> = [
            (3, sig(&[0])),
            (5, sig(&[1])),
            (10, sig(&[0])),
            (12, sig(&[1])),
        ]
        .into_iter()
        .collect();
        let outcome = classes.refine_tracked(&new);
        assert_eq!(outcome.split_representatives, vec![3, 10]);
        assert!(classes.classes().is_empty());
    }

    #[test]
    fn refine_keeps_complement_pairs_together() {
        let mut classes = build(&[(3, sig(&[0, 1])), (5, sig(&[1, 0]))]);
        assert_eq!(classes.classes().len(), 1);
        // New evidence consistent with complementation must not split them.
        let new: HashMap<NodeId, Signature> = [(3, sig(&[1, 1, 0])), (5, sig(&[0, 0, 1]))]
            .into_iter()
            .collect();
        let moved = classes.refine(&new);
        assert_eq!(classes.classes().len(), 1);
        assert_eq!(moved, 0);
    }

    #[test]
    fn refine_drops_disproved_constants() {
        let mut classes = build(&[(2, sig(&[0, 0, 0]))]);
        assert_eq!(classes.constants().len(), 1);
        let new: HashMap<NodeId, Signature> = [(2, sig(&[0, 1, 0]))].into_iter().collect();
        classes.refine(&new);
        assert!(classes.constants().is_empty());
    }

    #[test]
    fn remove_member_and_collapse_class() {
        let mut classes = build(&[
            (3, sig(&[0, 1, 1, 0])),
            (5, sig(&[0, 1, 1, 0])),
            (7, sig(&[1, 0, 0, 1])),
        ]);
        classes.remove(5);
        assert_eq!(classes.classes()[0].members(), &[3, 7]);
        classes.remove(3);
        // Only one member left: the class disappears.
        assert!(classes.classes().is_empty());
    }

    #[test]
    fn remove_representative_renormalises_phase() {
        let mut classes = build(&[
            (3, sig(&[0, 1, 1, 0])),
            (5, sig(&[1, 0, 0, 1])),
            (7, sig(&[1, 0, 0, 1])),
        ]);
        classes.remove(3);
        let class = &classes.classes()[0];
        assert_eq!(class.representative(), 5);
        assert!(!class.phase_of(5));
        assert!(!class.phase_of(7));
    }
}
