//! Cut-window collapse of an AIG, used by the STP sweeper.
//!
//! The STP-based refinement of Section IV-A works on the network being
//! swept: nodes that are *not* in any candidate equivalence class are mapped
//! into k-LUTs (their logic is absorbed into cut windows), and the class
//! nodes are then simulated — exhaustively over their window leaves whenever
//! the window is small enough.  [`WindowIndex`] pre-computes, for every AND
//! node, a window (a cut with at most `limit` leaves) and the node's function
//! over that window, obtained by logic-matrix (truth-table) composition.

use bitsim::{parallel, PatternSet, Signature};
use netlist::{Aig, AigNode, NodeId};
use std::collections::HashMap;
use truthtable::TruthTable;

/// A node's window: its function expressed over a small set of leaf nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Sorted leaf node ids.
    pub leaves: Vec<NodeId>,
    /// The node's function over the leaves (leaf `i` ↔ variable `i`).
    pub table: TruthTable,
}

impl Window {
    /// `true` if every leaf is a primary input or the constant node, in
    /// which case [`Window::table`] is the node's *global* function and an
    /// exhaustive comparison over the window is a complete equivalence
    /// proof.
    pub fn is_global(&self, aig: &Aig) -> bool {
        self.leaves
            .iter()
            .all(|&l| !matches!(aig.node(l), AigNode::And { .. }))
    }
}

/// Pre-computed windows for every node of an AIG.
#[derive(Debug, Clone)]
pub struct WindowIndex {
    windows: Vec<Window>,
    limit: usize,
}

impl WindowIndex {
    /// Builds windows bottom-up: a node's window is the merge of its fanins'
    /// windows when that stays within `limit` leaves; otherwise the fanins
    /// themselves become the leaves.
    ///
    /// # Panics
    ///
    /// Panics if `limit < 2` or `limit > TruthTable::MAX_VARS`.
    pub fn build(aig: &Aig, limit: usize) -> Self {
        assert!(
            (2..=TruthTable::MAX_VARS).contains(&limit),
            "window limit out of range"
        );
        let mut windows: Vec<Window> = Vec::with_capacity(aig.num_nodes());
        for id in aig.node_ids() {
            let window = match aig.node(id) {
                AigNode::Const0 => Window {
                    leaves: vec![id],
                    table: TruthTable::variable(1, 0),
                },
                AigNode::Input { .. } => Window {
                    leaves: vec![id],
                    table: TruthTable::variable(1, 0),
                },
                AigNode::And { fanin0, fanin1 } => {
                    let w0 = &windows[fanin0.node()];
                    let w1 = &windows[fanin1.node()];
                    let mut merged: Vec<NodeId> = w0.leaves.clone();
                    for &l in &w1.leaves {
                        if !merged.contains(&l) {
                            merged.push(l);
                        }
                    }
                    merged.sort_unstable();
                    if merged.len() <= limit {
                        let t0 = remap(&w0.table, &w0.leaves, &merged);
                        let t1 = remap(&w1.table, &w1.leaves, &merged);
                        let t0 = if fanin0.is_complemented() { !&t0 } else { t0 };
                        let t1 = if fanin1.is_complemented() { !&t1 } else { t1 };
                        Window {
                            leaves: merged,
                            table: &t0 & &t1,
                        }
                    } else {
                        // Use the direct fanins as leaves.
                        let mut leaves = vec![fanin0.node(), fanin1.node()];
                        leaves.sort_unstable();
                        leaves.dedup();
                        let table = if leaves.len() == 1 {
                            // Both fanins are the same node (possibly with
                            // different polarity); express directly.
                            let v = TruthTable::variable(1, 0);
                            let t0 = if fanin0.is_complemented() {
                                !&v
                            } else {
                                v.clone()
                            };
                            let t1 = if fanin1.is_complemented() { !&v } else { v };
                            &t0 & &t1
                        } else {
                            let pos0 = leaves
                                .iter()
                                .position(|&l| l == fanin0.node())
                                .expect("present");
                            let pos1 = leaves
                                .iter()
                                .position(|&l| l == fanin1.node())
                                .expect("present");
                            let v0 = TruthTable::variable(2, pos0);
                            let v1 = TruthTable::variable(2, pos1);
                            let t0 = if fanin0.is_complemented() { !&v0 } else { v0 };
                            let t1 = if fanin1.is_complemented() { !&v1 } else { v1 };
                            &t0 & &t1
                        };
                        Window { leaves, table }
                    }
                }
            };
            windows.push(window);
        }
        WindowIndex { windows, limit }
    }

    /// The window limit used at construction time.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The window of `node`.
    pub fn window(&self, node: NodeId) -> &Window {
        &self.windows[node]
    }

    /// Attempts to disprove or prove the equivalence of two nodes (up to the
    /// given complement relation) purely from their windows — the
    /// "exhaustive simulation" shortcut of Section IV-A.
    ///
    /// * `Some(true)`  — the nodes are provably equivalent: both windows are
    ///   global (all leaves are PIs) and their truth tables agree over the
    ///   union of the leaves.  This is a complete proof and needs no SAT
    ///   call.
    /// * `Some(false)` — the exhaustive window simulation distinguishes the
    ///   nodes.  When both windows are global this is a complete disproof;
    ///   when they are not, it is the same heuristic filter the paper uses
    ///   (the pair is dropped as a merge candidate — never merged — so
    ///   soundness of the sweep is unaffected).
    /// * `None` — the windows are not comparable; a SAT query is needed.
    pub fn compare(&self, aig: &Aig, a: NodeId, b: NodeId, complemented: bool) -> Option<bool> {
        let wa = &self.windows[a];
        let wb = &self.windows[b];
        if wa.leaves == wb.leaves {
            let tb = if complemented {
                !&wb.table
            } else {
                wb.table.clone()
            };
            let equal = wa.table == tb;
            if !equal {
                return Some(false);
            }
            return if wa.is_global(aig) { Some(true) } else { None };
        }
        // Different leaf sets: an exhaustive comparison is only conclusive
        // when both windows are global; then both tables are the nodes'
        // actual functions of the primary inputs and can be compared over
        // the union of the leaves.
        if !wa.is_global(aig) || !wb.is_global(aig) {
            return None;
        }
        let mut union = wa.leaves.clone();
        for &l in &wb.leaves {
            if !union.contains(&l) {
                union.push(l);
            }
        }
        union.sort_unstable();
        if union.len() > 16 {
            return None; // keep the exhaustive comparison bounded
        }
        let ta = remap(&wa.table, &wa.leaves, &union);
        let tb = remap(&wb.table, &wb.leaves, &union);
        let tb = if complemented { !&tb } else { tb };
        Some(ta == tb)
    }

    /// Simulates only the `targets` under `patterns`, evaluating each target
    /// through its window (leaves first, one table lookup per pattern).
    /// Non-target internal logic inside the windows is never visited — this
    /// is the AIG-side analogue of the specified-node mode of Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the AIG's.
    pub fn simulate_targets(
        &self,
        aig: &Aig,
        patterns: &PatternSet,
        targets: &[NodeId],
    ) -> HashMap<NodeId, Signature> {
        self.simulate_targets_counted(aig, patterns, targets).0
    }

    /// Like [`WindowIndex::simulate_targets`], but also returns the sorted
    /// list of AND nodes that were actually evaluated (targets plus the
    /// window leaves visited on their behalf) — the measure of work
    /// incremental resimulation saves over a full network pass.
    pub fn simulate_targets_counted(
        &self,
        aig: &Aig,
        patterns: &PatternSet,
        targets: &[NodeId],
    ) -> (HashMap<NodeId, Signature>, Vec<NodeId>) {
        assert_eq!(
            patterns.num_inputs(),
            aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        // Evaluate every node that appears as a leaf of some target window
        // and is itself an AND node, recursively.  The recursion grounds out
        // at PIs; memoisation keeps each node evaluated once.
        let mut cache: HashMap<NodeId, Signature> = HashMap::new();
        let mut result = HashMap::new();
        for &t in targets {
            let sig = self.eval_node(aig, patterns, t, n, &mut cache);
            result.insert(t, sig);
        }
        let mut evaluated: Vec<NodeId> = cache
            .keys()
            .copied()
            .filter(|&id| matches!(aig.node(id), AigNode::And { .. }))
            .collect();
        evaluated.sort_unstable();
        (result, evaluated)
    }

    /// Like [`WindowIndex::simulate_targets_counted`], but evaluates the
    /// needed window nodes level by level across up to `num_threads` scoped
    /// workers, each filling a contiguous chunk of every node's signature
    /// words (the [`bitsim::parallel`] scheduler shared with the all-nodes
    /// evaluators).  The evaluation is exact, so the result is
    /// **bit-identical to the sequential path** for any thread count;
    /// `num_threads <= 1` falls back to the sequential recursion.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the AIG's.
    pub fn simulate_targets_counted_parallel(
        &self,
        aig: &Aig,
        patterns: &PatternSet,
        targets: &[NodeId],
        num_threads: usize,
    ) -> (HashMap<NodeId, Signature>, Vec<NodeId>) {
        let n = patterns.num_patterns();
        let num_words = n.div_ceil(64);
        // A single signature word cannot be split across workers (the CE
        // resimulation case), so skip the per-node level set-up entirely.
        if num_threads <= 1 || targets.is_empty() || num_words < 2 {
            return self.simulate_targets_counted(aig, patterns, targets);
        }
        assert_eq!(
            patterns.num_inputs(),
            aig.num_inputs(),
            "pattern set input count must match the network"
        );
        // The needed set: targets plus, recursively, the AND nodes among
        // their window leaves — exactly the nodes the sequential recursion
        // memoises.
        let num_nodes = aig.num_nodes();
        let mut needed = vec![false; num_nodes];
        let mut stack: Vec<NodeId> = targets.to_vec();
        while let Some(id) = stack.pop() {
            if needed[id] {
                continue;
            }
            needed[id] = true;
            if matches!(aig.node(id), AigNode::And { .. }) {
                stack.extend(self.windows[id].leaves.iter().copied());
            }
        }
        // Dependency depth over the window-leaf DAG (leaves precede their
        // users in id order, so one ascending pass suffices).
        let mut signatures: Vec<Signature> = vec![Signature::zeros(0); num_nodes];
        let mut depth = vec![0usize; num_nodes];
        let mut level_nodes: Vec<Vec<NodeId>> = Vec::new();
        for id in 0..num_nodes {
            if !needed[id] {
                continue;
            }
            match aig.node(id) {
                AigNode::Const0 => signatures[id] = Signature::zeros(n),
                AigNode::Input { position } => {
                    signatures[id] = patterns.input_signature(*position).clone();
                }
                AigNode::And { .. } => {
                    let d = 1 + self.windows[id]
                        .leaves
                        .iter()
                        .filter(|&&l| matches!(aig.node(l), AigNode::And { .. }))
                        .map(|&l| depth[l])
                        .max()
                        .unwrap_or(0);
                    depth[id] = d;
                    if level_nodes.len() < d {
                        level_nodes.resize_with(d, Vec::new);
                    }
                    level_nodes[d - 1].push(id);
                }
            }
        }
        for level in &level_nodes {
            let sigs = &signatures;
            let buffers =
                parallel::evaluate_level(level, num_words, num_threads, &|id, word_lo, out| {
                    let window = &self.windows[id];
                    let leaf_words: Vec<&[u64]> =
                        window.leaves.iter().map(|&l| sigs[l].words()).collect();
                    parallel::lookup_kernel(
                        |index| window.table.get_bit(index),
                        &leaf_words,
                        n,
                        word_lo,
                        out,
                    );
                });
            for (out, &id) in buffers.into_iter().zip(level.iter()) {
                signatures[id] = Signature::from_words(n, out);
            }
        }
        let result = targets
            .iter()
            .map(|&t| (t, signatures[t].clone()))
            .collect();
        let mut evaluated: Vec<NodeId> = (0..num_nodes)
            .filter(|&id| needed[id] && matches!(aig.node(id), AigNode::And { .. }))
            .collect();
        evaluated.sort_unstable();
        (result, evaluated)
    }

    fn eval_node(
        &self,
        aig: &Aig,
        patterns: &PatternSet,
        node: NodeId,
        n: usize,
        cache: &mut HashMap<NodeId, Signature>,
    ) -> Signature {
        if let Some(sig) = cache.get(&node) {
            return sig.clone();
        }
        let sig = match aig.node(node) {
            AigNode::Const0 => Signature::zeros(n),
            AigNode::Input { position } => patterns.input_signature(*position).clone(),
            AigNode::And { .. } => {
                let window = self.windows[node].clone();
                let leaf_sigs: Vec<Signature> = window
                    .leaves
                    .iter()
                    .map(|&l| self.eval_node(aig, patterns, l, n, cache))
                    .collect();
                let mut out = Signature::zeros(n);
                for p in 0..n {
                    let mut index = 0usize;
                    for (k, ls) in leaf_sigs.iter().enumerate() {
                        if ls.get_bit(p) {
                            index |= 1 << k;
                        }
                    }
                    if window.table.get_bit(index) {
                        out.set_bit(p, true);
                    }
                }
                out
            }
        };
        cache.insert(node, sig.clone());
        sig
    }
}

fn remap(table: &TruthTable, old_leaves: &[NodeId], new_leaves: &[NodeId]) -> TruthTable {
    let var_map: Vec<usize> = old_leaves
        .iter()
        .map(|l| {
            new_leaves
                .iter()
                .position(|m| m == l)
                .expect("old leaf present in merged leaves")
        })
        .collect();
    table.extend_to(new_leaves.len(), &var_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitsim::AigSimulator;

    fn sample_aig() -> (Aig, Vec<netlist::Lit>) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let g1 = aig.and(xs[0], xs[1]);
        let g2 = aig.xor(xs[2], xs[3]);
        let g3 = aig.maj(xs[3], xs[4], xs[5]);
        let g4 = aig.mux(g1, g2, g3);
        aig.add_output("y", g4);
        (aig, vec![g1, g2, g3, g4])
    }

    #[test]
    fn windows_match_global_function_when_small() {
        let (aig, gates) = sample_aig();
        let index = WindowIndex::build(&aig, 8);
        // With an 8-leaf limit every window of this small AIG is global.
        for lit in &gates {
            let w = index.window(lit.node());
            assert!(w.is_global(&aig), "window of {lit:?} should be global");
        }
        // The window truth table matches exhaustive evaluation.
        let g2 = gates[1];
        let w = index.window(g2.node());
        for bits in 0..(1usize << w.leaves.len()) {
            let mut assignment = vec![false; aig.num_inputs()];
            for (k, &leaf) in w.leaves.iter().enumerate() {
                if let AigNode::Input { position } = aig.node(leaf) {
                    assignment[*position] = (bits >> k) & 1 == 1;
                }
            }
            let mut values = vec![false; aig.num_nodes()];
            for id in aig.node_ids() {
                values[id] = match aig.node(id) {
                    AigNode::Const0 => false,
                    AigNode::Input { position } => assignment[*position],
                    AigNode::And { fanin0, fanin1 } => {
                        (values[fanin0.node()] ^ fanin0.is_complemented())
                            && (values[fanin1.node()] ^ fanin1.is_complemented())
                    }
                };
            }
            assert_eq!(w.table.get_bit(bits), values[g2.node()]);
        }
    }

    #[test]
    fn small_limit_cuts_windows() {
        let (aig, gates) = sample_aig();
        let index = WindowIndex::build(&aig, 2);
        assert_eq!(index.limit(), 2);
        let top = gates[3];
        let w = index.window(top.node());
        assert!(w.leaves.len() <= 2);
        assert!(!w.is_global(&aig));
    }

    #[test]
    fn compare_detects_equal_and_different_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let g = aig.and(f, b); // equals f
        let h = aig.xor(a, b);
        aig.add_output("g", g);
        aig.add_output("h", h);
        let index = WindowIndex::build(&aig, 8);
        assert_eq!(index.compare(&aig, f.node(), g.node(), false), Some(true));
        assert_eq!(index.compare(&aig, f.node(), h.node(), false), Some(false));
        // Complemented comparison: f vs !g is definitely different.
        assert_eq!(index.compare(&aig, f.node(), g.node(), true), Some(false));
    }

    #[test]
    fn simulate_targets_matches_full_simulation() {
        let (aig, gates) = sample_aig();
        let patterns = PatternSet::random(6, 200, 21).unwrap();
        let full = AigSimulator::new(&aig).run(&patterns);
        for limit in [2, 4, 8] {
            let index = WindowIndex::build(&aig, limit);
            let targets: Vec<NodeId> = gates.iter().map(|l| l.node()).collect();
            let (result, evaluated) = index.simulate_targets_counted(&aig, &patterns, &targets);
            for &t in &targets {
                assert_eq!(result[&t], full.signature(t), "limit {limit}, node {t}");
            }
            // Every target that is an AND gate was evaluated; no more AND
            // nodes than the network holds were visited.
            for &t in &targets {
                assert!(evaluated.contains(&t), "limit {limit}, target {t}");
            }
            assert!(evaluated.len() <= aig.num_ands());
            assert!(evaluated.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        }
    }

    #[test]
    fn parallel_simulate_targets_is_bit_identical_to_sequential() {
        let (aig, gates) = sample_aig();
        // Pattern counts straddling word boundaries and the parallel grain.
        for n in [1usize, 63, 64, 65, 700] {
            let patterns = PatternSet::random(6, n, n as u64 + 5).unwrap();
            for limit in [2usize, 4, 8] {
                let index = WindowIndex::build(&aig, limit);
                let targets: Vec<NodeId> = gates.iter().map(|l| l.node()).collect();
                let (seq, seq_eval) = index.simulate_targets_counted(&aig, &patterns, &targets);
                for threads in [1usize, 2, 4, 8] {
                    let (par, par_eval) =
                        index.simulate_targets_counted_parallel(&aig, &patterns, &targets, threads);
                    assert_eq!(
                        par_eval, seq_eval,
                        "n {n}, limit {limit}, {threads} threads"
                    );
                    for &t in &targets {
                        assert_eq!(par[&t], seq[&t], "node {t}, n {n}, {threads} threads");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_simulate_targets_handles_pi_and_subset_targets() {
        let (aig, gates) = sample_aig();
        let patterns = PatternSet::random(6, 130, 9).unwrap();
        let index = WindowIndex::build(&aig, 4);
        let pi = aig.inputs()[1];
        let targets = vec![pi, gates[2].node()];
        let (seq, seq_eval) = index.simulate_targets_counted(&aig, &patterns, &targets);
        let (par, par_eval) = index.simulate_targets_counted_parallel(&aig, &patterns, &targets, 4);
        assert_eq!(par_eval, seq_eval);
        assert_eq!(par[&pi], seq[&pi]);
        assert_eq!(par[&targets[1]], seq[&targets[1]]);
        // The PI target's signature is the raw input column.
        assert_eq!(&par[&pi], patterns.input_signature(1));
    }
}
