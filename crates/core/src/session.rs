//! The sweeping session API: the [`Sweeper`] builder, the public [`Engine`]
//! selector and the [`SweepSession`] that executes the Fig. 2 flow
//! (simulate → classify → window-refine → SAT → resimulate) for *both*
//! engines through one dispatch point.
//!
//! The pairwise-merging phase runs on the [`crate::prover::ParallelProver`]:
//! TFI-disjoint candidate batches are proved speculatively (up to
//! [`SweepConfig::sat_parallelism`] workers, one persistent solver per batch
//! slot) and committed at a deterministic barrier in canonical candidate
//! order, so the committed SAT calls, counter-examples and merges — and the
//! swept network — are identical for every parallelism setting.
//!
//! The session is a resumable phase machine: its execution cursor (constant
//! queue, pending merge queue, half-committed batch) lives in an explicit
//! phase value, and every candidate boundary can be captured as a
//! [`SweepCheckpoint`] — either periodically
//! ([`SweepConfig::checkpoint_interval`], delivered through
//! [`crate::Observer::on_checkpoint`]) or when the [`Budget`] stops the run
//! (the checkpoint travels inside
//! [`crate::SweepError::BudgetExhausted`]).  [`Sweeper::resume_from`]
//! restores the full state — solver pool included, see
//! [`crate::checkpoint`] — and the resumed run commits SAT calls, merges
//! and output bytes identical to an uninterrupted one.
//!
//! ```
//! use netlist::Aig;
//! use stp_sweep::{Engine, StatsObserver, SweepConfig, Sweeper};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! let mut stats = StatsObserver::new();
//! let result = Sweeper::new(Engine::Stp)
//!     .config(SweepConfig::paper())
//!     .observer(&mut stats)
//!     .run(&aig)
//!     .expect("valid config, no budget");
//! assert!(result.aig.num_ands() <= aig.num_ands());
//! assert_eq!(stats.merges, result.report.merges);
//! ```

use crate::batching;
use crate::budget::{Budget, BudgetCause};
use crate::checkpoint::{netlist_fingerprint, InflightPod, PhasePod, SweepCheckpoint};
use crate::equiv::EquivClasses;
use crate::error::SweepError;
use crate::observer::{Observer, SatCallOutcome, StatsObserver};
use crate::patterns::{self, PatternGenConfig};
use crate::prover::{
    ParallelProver, ProofItem, ProofOutcome, SupportIndex, WorkerBudget, MAX_BATCH,
};
use crate::report::{SweepConfig, SweepResult};
use crate::resim::{self, ResimEngine};
use crate::window::WindowIndex;
use bitsim::{AigSimulator, CoSplitTable, PatternSet, Signature};
use netlist::{Aig, Lit, NodeId};
use satsolver::{CircuitSat, EquivOutcome};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Which sweeping engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Baseline FRAIG-style sweeping: random initial patterns, representative
    /// drivers only, full bitwise counter-example resimulation.
    Baseline,
    /// The paper's STP-based sweeping (Algorithm 2): SAT-guided patterns,
    /// constant substitution, reverse topological processing and exhaustive
    /// STP window refinement before any SAT call.
    #[default]
    Stp,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Baseline => write!(f, "baseline"),
            Engine::Stp => write!(f, "stp"),
        }
    }
}

/// The session's execution cursor — the serialisable pod types double as
/// the live state, so a checkpoint is a plain clone of the cursor.
type Phase = PhasePod;

/// Builder of a sweeping run.
///
/// Collects the engine, [`SweepConfig`], [`Budget`] and an optional
/// [`Observer`], then either runs to completion ([`Sweeper::run`]), hands
/// out a primed [`SweepSession`] ([`Sweeper::begin`]), or restores a
/// checkpointed session ([`Sweeper::resume_from`]).
#[derive(Default)]
pub struct Sweeper<'o> {
    pub(crate) engine: Engine,
    pub(crate) config: SweepConfig,
    pub(crate) budget: Budget,
    pub(crate) observer: Option<&'o mut dyn Observer>,
    pub(crate) round: usize,
}

impl<'o> Sweeper<'o> {
    /// Starts building a run of the given engine with the default (paper)
    /// configuration and an unlimited budget.
    pub fn new(engine: Engine) -> Self {
        Sweeper {
            engine,
            ..Sweeper::default()
        }
    }

    /// Sets the configuration (validated when the run starts).
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an observer; the caller keeps ownership and can inspect it
    /// after the run.
    pub fn observer(mut self, observer: &'o mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets the resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the round index reported to observers (used by
    /// [`crate::Pipeline`] and the fixpoint wrapper; a plain run is round 0).
    pub(crate) fn round_index(mut self, round: usize) -> Self {
        self.round = round;
        self
    }

    /// Validates the configuration and primes a [`SweepSession`]: the
    /// initial patterns are generated, the network simulated and the
    /// candidate classes built.
    ///
    /// Sessions are combinational; a configuration with
    /// [`SweepConfig::seq_depth`] `> 0` is rejected here — sequential
    /// sweeps run whole through [`Sweeper::run`] / [`Sweeper::resume_run`].
    pub fn begin<'n>(self, aig: &'n Aig) -> Result<SweepSession<'n, 'o>, SweepError> {
        if self.config.seq_depth > 0 {
            return Err(SweepError::InvalidConfig(
                "sequential sweeps (seq_depth > 0) run through Sweeper::run or \
                 Sweeper::resume_run, not through a SweepSession"
                    .to_string(),
            ));
        }
        SweepSession::new(aig, self)
    }

    /// Restores a checkpointed session against the *same* network and
    /// returns it ready to continue.
    ///
    /// The engine and configuration of the resumed run come from the
    /// checkpoint (mixing configurations would break the identity
    /// guarantee); the builder contributes the budget and the observer for
    /// the resumed leg.  Budget dimensions are measured from the resume
    /// point: a deadline counts fresh wall-clock, while `max_sat_calls`
    /// caps the *cumulative* SAT-call total (the checkpoint carries the
    /// calls already committed).
    ///
    /// # Errors
    ///
    /// [`SweepError::CheckpointMismatch`] if the checkpoint was taken
    /// against a network with a different fingerprint, or if its payload is
    /// structurally inconsistent with `aig` (corrupt or hand-edited data).
    ///
    /// # Guarantee
    ///
    /// A run cancelled at any candidate boundary and resumed through this
    /// method commits exactly the SAT calls, counter-examples and merges an
    /// uninterrupted run would have committed, and produces byte-identical
    /// AIGER output — for every `sat_parallelism` × `num_threads`.
    pub fn resume_from<'n>(
        self,
        aig: &'n Aig,
        checkpoint: &SweepCheckpoint,
    ) -> Result<SweepSession<'n, 'o>, SweepError> {
        if checkpoint.config().seq_depth > 0 {
            return Err(SweepError::CheckpointMismatch(
                "the checkpoint was taken by the sequential engine; resume it \
                 through Sweeper::resume_run"
                    .to_string(),
            ));
        }
        SweepSession::resume(aig, self, checkpoint)
    }

    /// Runs the sweep to completion (or until the budget trips).
    ///
    /// A configuration with [`SweepConfig::seq_depth`] `> 0` dispatches to
    /// the sequential engine (ternary-fixpoint analysis plus k-step
    /// induction over latch pairs); otherwise this is shorthand for
    /// `self.begin(aig)?.run()`.
    pub fn run(self, aig: &Aig) -> Result<SweepResult, SweepError> {
        if self.config.seq_depth > 0 {
            return crate::sequential::run_sequential(self, aig, None);
        }
        self.begin(aig)?.run()
    }

    /// Resumes a checkpointed run — combinational or sequential — to
    /// completion, dispatching on the engine that took the checkpoint.
    ///
    /// Combinational checkpoints behave exactly like
    /// `self.resume_from(aig, checkpoint)?.run()`; sequential checkpoints
    /// (taken by a run with [`SweepConfig::seq_depth`] `> 0`) continue the
    /// candidate loop from the committed cursor.  Both directions keep the
    /// resume guarantee: committed SAT calls, counter-examples, merges and
    /// output bytes are identical to an uninterrupted run's.
    pub fn resume_run(
        self,
        aig: &Aig,
        checkpoint: &SweepCheckpoint,
    ) -> Result<SweepResult, SweepError> {
        if checkpoint.config().seq_depth > 0 {
            crate::sequential::run_sequential(self, aig, Some(checkpoint))
        } else {
            self.resume_from(aig, checkpoint)?.run()
        }
    }
}

/// An in-flight sweeping run over a borrowed network.
///
/// Created by [`Sweeper::begin`] (fresh) or [`Sweeper::resume_from`]
/// (restored from a [`SweepCheckpoint`]); [`SweepSession::run`] executes the
/// remaining phases (constant substitution, pairwise merging, cleanup) and
/// returns the [`SweepResult`].  The session borrows the input network for
/// its lifetime — the result is a fresh, functionally equivalent [`Aig`].
pub struct SweepSession<'n, 'o> {
    engine: Engine,
    config: SweepConfig,
    budget: Budget,
    observer: Option<&'o mut dyn Observer>,
    round: usize,
    original: &'n Aig,
    result: Aig,
    sat: CircuitSat<'n>,
    pattern_set: PatternSet,
    classes: EquivClasses,
    windows: Option<WindowIndex>,
    resim: ResimEngine,
    merged: Vec<Option<Lit>>,
    /// Ordered log of applied merges; replaying it reconstructs `result`
    /// and `merged` when a checkpoint is restored.
    merge_log: Vec<(NodeId, Lit)>,
    dont_touch: Vec<bool>,
    stats: StatsObserver,
    simulation_time: Duration,
    sat_time: Duration,
    started: Instant,
    /// Wall-clock consumed before this session leg (nonzero for resumed
    /// sessions; added to the final report's total time).
    elapsed_base: Duration,
    sweep_sat_calls: u64,
    stopped: Option<BudgetCause>,
    /// The execution cursor (see [`crate::checkpoint`]).
    phase: Phase,
    /// The persistent prover pool: item `i` of every batch runs on slot
    /// `i`, so each slot's incremental state (lazily encoded cones, learned
    /// clauses) is a pure function of the deterministic batch sequence —
    /// reuse without a determinism leak.
    solver_pool: Vec<CircuitSat<'n>>,
    /// Committed SAT queries per pool slot; drives the deterministic
    /// size-triggered hygiene resets
    /// ([`SweepConfig::solver_reset_interval`]).
    pool_committed: Vec<u64>,
    /// Whether each pool slot has been handed to the prover since it was
    /// last (re)constructed.  Cold slots are exactly fresh solvers, so
    /// checkpoints omit their snapshots (`None` in
    /// [`SweepCheckpoint::pool`]) and resume rebuilds them with
    /// [`CircuitSat::new`] — behaviour-exact and much cheaper to
    /// serialise.  Never cleared at checkpoint emission: "dirty since
    /// construction/reset" is invariant across suspend/resume, keeping
    /// checkpoint bytes identical between interrupted and uninterrupted
    /// runs.
    pool_dirty: Vec<bool>,
    /// Settled candidates so far (constants processed plus merge candidates
    /// settled at batch barriers) — the periodic-checkpoint cursor.
    committed_candidates: u64,
    last_checkpoint: u64,
    /// When the last periodic checkpoint was emitted (or the session leg
    /// started) — the wall-clock cadence cursor
    /// ([`SweepConfig::checkpoint_interval_millis`]).
    last_checkpoint_instant: Instant,
    /// Counter-example count at the last pattern compaction; with
    /// [`SweepConfig::compact_every`] set, compaction triggers every time
    /// `stats.counterexamples` advances by the cadence.  Checkpointed, so a
    /// resumed run compacts at the same points as an uninterrupted one.
    last_compaction_ce: u64,
    /// Online co-split statistic feeding the refinement-aware batch policy
    /// ([`crate::batching`]).  Advanced only on *committed* counter-example
    /// refinements, so its contents — and therefore batch formation — are
    /// identical for every `sat_parallelism`, worker count and shard count.
    /// Checkpointed (codec v5) so resumed runs form the same batches.
    cosplit: CoSplitTable,
    /// Work-stealing claims beyond each worker's first, summed over the
    /// session's parallel simulations (diagnostic; see
    /// [`crate::SweepReport::steal_events`]).
    steal_events: u64,
    /// Whether priming ran (patterns, classes).  A pre-tripped budget skips
    /// priming; such a session resumes by re-priming from scratch.
    primed: bool,
    /// The checkpoint captured at a budget stop, handed back inside
    /// [`SweepError::BudgetExhausted`].
    stop_checkpoint: Option<Box<SweepCheckpoint>>,
}

impl<'n, 'o> SweepSession<'n, 'o> {
    fn new(aig: &'n Aig, builder: Sweeper<'o>) -> Result<Self, SweepError> {
        builder.config.validate()?;
        let mut config = builder.config;
        // The single engine-normalisation point (previously duplicated in
        // `fraig`): the baseline never uses the paper's additions.
        if builder.engine == Engine::Baseline {
            config.sat_guided_patterns = false;
            config.window_refinement = false;
        }

        let started = Instant::now();
        let mut sat = CircuitSat::new(aig);

        // A budget that is already exhausted (pre-tripped cancel token, zero
        // deadline) skips priming entirely: the run will return the input
        // unchanged, so pattern generation, simulation and the window index
        // would be wasted work.  An in-flight priming phase is not
        // interruptible — budget checks resume at the first candidate.
        let stopped = builder.budget.exceeded(started, 0);
        if let Some(cause) = stopped {
            let mut session = SweepSession {
                engine: builder.engine,
                config,
                budget: builder.budget,
                observer: builder.observer,
                round: builder.round,
                original: aig,
                result: aig.clone(),
                sat,
                pattern_set: PatternSet::new(aig.num_inputs()),
                classes: EquivClasses::default(),
                windows: None,
                resim: ResimEngine::new(aig),
                merged: vec![None; aig.num_nodes()],
                merge_log: Vec::new(),
                dont_touch: vec![false; aig.num_nodes()],
                stats: StatsObserver::new(),
                simulation_time: Duration::ZERO,
                sat_time: Duration::ZERO,
                started,
                elapsed_base: Duration::ZERO,
                sweep_sat_calls: 0,
                stopped: Some(cause),
                phase: Phase::Start,
                solver_pool: Vec::new(),
                pool_committed: vec![0; MAX_BATCH],
                pool_dirty: vec![false; MAX_BATCH],
                committed_candidates: 0,
                last_checkpoint: 0,
                last_checkpoint_instant: started,
                last_compaction_ce: 0,
                cosplit: CoSplitTable::new(),
                steal_events: 0,
                primed: false,
                stop_checkpoint: None,
            };
            session.notify_round_start();
            return Ok(session);
        }

        // Initial simulation (random or SAT-guided).  SAT queries spent on
        // pattern generation are not sweeping queries; they are neither
        // reported to observers nor counted against the budget, as in the
        // paper's Table II accounting.
        let sim_start = Instant::now();
        let pattern_set = if builder.engine == Engine::Stp && config.sat_guided_patterns {
            let gen_config = PatternGenConfig {
                num_random: config.num_initial_patterns,
                seed: config.seed,
                conflict_limit: config.conflict_limit.min(2_000),
                ..PatternGenConfig::default()
            };
            let (p, _) = patterns::sat_guided_patterns(aig, &mut sat, &gen_config);
            p
        } else {
            patterns::random_patterns(aig, config.num_initial_patterns, config.seed)
        };
        // Level-scheduled parallel evaluation; bit-identical to a
        // sequential run for every `num_threads`.
        let state = AigSimulator::new(aig).run_parallel(&pattern_set, config.num_threads);
        let simulation_time = sim_start.elapsed();

        // Prime the classes straight from the arena views — no per-node
        // signature clones.
        let classes =
            EquivClasses::from_node_signatures(aig.and_ids().map(|id| (id, state.signature(id))));

        // Window index used by the STP engine for exhaustive refinement and
        // for counter-example simulation restricted to class nodes.
        let windows = if builder.engine == Engine::Stp {
            Some(WindowIndex::build(aig, config.window_limit))
        } else {
            None
        };

        let mut session = SweepSession {
            engine: builder.engine,
            config,
            budget: builder.budget,
            observer: builder.observer,
            round: builder.round,
            original: aig,
            result: aig.clone(),
            sat,
            pattern_set,
            classes,
            windows,
            resim: ResimEngine::new(aig),
            merged: vec![None; aig.num_nodes()],
            merge_log: Vec::new(),
            dont_touch: vec![false; aig.num_nodes()],
            stats: StatsObserver::new(),
            simulation_time,
            sat_time: Duration::ZERO,
            started,
            elapsed_base: Duration::ZERO,
            sweep_sat_calls: 0,
            stopped: None,
            phase: Phase::Start,
            solver_pool: (0..MAX_BATCH).map(|_| CircuitSat::new(aig)).collect(),
            pool_committed: vec![0; MAX_BATCH],
            pool_dirty: vec![false; MAX_BATCH],
            committed_candidates: 0,
            last_checkpoint: 0,
            last_checkpoint_instant: started,
            last_compaction_ce: 0,
            cosplit: CoSplitTable::new(),
            steal_events: state.steal_events(),
            primed: true,
            stop_checkpoint: None,
        };
        session.notify_round_start();
        Ok(session)
    }

    /// Restores a session from a checkpoint (see [`Sweeper::resume_from`]).
    fn resume(
        aig: &'n Aig,
        builder: Sweeper<'o>,
        checkpoint: &SweepCheckpoint,
    ) -> Result<Self, SweepError> {
        let mismatch = |what: &str| SweepError::CheckpointMismatch(what.to_string());
        if !checkpoint.matches(aig) {
            // A checkpoint's merge log names concrete node ids, so resuming
            // requires the exact numbering it was taken against — but
            // telling the caller their network is the same circuit merely
            // renumbered lets a service route the job to its stored
            // original netlist instead of restarting from scratch.
            let msg = if checkpoint.matches_canonical(aig) {
                format!(
                    "netlist fingerprint {:016x} does not match the checkpoint's {:016x}, \
                     but the canonical fingerprints agree — this is the same circuit up \
                     to node renumbering; resume against the original netlist the \
                     checkpoint was taken from",
                    netlist_fingerprint(aig),
                    checkpoint.fingerprint()
                )
            } else {
                format!(
                    "netlist fingerprint {:016x} does not match the checkpoint's {:016x} \
                     — the checkpoint was taken against a different network",
                    netlist_fingerprint(aig),
                    checkpoint.fingerprint()
                )
            };
            return Err(SweepError::CheckpointMismatch(msg));
        }
        let engine = checkpoint.engine();
        let config = *checkpoint.config();
        config.validate()?;
        if !checkpoint.is_primed() {
            // The budget tripped before priming: nothing was proved, so a
            // resume is simply a fresh (deterministic) run under the
            // checkpointed engine and configuration.
            return Sweeper {
                engine,
                config,
                budget: builder.budget,
                observer: builder.observer,
                round: checkpoint.round,
            }
            .begin(aig);
        }

        let num_nodes = aig.num_nodes();
        let in_range = |node: NodeId| node < num_nodes;
        // The merge log is replayed through `Aig::replace_node`, whose
        // preconditions (an AND node, a topologically earlier replacement)
        // must hold for corrupt data too — check them here so corruption
        // surfaces as a typed mismatch, never a panic.
        if !checkpoint
            .merge_log
            .iter()
            .all(|&(node, lit)| in_range(node) && aig.node(node).is_and() && lit.node() < node)
        {
            return Err(mismatch("merge log entry violates the network's topology"));
        }
        if !checkpoint.dont_touch.iter().copied().all(in_range) {
            return Err(mismatch(
                "don't-touch set references a node outside the network",
            ));
        }
        if !checkpoint
            .classes
            .iter()
            .flat_map(|(members, _)| members.iter().copied())
            .chain(checkpoint.constants.iter().map(|c| c.node))
            .all(in_range)
        {
            return Err(mismatch(
                "candidate classes reference a node outside the network",
            ));
        }
        if checkpoint.pattern_words.len() != aig.num_inputs() {
            return Err(mismatch("pattern set input arity differs from the network"));
        }
        // `Signature::from_words` silently pads/truncates word vectors; a
        // corrupt word count would therefore resume into a silently
        // different pattern set — reject it instead.
        let expected_words = checkpoint.num_patterns.div_ceil(64).max(1);
        if checkpoint
            .pattern_words
            .iter()
            .any(|words| words.len() != expected_words)
        {
            return Err(mismatch("pattern set word count disagrees with its length"));
        }
        if checkpoint.pool.len() != MAX_BATCH || checkpoint.pool_committed.len() != MAX_BATCH {
            return Err(mismatch(
                "solver pool arity differs from the engine's batch width",
            ));
        }
        match &checkpoint.phase {
            PhasePod::Start | PhasePod::Done => {}
            PhasePod::Constants { queue, next } => {
                if !queue.iter().all(|c| in_range(c.node)) || *next > queue.len() {
                    return Err(mismatch("constant-phase cursor is inconsistent"));
                }
            }
            PhasePod::Merging {
                pending, inflight, ..
            } => {
                if !pending.iter().all(|&(node, _)| in_range(node)) {
                    return Err(mismatch(
                        "pending queue references a node outside the network",
                    ));
                }
                if let Some(batch) = inflight {
                    let mut seen_slots = [false; MAX_BATCH];
                    let items_ok = batch.items.len() <= MAX_BATCH
                        && batch.results.len() == batch.items.len()
                        && batch.pre_query.len() == batch.items.len()
                        && batch.next <= batch.items.len()
                        && batch.committed <= batch.next
                        && batch.items.iter().all(|item| {
                            in_range(item.candidate)
                                && item.slot < MAX_BATCH
                                && !std::mem::replace(&mut seen_slots[item.slot], true)
                                && item.drivers.iter().all(|&(d, _)| in_range(d))
                        });
                    if !items_ok {
                        return Err(mismatch("in-flight batch is inconsistent"));
                    }
                }
            }
        }

        // Rebuild the working copy by replaying the merge log in order
        // (later merges may redirect literals created by earlier ones, so
        // the order is part of the state).
        let mut result = aig.clone();
        let mut merged: Vec<Option<Lit>> = vec![None; num_nodes];
        for &(node, lit) in &checkpoint.merge_log {
            result.replace_node(node, lit);
            merged[node] = Some(lit);
        }
        let mut dont_touch = vec![false; num_nodes];
        for &node in &checkpoint.dont_touch {
            dont_touch[node] = true;
        }
        let classes =
            EquivClasses::from_parts(checkpoint.classes.clone(), checkpoint.constants.clone())
                .map_err(mismatch)?;
        let pattern_set = PatternSet::from_input_signatures(
            checkpoint.pattern_signatures(),
            checkpoint.num_patterns,
        );
        let windows = if engine == Engine::Stp {
            Some(WindowIndex::build(aig, config.window_limit))
        } else {
            None
        };
        let resim = ResimEngine::from_snapshot(aig, &checkpoint.resim).map_err(mismatch)?;
        let sat = CircuitSat::from_snapshot(aig, &checkpoint.main_solver).map_err(mismatch)?;
        // Cold slots (`None`) were never queried since (re)construction:
        // a fresh solver is their exact state.
        let pool_dirty: Vec<bool> = checkpoint.pool.iter().map(|s| s.is_some()).collect();
        let solver_pool: Vec<CircuitSat<'n>> = checkpoint
            .pool
            .iter()
            .map(|snap| match snap {
                Some(snap) => CircuitSat::from_snapshot(aig, snap),
                None => Ok(CircuitSat::new(aig)),
            })
            .collect::<Result<_, _>>()
            .map_err(mismatch)?;

        // No `on_round` notification: the resumed session continues the
        // round the checkpoint was taken in (the restored stats already
        // count it).
        Ok(SweepSession {
            engine,
            config,
            budget: builder.budget,
            observer: builder.observer,
            round: checkpoint.round,
            original: aig,
            result,
            sat,
            pattern_set,
            classes,
            windows,
            resim,
            merged,
            merge_log: checkpoint.merge_log.clone(),
            dont_touch,
            stats: checkpoint.stats,
            simulation_time: checkpoint.simulation_time,
            sat_time: checkpoint.sat_time,
            started: Instant::now(),
            elapsed_base: checkpoint.elapsed,
            sweep_sat_calls: checkpoint.sweep_sat_calls,
            stopped: None,
            phase: checkpoint.phase.clone(),
            solver_pool,
            pool_committed: checkpoint.pool_committed.clone(),
            pool_dirty,
            committed_candidates: checkpoint.committed_candidates,
            last_checkpoint: checkpoint.committed_candidates,
            last_checkpoint_instant: Instant::now(),
            last_compaction_ce: checkpoint.last_compaction_ce,
            cosplit: CoSplitTable::from_snapshot(&checkpoint.cosplit),
            // Steal counts are wall-clock diagnostics of *this* leg; they are
            // deliberately not carried across a resume.
            steal_events: 0,
            primed: true,
            stop_checkpoint: None,
        })
    }

    fn notify_round_start(&mut self) {
        let gates = self.original.num_ands();
        let round = self.round;
        self.stats.on_round(round, gates);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_round(round, gates);
        }
    }

    /// The engine this session runs.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The (normalised) configuration of this session.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Number of merge candidates remaining (class members beyond their
    /// representatives, plus constant candidates).
    pub fn num_candidates(&self) -> usize {
        self.classes.num_candidates()
    }

    /// Captures the session's current state as a resumable checkpoint.
    ///
    /// The session sits at a candidate boundary whenever it is externally
    /// reachable, so the checkpoint is always consistent.  Runs stopped by
    /// a budget additionally hand their stop-point checkpoint back inside
    /// [`SweepError::BudgetExhausted`], and periodic checkpoints flow
    /// through [`crate::Observer::on_checkpoint`].
    pub fn checkpoint(&self) -> SweepCheckpoint {
        self.build_checkpoint(self.phase.clone())
    }

    /// Executes the remaining phases and returns the result.
    ///
    /// On budget exhaustion the partial result — every merge proved so far,
    /// functionally equivalent to the input — is returned inside
    /// [`SweepError::BudgetExhausted`], together with a resumable
    /// checkpoint of the stop point.
    pub fn run(mut self) -> Result<SweepResult, SweepError> {
        self.execute();
        let stopped = self.stopped;
        let checkpoint = self.stop_checkpoint.take();
        let result = self.finish();
        match stopped {
            None => Ok(result),
            Some(cause) => Err(SweepError::BudgetExhausted {
                cause,
                partial: Box::new(result),
                checkpoint,
            }),
        }
    }

    /// Drives the phase machine until the run completes or the budget
    /// stops it (recording the stop-point checkpoint).
    fn execute(&mut self) {
        if self.stopped.is_some() {
            // Pre-tripped budget: nothing was primed, nothing to resume.
            return;
        }
        loop {
            match &self.phase {
                Phase::Start => {
                    // Freeze the constant-candidate queue at phase entry
                    // (the engine examines exactly this snapshot even as
                    // refinements drop candidates along the way).
                    let queue = if self.config.constant_substitution {
                        self.classes.constants().to_vec()
                    } else {
                        Vec::new()
                    };
                    self.phase = Phase::Constants { queue, next: 0 };
                }
                Phase::Constants { .. } => {
                    if !self.step_constants() {
                        return;
                    }
                }
                Phase::Merging { .. } => {
                    if !self.step_merging() {
                        return;
                    }
                }
                Phase::Done => return,
            }
        }
    }

    /// Checks the budget; returns `false` (and records the cause) once the
    /// run must stop.
    fn within_budget(&mut self) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        match self.budget.exceeded(self.started, self.sweep_sat_calls) {
            Some(cause) => {
                self.stopped = Some(cause);
                false
            }
            None => true,
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint plumbing.
    // ------------------------------------------------------------------

    /// Assembles a checkpoint around the given execution cursor.
    fn build_checkpoint(&self, phase: Phase) -> SweepCheckpoint {
        SweepCheckpoint {
            fingerprint: netlist_fingerprint(self.original),
            canonical_fingerprint: netlist::canonical_fingerprint(self.original),
            primed: self.primed,
            engine: self.engine,
            config: self.config,
            round: self.round,
            phase,
            merge_log: self.merge_log.clone(),
            dont_touch: (0..self.original.num_nodes())
                .filter(|&n| self.dont_touch[n])
                .collect(),
            classes: self
                .classes
                .classes()
                .iter()
                .map(|c| (c.members().to_vec(), c.phases().to_vec()))
                .collect(),
            constants: self.classes.constants().to_vec(),
            num_patterns: self.pattern_set.num_patterns(),
            pattern_words: (0..self.pattern_set.num_inputs())
                .map(|i| self.pattern_set.input_signature(i).words().to_vec())
                .collect(),
            resim: self.resim.snapshot(),
            stats: self.stats,
            sweep_sat_calls: self.sweep_sat_calls,
            committed_candidates: self.committed_candidates,
            last_compaction_ce: self.last_compaction_ce,
            cosplit: self.cosplit.snapshot(),
            simulation_time: self.simulation_time,
            sat_time: self.sat_time,
            elapsed: self.elapsed_base + self.started.elapsed(),
            main_solver: self.sat.snapshot(),
            // Cold slots (never handed to the prover since construction or
            // the last hygiene reset) are fresh solvers; omit their
            // snapshots — resume rebuilds them exactly.
            pool: self
                .solver_pool
                .iter()
                .zip(&self.pool_dirty)
                .map(|(s, &dirty)| dirty.then(|| s.snapshot()))
                .collect(),
            pool_committed: self.pool_committed.clone(),
            // The sequential counters belong to the sequential engine's own
            // checkpoints; a combinational session always writes zeros.
            seq_candidates: 0,
            seq_ternary_constants: 0,
            seq_induction_refuted: 0,
            seq_induction_undet: 0,
            seq_ternary_iterations: 0,
        }
    }

    /// Records the stop-point checkpoint when a budget stop is observed
    /// (skipped for unprimed sessions — there is nothing to resume).
    fn capture_stop_checkpoint(&mut self, phase: &Phase) {
        if self.primed {
            self.stop_checkpoint = Some(Box::new(self.build_checkpoint(phase.clone())));
        }
    }

    /// Whether a periodic checkpoint is due at this candidate boundary:
    /// the committed-candidate cursor advanced by the count cadence, or the
    /// wall clock advanced by the time cadence (whichever fires first).
    /// Checkpoints never change the sweep, so the time-triggered emissions
    /// — nondeterministic as events — cannot perturb results.
    fn checkpoint_due(&self) -> bool {
        let interval = self.config.checkpoint_interval;
        if interval > 0
            && self
                .committed_candidates
                .saturating_sub(self.last_checkpoint)
                >= interval as u64
        {
            return true;
        }
        let millis = self.config.checkpoint_interval_millis;
        millis > 0 && self.last_checkpoint_instant.elapsed() >= Duration::from_millis(millis)
    }

    /// Emits a periodic checkpoint through the observers.  The checkpoint
    /// is encoded exactly once; observers receive both the structured form
    /// and the serialised bytes (spill-to-disk observers write the bytes,
    /// metering observers read their length).
    fn emit_checkpoint(&mut self, phase: &Phase) {
        self.last_checkpoint = self.committed_candidates;
        self.last_checkpoint_instant = Instant::now();
        let checkpoint = self.build_checkpoint(phase.clone());
        let encoded = checkpoint.encode();
        self.stats.on_checkpoint(&checkpoint, &encoded);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_checkpoint(&checkpoint, &encoded);
        }
    }

    // ------------------------------------------------------------------
    // Observer plumbing: every event goes to the internal stats counter
    // (from which the report is derived) and to the user observer.
    // ------------------------------------------------------------------

    fn notify_sat_call(&mut self, outcome: SatCallOutcome) {
        self.stats.on_sat_call(outcome);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_sat_call(outcome);
        }
    }

    fn notify_merge(&mut self, candidate: NodeId, replacement: Lit) {
        self.stats.on_merge(candidate, replacement);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_merge(candidate, replacement);
        }
    }

    fn notify_counterexample(&mut self, assignment: &[bool]) {
        self.stats.on_counterexample(assignment);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_counterexample(assignment);
        }
    }

    fn notify_class_refined(&mut self, num_classes: usize, moved: usize) {
        self.stats.on_class_refined(num_classes, moved);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_class_refined(num_classes, moved);
        }
    }

    fn notify_simulation_verdict(&mut self, candidate: NodeId, driver: NodeId, equivalent: bool) {
        self.stats
            .on_simulation_verdict(candidate, driver, equivalent);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_simulation_verdict(candidate, driver, equivalent);
        }
    }

    fn notify_resimulation(&mut self, targets: usize, resimulated: usize, skipped: usize) {
        self.stats.on_resimulation(targets, resimulated, skipped);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_resimulation(targets, resimulated, skipped);
        }
    }

    fn notify_batch_proved(
        &mut self,
        batch: usize,
        committed: usize,
        settled: usize,
        conflicts: usize,
    ) {
        self.stats
            .on_batch_proved(batch, committed, settled, conflicts);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_batch_proved(batch, committed, settled, conflicts);
        }
    }

    fn notify_compaction(&mut self, kept: usize, dropped: usize) {
        self.stats.on_compaction(kept, dropped);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_compaction(kept, dropped);
        }
    }

    // ------------------------------------------------------------------
    // SAT queries (timed, budgeted, observed).
    // ------------------------------------------------------------------

    fn prove_constant(&mut self, lit: Lit, value: bool) -> EquivOutcome {
        let sat_start = Instant::now();
        let outcome = self
            .sat
            .prove_constant(lit, value, self.config.conflict_limit);
        self.sat_time += sat_start.elapsed();
        self.record_sat_outcome(&outcome);
        outcome
    }

    fn record_sat_outcome(&mut self, outcome: &EquivOutcome) {
        self.sweep_sat_calls += 1;
        let kind = match outcome {
            EquivOutcome::Equivalent => SatCallOutcome::Unsat,
            EquivOutcome::CounterExample(_) => SatCallOutcome::Sat,
            EquivOutcome::Undetermined => SatCallOutcome::Undetermined,
        };
        self.notify_sat_call(kind);
    }

    // ------------------------------------------------------------------
    // Phase: constant-node substitution.
    // ------------------------------------------------------------------

    /// Processes constant candidates until the phase completes (`true`) or
    /// the budget stops the run (`false`, stop checkpoint captured).
    fn step_constants(&mut self) -> bool {
        loop {
            let candidate = {
                let Phase::Constants { queue, next } = &self.phase else {
                    unreachable!("step_constants runs in the constants phase")
                };
                queue.get(*next).copied()
            };
            let Some(candidate) = candidate else {
                self.phase = self.merging_entry_phase();
                return true;
            };
            if !self.within_budget() {
                let phase = self.phase.clone();
                self.capture_stop_checkpoint(&phase);
                return false;
            }
            let lit = Lit::positive(candidate.node);
            match self.prove_constant(lit, candidate.value) {
                EquivOutcome::Equivalent => {
                    let constant = if candidate.value {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    };
                    self.apply_merge_lit(candidate.node, constant);
                }
                EquivOutcome::CounterExample(ce) => self.refine_with_counterexample(&ce),
                EquivOutcome::Undetermined => {
                    self.dont_touch[candidate.node] = true;
                    self.classes.remove(candidate.node);
                }
            }
            if let Phase::Constants { next, .. } = &mut self.phase {
                *next += 1;
            }
            self.committed_candidates += 1;
            if self.checkpoint_due() {
                let phase = self.phase.clone();
                self.emit_checkpoint(&phase);
            }
        }
    }

    /// The initial merging-phase cursor: every AND node pending, in the
    /// engine's canonical processing order.
    fn merging_entry_phase(&self) -> Phase {
        let mut order: Vec<NodeId> = self.original.and_ids().collect();
        if self.engine == Engine::Stp {
            // Algorithm 2 traverses the circuit from outputs to inputs.
            order.reverse();
        }
        Phase::Merging {
            pending: order.into_iter().map(|c| (c, 0)).collect(),
            batch_index: 0,
            inflight: None,
        }
    }

    // ------------------------------------------------------------------
    // Phase: pairwise merging, batched over the parallel prover.
    // ------------------------------------------------------------------

    /// Derives the driver list the engine examines next for `candidate`,
    /// given the attempts already consumed — class members that precede the
    /// candidate in topological order, bounded by the TFI limit — plus the
    /// candidate's class representative (the key the batch former's co-split
    /// lookups are made under).  `None` means the candidate is settled
    /// (merged, don't-touch, out of budgeted attempts, classless, its
    /// class's representative, or driverless).
    fn next_drivers_with_rep(
        &self,
        candidate: NodeId,
        attempts: usize,
    ) -> Option<(NodeId, Vec<(NodeId, bool)>)> {
        if self.merged[candidate].is_some()
            || self.dont_touch[candidate]
            || attempts >= self.config.tfi_limit
        {
            return None;
        }
        let class = self.classes.class_of(candidate)?;
        if class.representative() == candidate {
            return None;
        }
        let candidate_phase = class.phase_of(candidate);
        let drivers: Vec<(NodeId, bool)> = class
            .members()
            .iter()
            .zip(class.members().iter().map(|&m| class.phase_of(m)))
            .filter(|&(&m, _)| m < candidate && self.merged[m].is_none() && !self.dont_touch[m])
            .map(|(&m, phase)| (m, phase != candidate_phase))
            .take(self.config.tfi_limit - attempts)
            .collect();
        if drivers.is_empty() {
            None
        } else {
            Some((class.representative(), drivers))
        }
    }

    /// Re-inserts a candidate into the pending queue at its canonical
    /// position (the queue is kept sorted by the round's processing order).
    fn reinsert(
        pending: &mut Vec<(NodeId, usize)>,
        rank: &[usize],
        candidate: NodeId,
        attempts: usize,
    ) {
        let pos = pending.partition_point(|&(c, _)| rank[c] < rank[candidate]);
        pending.insert(pos, (candidate, attempts));
    }

    /// The pairwise-merging phase: the candidate queue is cut into prefix
    /// batches under the configured [`crate::report::BatchPolicy`], every
    /// batch is proved speculatively by the [`ParallelProver`] (on the
    /// persistent candidate-keyed solver pool, up to
    /// [`SweepConfig::sat_parallelism`] workers, optionally sharded —
    /// [`SweepConfig::shards`]), and the results are committed at a
    /// deterministic barrier in canonical candidate order — a result whose
    /// assumed driver list no longer matches the replayed state is
    /// discarded (`sat_parallel_conflicts`), its solver slot restored from
    /// the pre-query snapshot, and the candidate retried in a later batch.
    /// See [`crate::prover`] for the protocol; the committed SAT calls,
    /// counter-examples and merges are identical for every
    /// `sat_parallelism`, `num_threads`, batch policy and shard count.
    ///
    /// Returns `true` when the phase completes, `false` on a budget stop
    /// (with the stop checkpoint captured, half-committed batch included).
    fn step_merging(&mut self) -> bool {
        // Derived indices are pure functions of the input network and the
        // engine, so a resumed session recomputes them instead of carrying
        // them in the checkpoint.
        let mut order: Vec<NodeId> = self.original.and_ids().collect();
        if self.engine == Engine::Stp {
            order.reverse();
        }
        let mut rank = vec![usize::MAX; self.original.num_nodes()];
        for (i, &candidate) in order.iter().enumerate() {
            rank[candidate] = i;
        }
        let supports = SupportIndex::build(self.original);

        // Take the cursor out of `self.phase` while mutating it; it is
        // written back before any checkpoint is captured.
        let Phase::Merging {
            mut pending,
            mut batch_index,
            mut inflight,
        } = std::mem::replace(&mut self.phase, Phase::Done)
        else {
            unreachable!("step_merging runs in the merging phase")
        };

        let finished = self.merging_loop(
            &mut pending,
            &mut batch_index,
            &mut inflight,
            &rank,
            &supports,
        );
        if finished {
            self.phase = Phase::Done;
            true
        } else {
            let phase = Phase::Merging {
                pending,
                batch_index,
                inflight,
            };
            self.capture_stop_checkpoint(&phase);
            self.phase = phase;
            false
        }
    }

    /// The batch loop; returns `true` when the queue drains, `false` on a
    /// budget stop.
    fn merging_loop(
        &mut self,
        pending: &mut Vec<(NodeId, usize)>,
        batch_index: &mut usize,
        inflight: &mut Option<InflightPod>,
        rank: &[usize],
        supports: &SupportIndex,
    ) -> bool {
        // A restored half-committed batch is finished first: stored results
        // replay verbatim, aborted items re-prove on their untouched slots.
        if inflight.is_some() {
            if !self.commit_inflight(pending, batch_index, inflight, rank) {
                return false;
            }
            self.maybe_emit_merging_checkpoint(pending, *batch_index);
        }

        while !pending.is_empty() {
            if !self.within_budget() {
                return false;
            }

            // Deterministic per-slot solver hygiene: a slot that has served
            // `solver_reset_interval` committed queries is replaced by a
            // fresh solver before the next batch forms.  Keyed on committed
            // counts, the resets happen at identical points for every
            // `sat_parallelism`, so determinism is preserved.
            if self.config.solver_reset_interval > 0 {
                for slot in 0..self.solver_pool.len() {
                    if self.pool_committed[slot] >= self.config.solver_reset_interval {
                        self.solver_pool[slot] = CircuitSat::new(self.original);
                        self.pool_committed[slot] = 0;
                        self.pool_dirty[slot] = false;
                    }
                }
            }

            // Batch formation: take the maximal *prefix* of live pending
            // candidates (in canonical order) that the batch policy admits.
            // Settled candidates are resolved on the way; the first live
            // candidate the policy rejects — or whose solver slot collides —
            // TERMINATES the batch instead of being skipped, so the
            // committed operation sequence is the strict canonical order
            // under every policy (see [`crate::batching`]).  Nothing here
            // depends on `sat_parallelism` or the shard count.
            let mut batch: Vec<ProofItem> = Vec::new();
            let mut batch_reps: Vec<NodeId> = Vec::new();
            let mut used_slots = [false; MAX_BATCH];
            let mut acc = supports.empty_accumulator();
            let mut i = 0usize;
            // Indices (ascending) of entries leaving `pending` this round —
            // settled candidates and taken batch items — compacted in one
            // O(|pending|) pass instead of per-entry `Vec::remove` shifts.
            let mut drop_indices: Vec<usize> = Vec::new();
            while i < pending.len() && batch.len() < MAX_BATCH {
                let (candidate, attempts) = pending[i];
                let Some((rep, drivers)) = self.next_drivers_with_rep(candidate, attempts) else {
                    drop_indices.push(i);
                    i += 1;
                    continue;
                };
                // Solver slots are keyed on the candidate id, so a slot's
                // incremental state is a pure function of the committed
                // queries it served — independent of batch shapes.
                let slot = candidate % MAX_BATCH;
                let admitted = !used_slots[slot]
                    && (batch.is_empty()
                        || batching::admits(
                            self.config.batch_policy,
                            &self.cosplit,
                            supports,
                            candidate,
                            rep,
                            &drivers,
                            &acc,
                            &batch_reps,
                        ));
                if !admitted {
                    break;
                }
                used_slots[slot] = true;
                supports.accumulate(candidate, &mut acc);
                for &(driver, _) in &drivers {
                    supports.accumulate(driver, &mut acc);
                }
                batch_reps.push(rep);
                batch.push(ProofItem {
                    candidate,
                    attempts,
                    drivers,
                    slot,
                });
                drop_indices.push(i);
                i += 1;
            }
            if !drop_indices.is_empty() {
                let mut index = 0usize;
                let mut next_drop = drop_indices.iter().peekable();
                pending.retain(|_| {
                    let drop = next_drop.peek() == Some(&&index);
                    if drop {
                        next_drop.next();
                    }
                    index += 1;
                    !drop
                });
            }
            if batch.is_empty() {
                return true; // every remaining candidate resolved without work
            }

            // Speculative proving: pure per-item work, any scheduling.
            // Sharded mode partitions the slot range across isolated
            // sub-workers; both paths produce the identical [`BatchProof`].
            let proof = {
                let windows = if self.engine == Engine::Stp && self.config.window_refinement {
                    self.windows.as_ref()
                } else {
                    None
                };
                let prover = ParallelProver::new(
                    self.original,
                    windows,
                    self.config.conflict_limit,
                    self.config.sat_parallelism,
                );
                let worker_budget =
                    WorkerBudget::new(&self.budget, self.started, self.sweep_sat_calls);
                // The items' slots are handed to the prover and may mutate
                // even on aborted items — conservatively dirty.
                for item in &batch {
                    self.pool_dirty[item.slot] = true;
                }
                if self.config.shards > 0 {
                    prover.prove_batch_sharded(
                        &batch,
                        &mut self.solver_pool,
                        &worker_budget,
                        self.config.shards,
                    )
                } else {
                    prover.prove_batch(&batch, &mut self.solver_pool, &worker_budget)
                }
            };
            *inflight = Some(InflightPod {
                items: batch,
                results: proof.results,
                pre_query: proof.pre_query,
                next: 0,
                committed: 0,
                settled: 0,
                conflicts: 0,
            });

            if !self.commit_inflight(pending, batch_index, inflight, rank) {
                return false;
            }
            self.maybe_emit_merging_checkpoint(pending, *batch_index);
        }
        true
    }

    /// Periodic checkpoint at a batch barrier (no in-flight batch by
    /// construction — the barrier just committed it).
    fn maybe_emit_merging_checkpoint(&mut self, pending: &[(NodeId, usize)], batch_index: usize) {
        if self.checkpoint_due() {
            let phase = Phase::Merging {
                pending: pending.to_vec(),
                batch_index,
                inflight: None,
            };
            self.emit_checkpoint(&phase);
        }
    }

    /// Commit barrier: replays a proved batch from its cursor, in canonical
    /// candidate order.  Returns `false` on a budget stop — the cursor then
    /// points at the first uncommitted item, so a checkpointed resume picks
    /// up exactly where the uninterrupted run would have continued.
    fn commit_inflight(
        &mut self,
        pending: &mut Vec<(NodeId, usize)>,
        batch_index: &mut usize,
        inflight_slot: &mut Option<InflightPod>,
        rank: &[usize],
    ) -> bool {
        loop {
            let Some(inflight) = inflight_slot.as_mut() else {
                return true;
            };
            if inflight.next >= inflight.items.len() {
                // Batch fully committed: emit the barrier event and advance
                // the candidate cursor.  (A budget-stopped batch emits no
                // partial event — the resumed run completes it and emits
                // the single, cumulative event an uninterrupted run would.)
                let done = inflight_slot.take().expect("inflight batch present");
                self.notify_batch_proved(
                    *batch_index,
                    done.committed,
                    done.settled,
                    done.conflicts,
                );
                *batch_index += 1;
                self.committed_candidates += done.settled as u64;
                return true;
            }
            let index = inflight.next;
            let item = inflight.items[index].clone();
            let result = inflight.results[index].clone();

            if matches!(result.outcome, ProofOutcome::Aborted) {
                // The worker observed an exhausted budget and never issued
                // its query.  Live runs stop here (every budget dimension
                // is monotone between the worker check and this commit, so
                // the authoritative check agrees); a resumed run re-proves
                // the item on its untouched solver slot, reproducing
                // exactly the query an uninterrupted run would have issued.
                if !self.within_budget() {
                    return false;
                }
                let (fresh, snapshot) = {
                    let windows = if self.engine == Engine::Stp && self.config.window_refinement {
                        self.windows.as_ref()
                    } else {
                        None
                    };
                    let prover = ParallelProver::new(
                        self.original,
                        windows,
                        self.config.conflict_limit,
                        self.config.sat_parallelism,
                    );
                    let worker_budget =
                        WorkerBudget::new(&self.budget, self.started, self.sweep_sat_calls);
                    self.pool_dirty[item.slot] = true;
                    prover.prove_one(
                        &item,
                        &mut self.solver_pool[item.slot],
                        &worker_budget,
                        index > 0,
                    )
                };
                let inflight = inflight_slot.as_mut().expect("inflight batch present");
                inflight.results[index] = fresh;
                inflight.pre_query[index] = snapshot;
                continue;
            }

            // Validation: the consumed driver prefix must be exactly
            // what the engine would examine here; for an exhausted item
            // the whole list must match (the engine would examine every
            // driver of the re-derived list).
            let current = self.next_drivers_with_rep(item.candidate, item.attempts);
            let valid = match (&current, &result.outcome) {
                (Some((_, d)), ProofOutcome::Exhausted) => *d == item.drivers,
                (Some((_, d)), _) => {
                    let used = result.attempts_used.min(item.drivers.len());
                    d.len() >= used && d[..used] == item.drivers[..used]
                }
                (None, _) => false,
            };
            let inflight = inflight_slot.as_mut().expect("inflight batch present");
            if !valid {
                if result.sat_outcome.is_some() {
                    inflight.conflicts += 1;
                    // The invalidated query polluted its solver slot with
                    // assumptions and possibly learned clauses from a state
                    // the committed sequence never visits — restore the
                    // pre-query snapshot, erasing the query, so slot state
                    // stays a pure function of the committed sequence.
                    if let Some(snap) = inflight.pre_query[index].take() {
                        self.solver_pool[item.slot] =
                            CircuitSat::from_snapshot(self.original, &snap)
                                .expect("pre-query snapshot was taken against this network");
                    }
                }
                inflight.next += 1;
                // The discarded query still burned solver time.
                self.sat_time += result.sat_time;
                if current.is_some() {
                    Self::reinsert(pending, rank, item.candidate, item.attempts);
                }
                continue;
            }
            if result.sat_outcome.is_some() && !self.within_budget() {
                // The speculative call is not committed; the run stops
                // exactly as the sequential engine would before issuing
                // this query (its window verdicts are not committed either,
                // so a resumed run replays the item in full).
                return false;
            }
            inflight.next += 1;
            inflight.committed += 1;
            // The committed result's pre-query snapshot is dead weight from
            // here on — drop it so checkpoints only carry snapshots for the
            // still-uncommitted tail.
            inflight.pre_query[index] = None;
            for &(driver, equivalent) in &result.verdicts {
                self.notify_simulation_verdict(item.candidate, driver, equivalent);
            }
            if let Some(kind) = result.sat_outcome {
                self.sat_time += result.sat_time;
                self.sweep_sat_calls += 1;
                self.pool_committed[item.slot] += 1;
                self.notify_sat_call(kind);
                if matches!(kind, SatCallOutcome::Unsat) {
                    // The candidate's class survived a committed proof
                    // unsplit — stability evidence for the refinement-aware
                    // batch former (see [`bitsim::CoSplitTable`]).
                    if let Some((rep, _)) = &current {
                        self.cosplit.record_proof(*rep);
                    }
                }
            }
            match &result.outcome {
                ProofOutcome::Merge {
                    driver,
                    complemented,
                    ..
                } => {
                    self.apply_merge(item.candidate, *driver, *complemented);
                    Self::bump_settled(inflight_slot);
                }
                ProofOutcome::CounterExample { assignment } => {
                    self.refine_with_counterexample(assignment);
                    Self::reinsert(
                        pending,
                        rank,
                        item.candidate,
                        item.attempts + result.attempts_used,
                    );
                }
                ProofOutcome::DontTouch => {
                    self.dont_touch[item.candidate] = true;
                    self.classes.remove(item.candidate);
                    Self::bump_settled(inflight_slot);
                }
                ProofOutcome::Exhausted => {
                    Self::bump_settled(inflight_slot);
                }
                ProofOutcome::Aborted => unreachable!("handled before validation"),
            }
        }
    }

    fn bump_settled(inflight_slot: &mut Option<InflightPod>) {
        if let Some(inflight) = inflight_slot.as_mut() {
            inflight.settled += 1;
        }
    }

    /// Applies a proved merge: redirects `candidate`'s fanouts to `driver`
    /// (complemented as required) in the working copy.
    fn apply_merge(&mut self, candidate: NodeId, driver: NodeId, complemented: bool) {
        self.apply_merge_lit(candidate, Lit::new(driver, complemented));
    }

    fn apply_merge_lit(&mut self, candidate: NodeId, replacement: Lit) {
        self.result.replace_node(candidate, replacement);
        self.merged[candidate] = Some(replacement);
        self.merge_log.push((candidate, replacement));
        self.classes.remove(candidate);
        self.notify_merge(candidate, replacement);
    }

    /// Simulates a counter-example incrementally and refines the candidate
    /// classes.
    ///
    /// Both engines resimulate **only the nodes that are still merge
    /// candidates** (class members and constant candidates) on the new
    /// pattern: the STP engine evaluates them through their cut windows, the
    /// baseline through a single-bit sweep of their transitive fanin (see
    /// [`crate::resim`]).  Every AND node outside the evaluated set goes
    /// into the dirty set instead of being recomputed — the refinement
    /// outcome is identical to a full `simulate_all` pass because class
    /// members agree on all previously simulated patterns by construction.
    fn refine_with_counterexample(&mut self, counterexample: &[bool]) {
        self.notify_counterexample(counterexample);
        let sim_start = Instant::now();
        self.pattern_set.push_pattern(counterexample);
        // Fresh values are only needed for nodes that are still candidates.
        let mut targets: Vec<NodeId> = self
            .classes
            .classes()
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect();
        targets.extend(self.classes.constants().iter().map(|c| c.node));
        targets.sort_unstable();
        targets.dedup();
        let (new_signatures, evaluated): (HashMap<NodeId, Signature>, Vec<NodeId>) =
            match (self.engine, &self.windows) {
                (Engine::Stp, Some(index)) => {
                    // STP engine: evaluate the targets through their cut
                    // windows (the specified-node mode of Algorithm 1).  The
                    // level-parallel path is bit-identical to the sequential
                    // one (a single-pattern set stays inline anyway).
                    let mut ce_only = PatternSet::new(self.original.num_inputs());
                    ce_only.push_pattern(counterexample);
                    index.simulate_targets_counted_parallel(
                        self.original,
                        &ce_only,
                        &targets,
                        self.config.num_threads,
                    )
                }
                _ => resim::eval_pattern_targets(self.original, counterexample, &targets),
            };
        let event = self.resim.record_event(targets.len(), &evaluated);
        self.notify_resimulation(event.targets, event.resimulated, event.skipped);
        let outcome = self.classes.refine_tracked(&new_signatures);
        // Feed the co-split statistic from the *committed* refinement (the
        // only kind this path ever sees): which classes this counter-example
        // split, and which split together.
        self.cosplit.record_event(&outcome.split_representatives);
        let moved = outcome.moved;
        self.simulation_time += sim_start.elapsed();
        let num_classes = self.classes.classes().len();
        self.notify_class_refined(num_classes, moved);
        self.maybe_compact();
    }

    /// Periodically compacts the pattern set (see
    /// [`SweepConfig::compact_every`]).
    ///
    /// Refinement never re-reads stored patterns — counter-examples are
    /// simulated from their own assignments — so dropping columns cannot
    /// change the sweep.  The columns kept are chosen by partition
    /// refinement over the surviving class representatives (plus an all-zero
    /// constant prototype): scanning left to right, a column survives only
    /// if it splits a group of prototypes that all earlier kept columns
    /// leave together.  The kept set therefore still distinguishes every
    /// pair of surviving classes, while columns whose information is
    /// subsumed ("dead" columns) are dropped, bounding the pattern-word
    /// footprint of long runs.
    ///
    /// Triggered on the deterministic counter-example count, which is
    /// checkpointed: a resumed run compacts at the same points as an
    /// uninterrupted one.
    fn maybe_compact(&mut self) {
        let cadence = self.config.compact_every;
        if cadence == 0 || self.stats.counterexamples - self.last_compaction_ce < cadence {
            return;
        }
        self.last_compaction_ce = self.stats.counterexamples;
        let n = self.pattern_set.num_patterns();
        if n <= 1 {
            return;
        }
        let sim_start = Instant::now();
        // Fresh signatures over the full (grown) pattern set; parallel runs
        // are bit-identical to sequential ones, so the kept-column choice is
        // the same for every thread count.
        let state = AigSimulator::new(self.original)
            .run_parallel(&self.pattern_set, self.config.num_threads);
        self.steal_events += state.steal_events();
        // Prototype rows: one per surviving class (its representative,
        // complement-normalised against column 0) plus an all-zero row
        // standing in for the constant candidates.
        let mut protos: Vec<Signature> = Vec::with_capacity(self.classes.classes().len() + 1);
        protos.push(Signature::zeros(n));
        for class in self.classes.classes() {
            let sig = state.signature(class.representative());
            let canonical = if sig.get_bit(0) {
                sig.to_signature().complement()
            } else {
                sig.to_signature()
            };
            protos.push(canonical);
        }
        // Left-to-right partition refinement: `group_of[p]` is the current
        // group of prototype `p`; a column is kept iff it splits a group.
        let mut group_of: Vec<u32> = vec![0; protos.len()];
        let mut num_groups = 1usize;
        let mut keep: Vec<usize> = Vec::new();
        let mut next_group: HashMap<(u32, bool), u32> = HashMap::new();
        for c in 0..n {
            if num_groups == protos.len() {
                break;
            }
            next_group.clear();
            let mut fresh = 0u32;
            let old_groups = num_groups;
            for (p, g) in group_of.iter_mut().enumerate() {
                let bit = protos[p].get_bit(c);
                let id = *next_group.entry((*g, bit)).or_insert_with(|| {
                    let id = fresh;
                    fresh += 1;
                    id
                });
                *g = id;
            }
            num_groups = fresh as usize;
            if num_groups > old_groups {
                keep.push(c);
            }
        }
        if keep.is_empty() {
            keep.push(0);
        }
        let dropped = n - keep.len();
        if dropped > 0 {
            self.pattern_set.compact(&keep);
        }
        self.simulation_time += sim_start.elapsed();
        self.notify_compaction(keep.len(), dropped);
    }

    // ------------------------------------------------------------------
    // Cleanup and reporting.
    // ------------------------------------------------------------------

    /// Cleans up the working copy and derives the report from the internal
    /// stats counter plus the session's own gate/time measurements.
    fn finish(self) -> SweepResult {
        let (cleaned, _) = self.result.cleanup();
        let mut report = self.stats.counts();
        report.num_threads = self.config.num_threads;
        report.sat_parallelism = self.config.sat_parallelism;
        report.gates_before = self.original.num_ands();
        report.levels = self.original.depth();
        report.gates_after = cleaned.num_ands();
        report.steal_events = self.steal_events;
        report.simulation_time = self.simulation_time;
        report.sat_time = self.sat_time;
        report.total_time = self.elapsed_base + self.started.elapsed();
        SweepResult {
            aig: cleaned,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::CancelToken;
    use crate::cec::check_equivalence;
    use netlist::aiger::write_aiger_string;

    /// A circuit with planted redundancy: the same functions built twice
    /// with different structure, plus a constant-false cone.
    fn redundant_circuit() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let f1 = aig.and(xs[0], xs[1]);
        let g1 = aig.xor(xs[2], xs[3]);
        let h1 = aig.maj(xs[3], xs[4], xs[5]);
        let f2_a = aig.nand(xs[0], xs[1]);
        let f2 = !f2_a;
        let g2_t = aig.or(xs[2], xs[3]);
        let g2_b = aig.nand(xs[2], xs[3]);
        let g2 = aig.and(g2_t, g2_b);
        let h2_ab = aig.and(xs[3], xs[4]);
        let h2_ac = aig.and(xs[3], xs[5]);
        let h2_bc = aig.and(xs[4], xs[5]);
        let h2_t = aig.or(h2_ab, h2_ac);
        let h2 = aig.or(h2_t, h2_bc);
        let c_t = aig.and(xs[0], xs[2]);
        let c = aig.and(c_t, !xs[0]);
        let o1 = aig.xor(f1, g2);
        let o2 = aig.xor(f2, g1);
        let o3 = aig.or(h1, c);
        let o4 = aig.and(h2, o1);
        aig.add_output("o1", o1);
        aig.add_output("o2", o2);
        aig.add_output("o3", o3);
        aig.add_output("o4", o4);
        aig
    }

    #[test]
    fn builder_run_matches_defaults() {
        let aig = redundant_circuit();
        let result = Sweeper::new(Engine::Stp).run(&aig).expect("runs");
        assert!(result.aig.num_ands() < aig.num_ands());
        assert!(check_equivalence(&aig, &result.aig, 100_000).equivalent);
    }

    #[test]
    fn compaction_never_changes_the_sweep() {
        let aig = redundant_circuit();
        for engine in [Engine::Stp, Engine::Baseline] {
            // Patterns small enough that SAT disproofs (and thus
            // counter-examples) occur, compaction on every one of them.
            let config = SweepConfig::fast().with_patterns(8);
            let plain = Sweeper::new(engine).config(config).run(&aig).expect("runs");
            let compacted = Sweeper::new(engine)
                .config(config.compact_every(1))
                .run(&aig)
                .expect("runs");
            assert_eq!(plain.report.sat_calls_sat, compacted.report.sat_calls_sat);
            assert_eq!(
                plain.report.sat_calls_total,
                compacted.report.sat_calls_total
            );
            assert_eq!(plain.report.merges, compacted.report.merges);
            assert_eq!(plain.report.constants, compacted.report.constants);
            assert_eq!(
                write_aiger_string(&plain.aig),
                write_aiger_string(&compacted.aig),
                "compaction changed the {engine:?} result network"
            );
            assert_eq!(plain.report.patterns_dropped, 0);
            if compacted.report.sat_calls_sat > 0 {
                assert!(
                    compacted.report.patterns_dropped > 0,
                    "{engine:?}: counter-examples occurred but nothing was compacted"
                );
            }
        }
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let aig = redundant_circuit();
        let err = Sweeper::new(Engine::Stp)
            .config(SweepConfig::default().with_patterns(0))
            .run(&aig)
            .unwrap_err();
        assert!(matches!(err, SweepError::InvalidConfig(_)));
    }

    #[test]
    fn external_stats_observer_matches_returned_report() {
        let aig = redundant_circuit();
        let mut stats = StatsObserver::new();
        let result = Sweeper::new(Engine::Stp)
            .observer(&mut stats)
            .run(&aig)
            .expect("runs");
        let r = &result.report;
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.merges, r.merges);
        assert_eq!(stats.constants, r.constants);
        assert_eq!(stats.sat_calls_sat, r.sat_calls_sat);
        assert_eq!(stats.sat_calls_unsat, r.sat_calls_unsat);
        assert_eq!(stats.sat_calls_undet, r.sat_calls_undet);
        assert_eq!(stats.sat_calls_total(), r.sat_calls_total);
        assert_eq!(stats.proved_by_simulation, r.proved_by_simulation);
        assert_eq!(stats.disproved_by_simulation, r.disproved_by_simulation);
        assert_eq!(stats.counterexamples, r.sat_calls_sat);
    }

    #[test]
    fn counterexamples_resimulate_incrementally() {
        let aig = redundant_circuit();
        for engine in [Engine::Stp, Engine::Baseline] {
            let mut stats = StatsObserver::new();
            let result = Sweeper::new(engine)
                .config(SweepConfig {
                    // Few initial patterns so that SAT finds counter-examples.
                    num_initial_patterns: 4,
                    sat_guided_patterns: false,
                    ..SweepConfig::default()
                })
                .observer(&mut stats)
                .run(&aig)
                .expect("runs");
            let r = &result.report;
            assert_eq!(
                r.resim_events, r.sat_calls_sat,
                "one event per CE ({engine})"
            );
            assert_eq!(stats.resim_events, r.resim_events);
            assert_eq!(stats.resim_nodes, r.resim_nodes);
            assert_eq!(stats.resim_skipped_nodes, r.resim_skipped_nodes);
            if r.resim_events > 0 {
                // Incremental resimulation must touch fewer nodes than the
                // historical simulate_all-per-counter-example strategy.
                let full_cost = r.resim_events * aig.num_ands() as u64;
                assert!(
                    r.resim_nodes < full_cost,
                    "{engine}: {} resimulated vs {} full",
                    r.resim_nodes,
                    full_cost
                );
                assert_eq!(r.resim_nodes + r.resim_skipped_nodes, full_cost);
            }
            assert!(check_equivalence(&aig, &result.aig, 100_000).equivalent);
        }
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        let aig = redundant_circuit();
        let sequential = Sweeper::new(Engine::Stp).run(&aig).expect("runs");
        for threads in [2usize, 4] {
            let parallel = Sweeper::new(Engine::Stp)
                .config(SweepConfig::default().parallelism(threads))
                .run(&aig)
                .expect("runs");
            assert_eq!(parallel.aig.num_ands(), sequential.aig.num_ands());
            assert_eq!(parallel.report.merges, sequential.report.merges);
            assert_eq!(parallel.report.constants, sequential.report.constants);
            assert_eq!(
                parallel.report.sat_calls_total,
                sequential.report.sat_calls_total
            );
            assert_eq!(parallel.report.num_threads, threads);
        }
        assert_eq!(sequential.report.num_threads, 1);
    }

    #[test]
    fn zero_deadline_returns_equivalent_partial_result() {
        let aig = redundant_circuit();
        let err = Sweeper::new(Engine::Stp)
            .budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .run(&aig)
            .unwrap_err();
        let SweepError::BudgetExhausted {
            cause,
            partial,
            checkpoint,
        } = err
        else {
            panic!("expected budget exhaustion");
        };
        assert_eq!(cause, BudgetCause::Deadline);
        assert!(check_equivalence(&aig, &partial.aig, 100_000).equivalent);
        // Nothing was attempted: no SAT calls at all, and no checkpoint —
        // the budget tripped before the session was primed.
        assert_eq!(partial.report.sat_calls_total, 0);
        assert!(checkpoint.is_none());
    }

    #[test]
    fn sat_call_budget_truncates_but_stays_equivalent() {
        let aig = redundant_circuit();
        let unlimited = Sweeper::new(Engine::Stp).run(&aig).expect("runs");
        assert!(unlimited.report.sat_calls_total >= 1);

        // A zero-call budget trips at the first candidate boundary.
        let err = Sweeper::new(Engine::Stp)
            .budget(Budget::unlimited().with_max_sat_calls(0))
            .run(&aig)
            .unwrap_err();
        let partial = err.into_partial().expect("carries the partial result");
        assert_eq!(partial.report.sat_calls_total, 0);
        assert!(check_equivalence(&aig, &partial.aig, 100_000).equivalent);
    }

    #[test]
    fn pre_cancelled_token_stops_the_run() {
        let aig = redundant_circuit();
        let token = CancelToken::new();
        token.cancel();
        let err = Sweeper::new(Engine::Stp)
            .budget(Budget::unlimited().with_cancel_token(token))
            .run(&aig)
            .unwrap_err();
        let SweepError::BudgetExhausted { cause, partial, .. } = err else {
            panic!("expected budget exhaustion");
        };
        assert_eq!(cause, BudgetCause::Cancelled);
        assert!(check_equivalence(&aig, &partial.aig, 100_000).equivalent);
    }

    #[test]
    fn session_exposes_engine_config_and_candidates() {
        let aig = redundant_circuit();
        let session = Sweeper::new(Engine::Baseline)
            .config(SweepConfig {
                sat_guided_patterns: true, // normalised away for the baseline
                ..SweepConfig::default()
            })
            .begin(&aig)
            .expect("valid config");
        assert_eq!(session.engine(), Engine::Baseline);
        assert!(!session.config().sat_guided_patterns);
        assert!(session.num_candidates() > 0);
        let result = session.run().expect("runs");
        assert!(check_equivalence(&aig, &result.aig, 100_000).equivalent);
    }

    // ------------------------------------------------------------------
    // Checkpoint/resume.
    // ------------------------------------------------------------------

    /// Strips the time fields (measurements, not results) for identity
    /// comparisons.
    fn strip(r: &crate::report::SweepReport) -> crate::report::SweepReport {
        crate::report::SweepReport {
            simulation_time: Duration::ZERO,
            sat_time: Duration::ZERO,
            total_time: Duration::ZERO,
            ..*r
        }
    }

    #[test]
    fn checkpoint_resume_at_every_sat_boundary_is_identity() {
        let aig = redundant_circuit();
        let config = SweepConfig {
            num_initial_patterns: 4, // few patterns: plenty of SAT traffic
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };
        for engine in [Engine::Stp, Engine::Baseline] {
            let reference = Sweeper::new(engine).config(config).run(&aig).expect("runs");
            let reference_aiger = write_aiger_string(&reference.aig);
            let total = reference.report.sat_calls_total;
            assert!(total >= 2, "workload must need SAT calls ({engine})");
            // `cut = 0` pre-trips the budget before priming (no checkpoint);
            // that boundary is covered by the begin()+checkpoint() test.
            for cut in 1..total {
                let err = Sweeper::new(engine)
                    .config(config)
                    .budget(Budget::unlimited().with_max_sat_calls(cut))
                    .run(&aig)
                    .unwrap_err();
                let checkpoint = err
                    .into_checkpoint()
                    .expect("a primed budget stop carries a checkpoint");
                // Round-trip through bytes: resume from the decoded copy.
                let decoded = SweepCheckpoint::decode(&checkpoint.encode()).expect("decodes");
                let resumed = Sweeper::new(engine)
                    .resume_from(&aig, &decoded)
                    .expect("fingerprints match")
                    .run()
                    .expect("unlimited resume finishes");
                assert_eq!(
                    strip(&resumed.report),
                    strip(&reference.report),
                    "{engine}, cancelled after {cut} of {total} SAT calls"
                );
                assert_eq!(
                    write_aiger_string(&resumed.aig),
                    reference_aiger,
                    "{engine}, cancelled after {cut} of {total} SAT calls"
                );
            }
        }
    }

    #[test]
    fn session_checkpoint_before_run_resumes_to_identity() {
        let aig = redundant_circuit();
        let reference = Sweeper::new(Engine::Stp).run(&aig).expect("runs");
        let session = Sweeper::new(Engine::Stp).begin(&aig).expect("primes");
        let checkpoint = session.checkpoint();
        assert!(checkpoint.is_primed());
        assert_eq!(checkpoint.committed_candidates(), 0);
        drop(session);
        let resumed = Sweeper::new(Engine::Stp)
            .resume_from(&aig, &checkpoint)
            .expect("matches")
            .run()
            .expect("runs");
        assert_eq!(strip(&resumed.report), strip(&reference.report));
        assert_eq!(
            write_aiger_string(&resumed.aig),
            write_aiger_string(&reference.aig)
        );
    }

    #[test]
    fn resume_against_a_mutated_network_is_rejected() {
        let aig = redundant_circuit();
        let checkpoint = Sweeper::new(Engine::Stp)
            .config(SweepConfig {
                num_initial_patterns: 4,
                sat_guided_patterns: false,
                ..SweepConfig::default()
            })
            .budget(Budget::unlimited().with_max_sat_calls(1))
            .run(&aig)
            .unwrap_err()
            .into_checkpoint()
            .expect("checkpoint");
        let mut mutated = aig.clone();
        let extra = mutated.and(
            Lit::positive(mutated.inputs()[0]),
            Lit::positive(mutated.inputs()[1]),
        );
        mutated.add_output("extra", extra);
        let err = match Sweeper::new(Engine::Stp).resume_from(&mutated, &checkpoint) {
            Err(err) => err,
            Ok(_) => panic!("resuming against a mutated network must fail"),
        };
        assert!(matches!(err, SweepError::CheckpointMismatch(_)));
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn unprimed_checkpoint_resumes_by_repriming() {
        let aig = redundant_circuit();
        let session = Sweeper::new(Engine::Stp)
            .budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .begin(&aig)
            .expect("begins (pre-tripped)");
        let checkpoint = session.checkpoint();
        assert!(!checkpoint.is_primed());
        let reference = Sweeper::new(Engine::Stp).run(&aig).expect("runs");
        let resumed = Sweeper::new(Engine::Stp)
            .resume_from(&aig, &checkpoint)
            .expect("matches")
            .run()
            .expect("runs");
        assert_eq!(strip(&resumed.report), strip(&reference.report));
    }

    #[test]
    fn periodic_checkpoints_are_emitted_and_resumable() {
        let aig = redundant_circuit();
        let config = SweepConfig {
            num_initial_patterns: 4,
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };

        struct Collector {
            checkpoints: Vec<SweepCheckpoint>,
        }
        impl Observer for Collector {
            fn on_checkpoint(&mut self, checkpoint: &SweepCheckpoint, encoded: &[u8]) {
                // The handed-out bytes are exactly the checkpoint's own
                // encoding (encoded once, not a divergent copy).
                assert_eq!(encoded, checkpoint.encode());
                self.checkpoints.push(checkpoint.clone());
            }
        }

        let mut collector = Collector {
            checkpoints: Vec::new(),
        };
        let reference = Sweeper::new(Engine::Stp)
            .config(config.checkpoint_every(2))
            .observer(&mut collector)
            .run(&aig)
            .expect("runs");
        assert!(
            !collector.checkpoints.is_empty(),
            "interval 2 must emit at least one checkpoint"
        );
        // Resuming from every emitted mid-run checkpoint reproduces the
        // run exactly.
        for checkpoint in &collector.checkpoints {
            let resumed = Sweeper::new(Engine::Stp)
                .resume_from(&aig, checkpoint)
                .expect("matches")
                .run()
                .expect("runs");
            assert_eq!(strip(&resumed.report), strip(&reference.report));
            assert_eq!(
                write_aiger_string(&resumed.aig),
                write_aiger_string(&reference.aig)
            );
        }
        // The checkpointed run itself is not perturbed by checkpointing.
        let plain = Sweeper::new(Engine::Stp)
            .config(config)
            .run(&aig)
            .expect("runs");
        assert_eq!(strip(&plain.report), strip(&reference.report));
    }

    #[test]
    fn wall_clock_checkpoints_are_emitted_and_resumable() {
        let aig = redundant_circuit();
        let config = SweepConfig {
            num_initial_patterns: 4,
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };

        struct TimedCollector {
            checkpoints: Vec<SweepCheckpoint>,
            bytes: u64,
        }
        impl Observer for TimedCollector {
            fn on_sat_call(&mut self, _outcome: SatCallOutcome) {
                // Stretch the gaps between candidate boundaries so the 1 ms
                // cadence below is guaranteed to fire mid-run.
                std::thread::sleep(Duration::from_millis(2));
            }
            fn on_checkpoint(&mut self, checkpoint: &SweepCheckpoint, encoded: &[u8]) {
                self.bytes += encoded.len() as u64;
                self.checkpoints.push(checkpoint.clone());
            }
        }

        let mut collector = TimedCollector {
            checkpoints: Vec::new(),
            bytes: 0,
        };
        let reference = Sweeper::new(Engine::Stp)
            .config(config.checkpoint_every_secs(0.001))
            .observer(&mut collector)
            .run(&aig)
            .expect("runs");
        assert!(
            !collector.checkpoints.is_empty(),
            "the wall-clock cadence must emit at least one checkpoint"
        );
        assert!(collector.bytes > 0, "emissions report their encoded size");

        // Every time-triggered checkpoint resumes to the identical result.
        for checkpoint in &collector.checkpoints {
            let resumed = Sweeper::new(Engine::Stp)
                .resume_from(&aig, checkpoint)
                .expect("matches")
                .run()
                .expect("runs");
            assert_eq!(strip(&resumed.report), strip(&reference.report));
            assert_eq!(
                write_aiger_string(&resumed.aig),
                write_aiger_string(&reference.aig)
            );
        }
        // Time-triggered emissions never perturb the sweep itself.
        let plain = Sweeper::new(Engine::Stp)
            .config(config)
            .run(&aig)
            .expect("runs");
        assert_eq!(strip(&plain.report), strip(&reference.report));
    }

    /// Rebuilds `aig` gate-for-gate in a different (LIFO) topological
    /// order: the same circuit with renumbered nodes.
    fn renumbered_copy(aig: &Aig) -> Aig {
        let mut out = Aig::new();
        let mut map = vec![Lit::positive(0); aig.num_nodes()];
        for (position, &id) in aig.inputs().iter().enumerate() {
            map[id] = out.add_input(aig.input_name(position).to_string());
        }
        let mut remaining: Vec<NodeId> = aig.and_ids().collect();
        let mut placed: Vec<bool> = aig.node_ids().map(|id| !aig.node(id).is_and()).collect();
        while !remaining.is_empty() {
            let pos = (0..remaining.len())
                .rev()
                .find(|&i| {
                    aig.node(remaining[i])
                        .fanins()
                        .iter()
                        .all(|f| placed[f.node()])
                })
                .expect("an AIG is acyclic");
            let id = remaining.remove(pos);
            let fanins = aig.node(id).fanins();
            let a = map[fanins[0].node()].complement_if(fanins[0].is_complemented());
            let b = map[fanins[1].node()].complement_if(fanins[1].is_complemented());
            map[id] = out.and(a, b);
            placed[id] = true;
        }
        for output in aig.outputs() {
            let lit = map[output.lit.node()].complement_if(output.lit.is_complemented());
            out.add_output(output.name.clone(), lit);
        }
        out
    }

    #[test]
    fn resume_against_a_renumbered_network_names_the_canonical_match() {
        let aig = redundant_circuit();
        let shuffled = renumbered_copy(&aig);
        // Genuinely renumbered, but canonically the same circuit.
        assert_ne!(
            netlist_fingerprint(&aig),
            netlist_fingerprint(&shuffled),
            "the rebuild must change node numbering for this test to bite"
        );
        assert_eq!(
            netlist::canonical_fingerprint(&aig),
            netlist::canonical_fingerprint(&shuffled)
        );

        let session = Sweeper::new(Engine::Stp)
            .config(SweepConfig::fast())
            .begin(&aig)
            .expect("begins");
        let checkpoint = session.checkpoint();
        assert!(checkpoint.matches_canonical(&shuffled));
        assert!(!checkpoint.matches(&shuffled));

        // Strict resume still refuses (the merge log is bound to node ids),
        // but the error tells the caller this is the same circuit
        // renumbered — a service reacts by resuming against its stored
        // original netlist instead of restarting.
        let err = Sweeper::new(Engine::Stp)
            .resume_from(&shuffled, &checkpoint)
            .err()
            .expect("strict resume must refuse a renumbered network");
        match err {
            SweepError::CheckpointMismatch(msg) => {
                assert!(
                    msg.contains("same circuit up to node renumbering"),
                    "unexpected message: {msg}"
                );
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }

        // Resuming against the original still works, and the renumbered
        // copy sweeps to the same counters as the original (it is the same
        // circuit).
        let resumed = Sweeper::new(Engine::Stp)
            .resume_from(&aig, &checkpoint)
            .expect("matches")
            .run()
            .expect("runs");
        let fresh = Sweeper::new(Engine::Stp)
            .config(SweepConfig::fast())
            .run(&shuffled)
            .expect("runs");
        assert_eq!(fresh.report.merges, resumed.report.merges);
        assert_eq!(fresh.report.constants, resumed.report.constants);
    }

    #[test]
    fn solver_hygiene_resets_keep_the_sweep_deterministic() {
        let aig = redundant_circuit();
        let config = SweepConfig {
            num_initial_patterns: 4,
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };
        // Aggressive hygiene: reset a slot after every committed query.
        let reference = Sweeper::new(Engine::Stp)
            .config(config.with_solver_reset_interval(1))
            .run(&aig)
            .expect("runs");
        assert!(check_equivalence(&aig, &reference.aig, 100_000).equivalent);
        // Identical across sat_parallelism — resets key on committed
        // counts, which are scheduling-independent.
        for sat_parallelism in [2usize, 4] {
            let run = Sweeper::new(Engine::Stp)
                .config(
                    config
                        .with_solver_reset_interval(1)
                        .sat_parallelism(sat_parallelism),
                )
                .run(&aig)
                .expect("runs");
            let mut expected = strip(&reference.report);
            expected.sat_parallelism = sat_parallelism;
            assert_eq!(strip(&run.report), expected);
            assert_eq!(
                write_aiger_string(&run.aig),
                write_aiger_string(&reference.aig)
            );
        }
        // Checkpoint/resume identity holds with hygiene on.
        let total = reference.report.sat_calls_total;
        let cut = total / 2;
        let checkpoint = Sweeper::new(Engine::Stp)
            .config(config.with_solver_reset_interval(1))
            .budget(Budget::unlimited().with_max_sat_calls(cut))
            .run(&aig)
            .unwrap_err()
            .into_checkpoint()
            .expect("checkpoint");
        let resumed = Sweeper::new(Engine::Stp)
            .resume_from(&aig, &checkpoint)
            .expect("matches")
            .run()
            .expect("runs");
        assert_eq!(strip(&resumed.report), strip(&reference.report));
        assert_eq!(
            write_aiger_string(&resumed.aig),
            write_aiger_string(&reference.aig)
        );
    }
}
