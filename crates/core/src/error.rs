//! Typed errors of the sweeping API.
//!
//! The builder API ([`crate::Sweeper`], [`crate::Pipeline`]) replaces the
//! silent clamping and panics of the original free functions with a typed
//! error: invalid configurations are rejected up front, budget exhaustion
//! hands back the partial result instead of discarding it, and internal
//! inconsistencies (a failed in-pipeline verification) are reported rather
//! than asserted.

use crate::budget::BudgetCause;
use crate::checkpoint::SweepCheckpoint;
use crate::report::SweepResult;
use std::fmt;

/// Everything that can go wrong in a sweeping run.
#[derive(Debug)]
pub enum SweepError {
    /// The [`crate::SweepConfig`] contains a value the engines cannot work
    /// with (see [`crate::SweepConfig::validate`]).
    InvalidConfig(String),
    /// The [`crate::Budget`] ran out (or the run was cancelled) before the
    /// sweep finished.
    ///
    /// The partial result is *not* discarded: `partial.aig` contains every
    /// merge proved so far and is functionally equivalent to the input;
    /// `partial.report` covers the work done up to the stop.  When the run
    /// got far enough to prime its session, `checkpoint` carries the exact
    /// stop-point state: resuming it with [`crate::Sweeper::resume_from`]
    /// completes the sweep with results identical to an uninterrupted run.
    BudgetExhausted {
        /// Which budget dimension stopped the run.
        cause: BudgetCause,
        /// The functionally equivalent partial result.
        partial: Box<SweepResult>,
        /// Resumable stop-point state (`None` only if the budget tripped
        /// before the session was primed — nothing to resume).
        checkpoint: Option<Box<SweepCheckpoint>>,
    },
    /// A [`crate::SweepCheckpoint`] could not be used: the bytes are
    /// truncated or corrupt, the format version is unsupported, or the
    /// checkpoint was taken against a different network than the one the
    /// resume targets (netlist fingerprint mismatch).  Resuming against a
    /// mutated network would silently corrupt results, so it is rejected
    /// up front.
    CheckpointMismatch(String),
    /// A promised consistency guarantee could not be delivered: an
    /// in-pipeline `verify` pass found the swept network inequivalent to
    /// the pipeline input, or could not *prove* equivalence within its
    /// conflict budget (the message distinguishes the two — only the
    /// former indicates a soundness bug).
    Inconsistent(String),
}

impl SweepError {
    /// Extracts the partial result of a budget-exhausted run, if any.
    ///
    /// Convenience for callers that treat a truncated sweep as a success
    /// with less optimisation:
    ///
    /// ```
    /// # use stp_sweep::{Budget, Engine, SweepError, Sweeper};
    /// # use netlist::Aig;
    /// # let mut aig = Aig::new();
    /// # let a = aig.add_input("a");
    /// # let b = aig.add_input("b");
    /// # let g = aig.and(a, b);
    /// # aig.add_output("y", g);
    /// let run = Sweeper::new(Engine::Stp)
    ///     .budget(Budget::unlimited().with_max_sat_calls(1))
    ///     .run(&aig);
    /// let result = run.or_else(|e| e.into_partial().ok_or("hard error")).unwrap();
    /// assert!(result.aig.num_ands() <= aig.num_ands());
    /// ```
    pub fn into_partial(self) -> Option<SweepResult> {
        match self {
            SweepError::BudgetExhausted { partial, .. } => Some(*partial),
            _ => None,
        }
    }

    /// Extracts the resumable checkpoint of a budget-exhausted run, if any.
    pub fn into_checkpoint(self) -> Option<SweepCheckpoint> {
        match self {
            SweepError::BudgetExhausted { checkpoint, .. } => checkpoint.map(|c| *c),
            _ => None,
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidConfig(msg) => write!(f, "invalid sweep configuration: {msg}"),
            SweepError::BudgetExhausted { cause, partial, .. } => write!(
                f,
                "sweep budget exhausted ({cause}) after {} merges and {} constants; \
                 partial result has {} gates",
                partial.report.merges, partial.report.constants, partial.report.gates_after
            ),
            SweepError::CheckpointMismatch(msg) => {
                write!(f, "checkpoint cannot be used: {msg}")
            }
            SweepError::Inconsistent(msg) => write!(f, "internal inconsistency: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// A rejected pattern-set request is a configuration problem: the engines
/// only ask for as many patterns as the (validated) configuration names, so
/// the typed bridge keeps the invariant visible to callers who drive
/// [`bitsim::PatternSet`] directly.
impl From<bitsim::PatternError> for SweepError {
    fn from(err: bitsim::PatternError) -> Self {
        SweepError::InvalidConfig(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SweepReport;
    use netlist::Aig;

    fn dummy_result() -> SweepResult {
        SweepResult {
            aig: Aig::new(),
            report: SweepReport {
                merges: 2,
                constants: 1,
                gates_after: 7,
                ..SweepReport::default()
            },
        }
    }

    #[test]
    fn display_messages_are_informative() {
        let invalid = SweepError::InvalidConfig("window_limit 99".into());
        assert!(invalid.to_string().contains("window_limit 99"));

        let exhausted = SweepError::BudgetExhausted {
            cause: BudgetCause::Deadline,
            partial: Box::new(dummy_result()),
            checkpoint: None,
        };
        let msg = exhausted.to_string();
        assert!(msg.contains("deadline"), "{msg}");
        assert!(msg.contains("2 merges"), "{msg}");

        let mismatch = SweepError::CheckpointMismatch("netlist fingerprint differs".into());
        assert!(mismatch.to_string().contains("fingerprint"), "{mismatch}");

        let inconsistent = SweepError::Inconsistent("verify pass failed".into());
        assert!(inconsistent.to_string().contains("verify pass failed"));
    }

    #[test]
    fn pattern_errors_convert_to_invalid_config() {
        let err: SweepError = bitsim::PatternError::EmptyPatternSet { num_inputs: 3 }.into();
        assert!(matches!(err, SweepError::InvalidConfig(_)));
        assert!(err.to_string().contains("3 inputs"), "{err}");
    }

    #[test]
    fn into_partial_extracts_only_budget_results() {
        let exhausted = SweepError::BudgetExhausted {
            cause: BudgetCause::SatCalls,
            partial: Box::new(dummy_result()),
            checkpoint: None,
        };
        assert_eq!(exhausted.into_partial().unwrap().report.merges, 2);
        assert!(SweepError::InvalidConfig("x".into())
            .into_partial()
            .is_none());
        assert!(SweepError::Inconsistent("x".into())
            .into_partial()
            .is_none());
        assert!(SweepError::CheckpointMismatch("x".into())
            .into_checkpoint()
            .is_none());
    }
}
