//! Checkpoint/resume for sweeping sessions.
//!
//! A [`SweepCheckpoint`] is a versioned, self-describing snapshot of a
//! [`crate::SweepSession`] at a candidate boundary: the candidate
//! equivalence classes, the grown pattern set, the incremental-resimulation
//! dirty set, the ordered merge log, the phase cursor (including a
//! half-committed parallel proving batch), the cumulative report counters —
//! and, crucially, behaviour-exact snapshots of every incremental SAT
//! solver ([`satsolver::CircuitSatSnapshot`]).  CDCL solvers are
//! history-dependent (learnt clauses, VSIDS activities, saved phases steer
//! every future query), so carrying their exact state is what makes the
//! headline guarantee possible: **cancel at any candidate boundary, resume
//! with [`crate::Sweeper::resume_from`], and the final SAT calls, merges
//! and AIGER bytes are identical to an uninterrupted run**, for every
//! `sat_parallelism` × `num_threads`.
//!
//! The on-disk format is a dependency-free little-endian binary codec with
//! an integrity header: an 8-byte magic, a format version and the
//! fingerprint of the netlist the checkpoint was taken against.  Decoding
//! truncated or corrupt bytes yields a typed [`CheckpointError`] (never a
//! panic), and resuming against a mutated network is rejected with
//! [`crate::SweepError::CheckpointMismatch`] instead of corrupting results.
//!
//! ```
//! use netlist::Aig;
//! use stp_sweep::{Engine, Sweeper};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! // Capture a primed session's state…
//! let session = Sweeper::new(Engine::Stp).begin(&aig).unwrap();
//! let checkpoint = session.checkpoint();
//! drop(session); // e.g. the process was preempted here
//!
//! // …which round-trips through bytes and resumes to the identical result.
//! let bytes = checkpoint.encode();
//! let restored = stp_sweep::SweepCheckpoint::decode(&bytes).unwrap();
//! let resumed = Sweeper::new(Engine::Stp).resume_from(&aig, &restored).unwrap();
//! let finished = resumed.run().expect("unlimited resume finishes");
//! let uninterrupted = Sweeper::new(Engine::Stp).run(&aig).unwrap();
//! assert_eq!(finished.report.merges, uninterrupted.report.merges);
//! ```

use crate::equiv::ConstantCandidate;
use crate::observer::StatsObserver;
use crate::prover::{ProofItem, ProofOutcome, ProofResult};
use crate::report::SweepConfig;
use crate::session::Engine;
use bitsim::{CoSplitSnapshot, Signature};
use netlist::{Aig, AigNode, Lit, NodeId};
use satsolver::{
    CircuitSatSnapshot, ClauseSnapshot, QueryStats, SatLit, SolverConfig, SolverSnapshot,
    SolverStats,
};
use std::fmt;
use std::time::Duration;

/// The 8-byte magic prefix of an encoded checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"STPSWCP\x01";

/// The current checkpoint format version.  Decoders accept
/// [`MIN_CHECKPOINT_VERSION`] through this version and reject anything else
/// with [`CheckpointError::UnsupportedVersion`]; the version is bumped
/// whenever the payload layout changes.
///
/// Version history: 1 = initial format; 2 = pattern compaction (config
/// `compact_every`, stats `compactions`/`patterns_dropped`, session
/// `last_compaction_ce`); 3 = sweep service (canonical netlist
/// fingerprint, wall-clock cadence `checkpoint_interval_millis`, stats
/// `checkpoint_bytes`, and cheap checkpoints: cold solver-pool slots are
/// stored as absent instead of as full snapshots); 4 = sequential sweeping
/// (config `seq_depth` plus the sequential progress counters
/// `seq_candidates` / `seq_ternary_constants` / `seq_induction_refuted` /
/// `seq_induction_undet` / `seq_ternary_iterations`); 5 = refinement-aware
/// batching and sharded sweeps (config `shards` / `batch_policy`, stats
/// `sat_batch_committed`, the co-split table, per-item solver slots and
/// the in-flight batch's commit count plus pre-query solver snapshots —
/// the shard wire format).
pub const CHECKPOINT_VERSION: u32 = 5;

/// The oldest checkpoint format version this build still decodes.  An old
/// checkpoint decodes with the later additions defaulted: v2 payloads get
/// no wall-clock cadence, a zero checkpoint-byte counter, every pool slot
/// materialised and an unknown (zero) canonical fingerprint; v2 and v3
/// payloads get `seq_depth = 0` (combinational) and zeroed sequential
/// counters; pre-v5 payloads get no shards, the support-disjoint batch
/// policy (the only policy those builds had), an empty co-split table,
/// positional solver slots and no pre-query snapshots — resuming a pre-v5
/// *in-flight batch* is therefore best-effort: an invalidated speculative
/// query cannot be erased from its solver slot without its snapshot.
pub const MIN_CHECKPOINT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be decoded or used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the payload was complete.
    Truncated,
    /// The magic prefix is missing — not a checkpoint file.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The payload is structurally invalid (the message names the field).
    Corrupt(&'static str),
    /// An I/O error while reading or writing a checkpoint file.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint bytes are truncated"),
            CheckpointError::BadMagic => write!(f, "not a sweep checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint format version {v} (this build reads \
                 versions {MIN_CHECKPOINT_VERSION} through {CHECKPOINT_VERSION})"
            ),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for crate::error::SweepError {
    fn from(err: CheckpointError) -> Self {
        crate::error::SweepError::CheckpointMismatch(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// Netlist fingerprint.
// ---------------------------------------------------------------------------

/// FNV-1a over raw bytes, used for the payload checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a fingerprint of an AIG's functional structure (nodes, fanins,
/// input positions and output literals; names are excluded — they do not
/// affect sweeping).  Checkpoints embed the fingerprint of the network they
/// were taken against, and [`crate::Sweeper::resume_from`] refuses to
/// resume against a network with a different fingerprint.
pub fn netlist_fingerprint(aig: &Aig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(aig.num_nodes() as u64);
    mix(aig.num_inputs() as u64);
    mix(aig.num_outputs() as u64);
    for id in aig.node_ids() {
        match aig.node(id) {
            AigNode::Const0 => mix(1),
            AigNode::Input { position } => {
                mix(2);
                mix(*position as u64);
            }
            AigNode::And { fanin0, fanin1 } => {
                mix(3);
                mix(u64::from(fanin0.index()));
                mix(u64::from(fanin1.index()));
            }
        }
    }
    for output in aig.outputs() {
        mix(u64::from(output.lit.index()));
    }
    hash
}

// ---------------------------------------------------------------------------
// Phase pods: the serialisable execution cursor.
// ---------------------------------------------------------------------------

/// A half-committed parallel proving batch: the frozen items, their
/// speculative results and the commit cursor.  Items at indices `>= next`
/// with an `Aborted` result were never issued (their solver slots are
/// untouched) and are re-proved on resume; items with real results are
/// replayed verbatim, so the resumed commit sequence is exactly the one an
/// uninterrupted run would have produced.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct InflightPod {
    pub items: Vec<ProofItem>,
    pub results: Vec<ProofResult>,
    /// Per-item solver snapshot taken immediately before the item's SAT
    /// query (`None` for item 0 — always valid at commit — and for items
    /// that issued no query or were already committed).  Restoring one
    /// erases an invalidated speculative query from its slot, keeping
    /// slot state a pure function of the committed sequence.
    pub pre_query: Vec<Option<CircuitSatSnapshot>>,
    pub next: usize,
    /// Results accepted at the barrier so far (committed items; the
    /// invalidated ones are excluded) — feeds `sat_batch_committed`.
    pub committed: usize,
    pub settled: usize,
    pub conflicts: usize,
}

/// The serialisable execution cursor of a session.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PhasePod {
    /// Primed, nothing proved yet.
    Start,
    /// Inside constant substitution: the frozen candidate queue and the
    /// next index to prove.
    Constants {
        queue: Vec<ConstantCandidate>,
        next: usize,
    },
    /// Inside pairwise merging: the pending candidate queue (canonical
    /// order, with consumed driver attempts), the next batch index and an
    /// optional half-committed batch.
    Merging {
        pending: Vec<(NodeId, usize)>,
        batch_index: usize,
        inflight: Option<InflightPod>,
    },
    /// All phases complete.
    Done,
}

// ---------------------------------------------------------------------------
// The checkpoint itself.
// ---------------------------------------------------------------------------

/// A resumable snapshot of a sweeping session at a candidate boundary.
///
/// Obtain one from [`crate::SweepSession::checkpoint`], from the
/// `checkpoint` field of [`crate::SweepError::BudgetExhausted`], or through
/// [`crate::Observer::on_checkpoint`] when
/// [`crate::SweepConfig::checkpoint_interval`] is set.  Serialise with
/// [`SweepCheckpoint::encode`] / [`SweepCheckpoint::decode`] (or the
/// [`SweepCheckpoint::save`] / [`SweepCheckpoint::load`] file helpers) and
/// resume with [`crate::Sweeper::resume_from`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// Fingerprint of the network the checkpoint was taken against.
    pub(crate) fingerprint: u64,
    /// Canonical (topological-order-invariant) fingerprint of the same
    /// network ([`netlist::canonical_fingerprint`]).  Used by services to
    /// recognise a resubmitted job whose parser renumbered the circuit;
    /// zero when decoded from a pre-v3 checkpoint (unknown).
    pub(crate) canonical_fingerprint: u64,
    /// Whether the session was primed (patterns generated, classes built).
    /// An unprimed checkpoint resumes by re-priming from scratch.
    pub(crate) primed: bool,
    pub(crate) engine: Engine,
    pub(crate) config: SweepConfig,
    pub(crate) round: usize,
    pub(crate) phase: PhasePod,
    /// Ordered log of applied merges (constants included): replaying it on
    /// a fresh copy of the input reconstructs the working network.
    pub(crate) merge_log: Vec<(NodeId, Lit)>,
    pub(crate) dont_touch: Vec<NodeId>,
    /// Raw class parts: (members, phases) per class, plus constants.
    pub(crate) classes: Vec<(Vec<NodeId>, Vec<bool>)>,
    pub(crate) constants: Vec<ConstantCandidate>,
    /// The grown pattern set: per-input signature words.
    pub(crate) num_patterns: usize,
    pub(crate) pattern_words: Vec<Vec<u64>>,
    pub(crate) resim: crate::resim::ResimSnapshot,
    pub(crate) stats: StatsObserver,
    pub(crate) sweep_sat_calls: u64,
    pub(crate) committed_candidates: u64,
    /// Counter-example count at the last pattern compaction (drives the
    /// deterministic [`crate::SweepConfig::compact_every`] cadence across a
    /// resume).
    pub(crate) last_compaction_ce: u64,
    /// The learned co-split table feeding refinement-aware batch formation
    /// (canonically sorted; empty for pre-v5 checkpoints).  Carried so a
    /// resumed run forms the identical batches — and therefore counts the
    /// identical conflicts and barriers — as an uninterrupted one.
    pub(crate) cosplit: CoSplitSnapshot,
    pub(crate) simulation_time: Duration,
    pub(crate) sat_time: Duration,
    /// Wall-clock already consumed before this checkpoint (added to the
    /// resumed leg's elapsed time in the final report).
    pub(crate) elapsed: Duration,
    /// The session's main solver (pattern generation + constant proofs).
    pub(crate) main_solver: CircuitSatSnapshot,
    /// The persistent prover pool, one entry per slot.  `None` marks a cold
    /// slot — a solver that has served no query since it was (re)built —
    /// which resume reconstructs as a fresh solver instead of carrying a
    /// snapshot.  A fresh solver *is* the exact state of an untouched slot,
    /// so dropping cold snapshots is behaviour-exact while keeping
    /// checkpoints cheap (a session that only ever filled 4 of the 16 slots
    /// serialises 4 snapshots, not 16).
    pub(crate) pool: Vec<Option<CircuitSatSnapshot>>,
    /// Committed SAT queries per pool slot (drives deterministic hygiene
    /// resets, see [`crate::SweepConfig::solver_reset_interval`]).
    pub(crate) pool_committed: Vec<u64>,
    /// Latch-correspondence candidates submitted to induction so far
    /// (sequential checkpoints only; zero otherwise and for pre-v4 files).
    pub(crate) seq_candidates: u64,
    /// Latches substituted by constants from the ternary fixpoint alone.
    pub(crate) seq_ternary_constants: u64,
    /// Candidates refuted by a satisfiable base case so far.
    pub(crate) seq_induction_refuted: u64,
    /// Candidates left unknown (satisfiable step or exhausted budget) so far.
    pub(crate) seq_induction_undet: u64,
    /// Iterations the ternary fixpoint took (for report fidelity on resume).
    pub(crate) seq_ternary_iterations: u64,
}

impl SweepCheckpoint {
    /// The fingerprint of the network this checkpoint was taken against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// `true` if this checkpoint was taken against `aig` (same functional
    /// structure).
    pub fn matches(&self, aig: &Aig) -> bool {
        self.fingerprint == netlist_fingerprint(aig)
    }

    /// The canonical (renumbering-invariant) fingerprint of the network
    /// this checkpoint was taken against, or zero for a pre-v3 checkpoint
    /// (unknown).  See [`netlist::canonical_fingerprint`].
    pub fn canonical_fingerprint(&self) -> u64 {
        self.canonical_fingerprint
    }

    /// `true` if this checkpoint was taken against the same circuit as
    /// `aig` *up to node renumbering*.  Such a checkpoint still cannot be
    /// resumed against `aig` directly — its merge log names concrete node
    /// ids — but a service can use this to route the job to the stored
    /// original netlist (see `sweepd`'s spill-adoption).  Always `false`
    /// for pre-v3 checkpoints.
    pub fn matches_canonical(&self, aig: &Aig) -> bool {
        self.canonical_fingerprint != 0
            && self.canonical_fingerprint == netlist::canonical_fingerprint(aig)
    }

    /// The engine of the checkpointed run.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The (normalised) configuration of the checkpointed run.  Resuming
    /// always continues under this configuration — the builder's own config
    /// is ignored, because mixing configurations would break the identity
    /// guarantee.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Whether the session was primed when the checkpoint was taken.  An
    /// unprimed checkpoint (budget tripped before pattern generation)
    /// resumes by re-priming, which is itself deterministic.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Committed candidates at the checkpoint (the progress cursor).
    pub fn committed_candidates(&self) -> u64 {
        self.committed_candidates
    }

    /// Committed sweeping SAT calls at the checkpoint.
    pub fn sat_calls(&self) -> u64 {
        self.sweep_sat_calls
    }

    /// Serialises the checkpoint into the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(CHECKPOINT_VERSION)
    }

    /// Serialises in a specific format version.  `encode` always writes the
    /// current version; older versions exist so the backward-compatibility
    /// tests can synthesise genuine old-format payloads.  Encoding a
    /// checkpoint with cold (absent) pool slots as v2 is impossible — the
    /// v2 layout stores every slot — and panics.
    fn encode_versioned(&self, version: u32) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(&CHECKPOINT_MAGIC);
        w.u32(version);
        w.u64(self.fingerprint);
        if version >= 3 {
            w.u64(self.canonical_fingerprint);
        }
        w.boolean(self.primed);
        w.u8(match self.engine {
            Engine::Baseline => 0,
            Engine::Stp => 1,
        });
        encode_config(&mut w, &self.config, version);
        w.usize(self.round);
        encode_phase(&mut w, &self.phase, version);
        w.usize(self.merge_log.len());
        for &(node, lit) in &self.merge_log {
            w.usize(node);
            w.u32(lit.index());
        }
        w.usize(self.dont_touch.len());
        for &node in &self.dont_touch {
            w.usize(node);
        }
        w.usize(self.classes.len());
        for (members, phases) in &self.classes {
            w.usize(members.len());
            for &m in members {
                w.usize(m);
            }
            for &p in phases {
                w.boolean(p);
            }
        }
        w.usize(self.constants.len());
        for c in &self.constants {
            w.usize(c.node);
            w.boolean(c.value);
        }
        w.usize(self.num_patterns);
        w.usize(self.pattern_words.len());
        for words in &self.pattern_words {
            w.usize(words.len());
            for &word in words {
                w.u64(word);
            }
        }
        w.usize(self.resim.last_seen.len());
        for &e in &self.resim.last_seen {
            w.u64(e);
        }
        w.u64(self.resim.events);
        w.u64(self.resim.resimulated);
        w.u64(self.resim.skipped);
        encode_stats(&mut w, &self.stats, version);
        w.u64(self.sweep_sat_calls);
        w.u64(self.committed_candidates);
        w.u64(self.last_compaction_ce);
        w.duration(self.simulation_time);
        w.duration(self.sat_time);
        w.duration(self.elapsed);
        encode_circuit_snapshot(&mut w, &self.main_solver);
        w.usize(self.pool.len());
        for snap in &self.pool {
            if version >= 3 {
                // Presence byte per slot: cold slots cost one byte instead
                // of a full solver snapshot.
                w.boolean(snap.is_some());
                if let Some(snap) = snap {
                    encode_circuit_snapshot(&mut w, snap);
                }
            } else {
                let snap = snap
                    .as_ref()
                    .expect("v2 encoding requires every pool slot to be materialised");
                encode_circuit_snapshot(&mut w, snap);
            }
        }
        w.usize(self.pool_committed.len());
        for &c in &self.pool_committed {
            w.u64(c);
        }
        if version >= 4 {
            w.u64(self.seq_candidates);
            w.u64(self.seq_ternary_constants);
            w.u64(self.seq_induction_refuted);
            w.u64(self.seq_induction_undet);
            w.u64(self.seq_ternary_iterations);
        }
        if version >= 5 {
            encode_cosplit(&mut w, &self.cosplit);
        }
        // Payload checksum (everything up to here, header included): bit
        // flips anywhere in the file are caught at decode time instead of
        // resuming into a silently different run.
        let checksum = fnv64(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Decodes a checkpoint from bytes, verifying the magic and format
    /// version.  Truncated or corrupt input yields a typed error, never a
    /// panic.  Structural validation against the resume target happens in
    /// [`crate::Sweeper::resume_from`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // Header checks come first so wrong-file and wrong-version inputs
        // get their specific errors; the payload checksum then catches any
        // other corruption before field-level parsing starts.
        {
            let mut header = Reader::new(bytes);
            if header.bytes(8)? != CHECKPOINT_MAGIC {
                return Err(CheckpointError::BadMagic);
            }
            let version = header.u32()?;
            if !(MIN_CHECKPOINT_VERSION..=CHECKPOINT_VERSION).contains(&version) {
                return Err(CheckpointError::UnsupportedVersion(version));
            }
        }
        if bytes.len() < 8 + 4 + 8 {
            return Err(CheckpointError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("tail is eight bytes"));
        if fnv64(body) != stored {
            return Err(CheckpointError::Corrupt("payload checksum mismatch"));
        }
        let mut r = Reader::new(body);
        let _ = r.bytes(8)?; // magic, verified above
        let version = r.u32()?; // range-checked above
        let fingerprint = r.u64()?;
        let canonical_fingerprint = if version >= 3 { r.u64()? } else { 0 };
        let primed = r.boolean()?;
        let engine = match r.u8()? {
            0 => Engine::Baseline,
            1 => Engine::Stp,
            _ => return Err(CheckpointError::Corrupt("unknown engine tag")),
        };
        let config = decode_config(&mut r, version)?;
        let round = r.usize()?;
        let phase = decode_phase(&mut r, version)?;
        let merge_log = {
            let len = r.vec_len(12)?;
            let mut log = Vec::with_capacity(len);
            for _ in 0..len {
                let node = r.usize()?;
                let lit = Lit::from_index(r.u32()?);
                log.push((node, lit));
            }
            log
        };
        let dont_touch = r.usize_vec()?;
        let classes = {
            let len = r.vec_len(2)?;
            let mut classes = Vec::with_capacity(len);
            for _ in 0..len {
                let members = r.usize_vec()?;
                let mut phases = Vec::with_capacity(members.len());
                for _ in 0..members.len() {
                    phases.push(r.boolean()?);
                }
                classes.push((members, phases));
            }
            classes
        };
        let constants = {
            let len = r.vec_len(9)?;
            let mut constants = Vec::with_capacity(len);
            for _ in 0..len {
                let node = r.usize()?;
                let value = r.boolean()?;
                constants.push(ConstantCandidate { node, value });
            }
            constants
        };
        let num_patterns = r.usize()?;
        let pattern_words = {
            let len = r.vec_len(8)?;
            let mut inputs = Vec::with_capacity(len);
            for _ in 0..len {
                inputs.push(r.u64_vec()?);
            }
            inputs
        };
        let resim = crate::resim::ResimSnapshot {
            last_seen: r.u64_vec()?,
            events: r.u64()?,
            resimulated: r.u64()?,
            skipped: r.u64()?,
        };
        let stats = decode_stats(&mut r, version)?;
        let sweep_sat_calls = r.u64()?;
        let committed_candidates = r.u64()?;
        let last_compaction_ce = r.u64()?;
        let simulation_time = r.duration()?;
        let sat_time = r.duration()?;
        let elapsed = r.duration()?;
        let main_solver = decode_circuit_snapshot(&mut r)?;
        let pool = {
            let len = r.vec_len(1)?;
            let mut pool = Vec::with_capacity(len);
            for _ in 0..len {
                if version >= 3 {
                    if r.boolean()? {
                        pool.push(Some(decode_circuit_snapshot(&mut r)?));
                    } else {
                        pool.push(None);
                    }
                } else {
                    // v2 stored every slot as a full snapshot.
                    pool.push(Some(decode_circuit_snapshot(&mut r)?));
                }
            }
            pool
        };
        let pool_committed = r.u64_vec()?;
        let (
            seq_candidates,
            seq_ternary_constants,
            seq_induction_refuted,
            seq_induction_undet,
            seq_ternary_iterations,
        ) = if version >= 4 {
            (r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?)
        } else {
            (0, 0, 0, 0, 0)
        };
        let cosplit = if version >= 5 {
            decode_cosplit(&mut r)?
        } else {
            CoSplitSnapshot::default()
        };
        if !r.is_empty() {
            return Err(CheckpointError::Corrupt("trailing bytes after payload"));
        }
        Ok(SweepCheckpoint {
            fingerprint,
            canonical_fingerprint,
            primed,
            engine,
            config,
            round,
            phase,
            merge_log,
            dont_touch,
            classes,
            constants,
            num_patterns,
            pattern_words,
            resim,
            stats,
            sweep_sat_calls,
            committed_candidates,
            last_compaction_ce,
            cosplit,
            simulation_time,
            sat_time,
            elapsed,
            main_solver,
            pool,
            pool_committed,
            seq_candidates,
            seq_ternary_constants,
            seq_induction_refuted,
            seq_induction_undet,
            seq_ternary_iterations,
        })
    }

    /// Writes the encoded checkpoint to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.encode()).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Reads and decodes a checkpoint file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        SweepCheckpoint::decode(&bytes)
    }

    /// The per-input signatures of the checkpointed pattern set.
    pub(crate) fn pattern_signatures(&self) -> Vec<Signature> {
        self.pattern_words
            .iter()
            .map(|words| Signature::from_words(self.num_patterns, words.clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Component codecs.
// ---------------------------------------------------------------------------

fn encode_config(w: &mut Writer, c: &SweepConfig, version: u32) {
    w.usize(c.num_initial_patterns);
    w.u64(c.conflict_limit);
    w.usize(c.tfi_limit);
    w.usize(c.window_limit);
    w.u64(c.seed);
    w.boolean(c.sat_guided_patterns);
    w.boolean(c.constant_substitution);
    w.boolean(c.window_refinement);
    w.usize(c.num_threads);
    w.usize(c.sat_parallelism);
    w.usize(c.checkpoint_interval);
    w.u64(c.solver_reset_interval);
    w.u64(c.compact_every);
    if version >= 3 {
        w.u64(c.checkpoint_interval_millis);
    }
    if version >= 4 {
        w.usize(c.seq_depth);
    }
    if version >= 5 {
        w.usize(c.shards);
        w.u8(match c.batch_policy {
            crate::report::BatchPolicy::SupportDisjoint => 0,
            crate::report::BatchPolicy::RefinementAware => 1,
        });
    }
}

fn decode_config(r: &mut Reader<'_>, version: u32) -> Result<SweepConfig, CheckpointError> {
    Ok(SweepConfig {
        num_initial_patterns: r.usize()?,
        conflict_limit: r.u64()?,
        tfi_limit: r.usize()?,
        window_limit: r.usize()?,
        seed: r.u64()?,
        sat_guided_patterns: r.boolean()?,
        constant_substitution: r.boolean()?,
        window_refinement: r.boolean()?,
        num_threads: r.usize()?,
        sat_parallelism: r.usize()?,
        checkpoint_interval: r.usize()?,
        solver_reset_interval: r.u64()?,
        compact_every: r.u64()?,
        checkpoint_interval_millis: if version >= 3 { r.u64()? } else { 0 },
        seq_depth: if version >= 4 { r.usize()? } else { 0 },
        shards: if version >= 5 { r.usize()? } else { 0 },
        // Pre-v5 builds only had the support-disjointness prior.
        batch_policy: if version >= 5 {
            match r.u8()? {
                0 => crate::report::BatchPolicy::SupportDisjoint,
                1 => crate::report::BatchPolicy::RefinementAware,
                _ => return Err(CheckpointError::Corrupt("unknown batch policy tag")),
            }
        } else {
            crate::report::BatchPolicy::SupportDisjoint
        },
    })
}

fn encode_stats(w: &mut Writer, s: &StatsObserver, version: u32) {
    w.usize(s.rounds);
    w.usize(s.merges);
    w.usize(s.constants);
    w.u64(s.sat_calls_sat);
    w.u64(s.sat_calls_unsat);
    w.u64(s.sat_calls_undet);
    w.u64(s.proved_by_simulation);
    w.u64(s.disproved_by_simulation);
    w.u64(s.counterexamples);
    w.u64(s.refinements);
    w.u64(s.resim_events);
    w.u64(s.resim_nodes);
    w.u64(s.resim_skipped_nodes);
    w.u64(s.sat_batches);
    w.u64(s.sat_parallel_conflicts);
    w.u64(s.checkpoints);
    w.u64(s.compactions);
    w.u64(s.patterns_dropped);
    if version >= 3 {
        w.u64(s.checkpoint_bytes);
    }
    if version >= 5 {
        w.u64(s.sat_batch_committed);
    }
}

fn decode_stats(r: &mut Reader<'_>, version: u32) -> Result<StatsObserver, CheckpointError> {
    Ok(StatsObserver {
        rounds: r.usize()?,
        merges: r.usize()?,
        constants: r.usize()?,
        sat_calls_sat: r.u64()?,
        sat_calls_unsat: r.u64()?,
        sat_calls_undet: r.u64()?,
        proved_by_simulation: r.u64()?,
        disproved_by_simulation: r.u64()?,
        counterexamples: r.u64()?,
        refinements: r.u64()?,
        resim_events: r.u64()?,
        resim_nodes: r.u64()?,
        resim_skipped_nodes: r.u64()?,
        sat_batches: r.u64()?,
        sat_parallel_conflicts: r.u64()?,
        checkpoints: r.u64()?,
        compactions: r.u64()?,
        patterns_dropped: r.u64()?,
        checkpoint_bytes: if version >= 3 { r.u64()? } else { 0 },
        sat_batch_committed: if version >= 5 { r.u64()? } else { 0 },
        // Pipeline-level pass brackets are not part of a sweep session's
        // state: a resumed session starts outside any pass manager.
        passes: 0,
    })
}

fn encode_cosplit(w: &mut Writer, s: &CoSplitSnapshot) {
    w.usize(s.splits.len());
    for &(rep, count) in &s.splits {
        w.usize(rep);
        w.u32(count);
    }
    w.usize(s.proofs.len());
    for &(rep, count) in &s.proofs {
        w.usize(rep);
        w.u32(count);
    }
    w.usize(s.cosplits.len());
    for &(a, b, count) in &s.cosplits {
        w.usize(a);
        w.usize(b);
        w.u32(count);
    }
    w.u64(s.events);
}

fn decode_cosplit(r: &mut Reader<'_>) -> Result<CoSplitSnapshot, CheckpointError> {
    let splits = {
        let len = r.vec_len(12)?;
        let mut splits = Vec::with_capacity(len);
        for _ in 0..len {
            let rep = r.usize()?;
            let count = r.u32()?;
            splits.push((rep, count));
        }
        splits
    };
    let proofs = {
        let len = r.vec_len(12)?;
        let mut proofs = Vec::with_capacity(len);
        for _ in 0..len {
            let rep = r.usize()?;
            let count = r.u32()?;
            proofs.push((rep, count));
        }
        proofs
    };
    let cosplits = {
        let len = r.vec_len(20)?;
        let mut cosplits = Vec::with_capacity(len);
        for _ in 0..len {
            let a = r.usize()?;
            let b = r.usize()?;
            let count = r.u32()?;
            cosplits.push((a, b, count));
        }
        cosplits
    };
    Ok(CoSplitSnapshot {
        splits,
        proofs,
        cosplits,
        events: r.u64()?,
    })
}

fn encode_phase(w: &mut Writer, phase: &PhasePod, version: u32) {
    match phase {
        PhasePod::Start => w.u8(0),
        PhasePod::Constants { queue, next } => {
            w.u8(1);
            w.usize(queue.len());
            for c in queue {
                w.usize(c.node);
                w.boolean(c.value);
            }
            w.usize(*next);
        }
        PhasePod::Merging {
            pending,
            batch_index,
            inflight,
        } => {
            w.u8(2);
            w.usize(pending.len());
            for &(node, attempts) in pending {
                w.usize(node);
                w.usize(attempts);
            }
            w.usize(*batch_index);
            match inflight {
                None => w.boolean(false),
                Some(inflight) => {
                    w.boolean(true);
                    w.usize(inflight.items.len());
                    for item in &inflight.items {
                        encode_proof_item(w, item, version);
                    }
                    w.usize(inflight.results.len());
                    for result in &inflight.results {
                        encode_proof_result(w, result);
                    }
                    w.usize(inflight.next);
                    w.usize(inflight.settled);
                    w.usize(inflight.conflicts);
                    if version >= 5 {
                        w.usize(inflight.committed);
                        // Presence-gated pre-query snapshots, like the pool.
                        w.usize(inflight.pre_query.len());
                        for snap in &inflight.pre_query {
                            w.boolean(snap.is_some());
                            if let Some(snap) = snap {
                                encode_circuit_snapshot(w, snap);
                            }
                        }
                    }
                }
            }
        }
        PhasePod::Done => w.u8(3),
    }
}

fn decode_phase(r: &mut Reader<'_>, version: u32) -> Result<PhasePod, CheckpointError> {
    match r.u8()? {
        0 => Ok(PhasePod::Start),
        1 => {
            let len = r.vec_len(9)?;
            let mut queue = Vec::with_capacity(len);
            for _ in 0..len {
                let node = r.usize()?;
                let value = r.boolean()?;
                queue.push(ConstantCandidate { node, value });
            }
            let next = r.usize()?;
            Ok(PhasePod::Constants { queue, next })
        }
        2 => {
            let len = r.vec_len(16)?;
            let mut pending = Vec::with_capacity(len);
            for _ in 0..len {
                let node = r.usize()?;
                let attempts = r.usize()?;
                pending.push((node, attempts));
            }
            let batch_index = r.usize()?;
            let inflight = if r.boolean()? {
                let items_len = r.vec_len(3)?;
                let mut items = Vec::with_capacity(items_len);
                for index in 0..items_len {
                    items.push(decode_proof_item(r, version, index)?);
                }
                let results_len = r.vec_len(3)?;
                let mut results = Vec::with_capacity(results_len);
                for _ in 0..results_len {
                    results.push(decode_proof_result(r)?);
                }
                let next = r.usize()?;
                let settled = r.usize()?;
                let conflicts = r.usize()?;
                let (committed, pre_query) = if version >= 5 {
                    let committed = r.usize()?;
                    let len = r.vec_len(1)?;
                    let mut pre_query = Vec::with_capacity(len);
                    for _ in 0..len {
                        if r.boolean()? {
                            pre_query.push(Some(decode_circuit_snapshot(r)?));
                        } else {
                            pre_query.push(None);
                        }
                    }
                    (committed, pre_query)
                } else {
                    // Best-effort pre-v5 resume: no snapshots to restore
                    // from, and the barrier count restarts at zero.
                    (0, vec![None; items_len])
                };
                Some(InflightPod {
                    items,
                    results,
                    pre_query,
                    next,
                    committed,
                    settled,
                    conflicts,
                })
            } else {
                None
            };
            Ok(PhasePod::Merging {
                pending,
                batch_index,
                inflight,
            })
        }
        3 => Ok(PhasePod::Done),
        _ => Err(CheckpointError::Corrupt("unknown phase tag")),
    }
}

fn encode_proof_item(w: &mut Writer, item: &ProofItem, version: u32) {
    w.usize(item.candidate);
    w.usize(item.attempts);
    w.usize(item.drivers.len());
    for &(driver, complemented) in &item.drivers {
        w.usize(driver);
        w.boolean(complemented);
    }
    if version >= 5 {
        w.usize(item.slot);
    }
}

/// `index` is the item's position in its batch — pre-v5 payloads carried no
/// slot field because slots *were* positional.
fn decode_proof_item(
    r: &mut Reader<'_>,
    version: u32,
    index: usize,
) -> Result<ProofItem, CheckpointError> {
    let candidate = r.usize()?;
    let attempts = r.usize()?;
    let len = r.vec_len(9)?;
    let mut drivers = Vec::with_capacity(len);
    for _ in 0..len {
        let driver = r.usize()?;
        let complemented = r.boolean()?;
        drivers.push((driver, complemented));
    }
    let slot = if version >= 5 { r.usize()? } else { index };
    Ok(ProofItem {
        candidate,
        attempts,
        drivers,
        slot,
    })
}

fn encode_proof_result(w: &mut Writer, result: &ProofResult) {
    w.usize(result.verdicts.len());
    for &(driver, equivalent) in &result.verdicts {
        w.usize(driver);
        w.boolean(equivalent);
    }
    match result.sat_outcome {
        None => w.u8(0),
        Some(crate::observer::SatCallOutcome::Sat) => w.u8(1),
        Some(crate::observer::SatCallOutcome::Unsat) => w.u8(2),
        Some(crate::observer::SatCallOutcome::Undetermined) => w.u8(3),
    }
    match &result.outcome {
        ProofOutcome::Merge {
            driver,
            complemented,
            by_simulation,
        } => {
            w.u8(0);
            w.usize(*driver);
            w.boolean(*complemented);
            w.boolean(*by_simulation);
        }
        ProofOutcome::CounterExample { assignment } => {
            w.u8(1);
            w.usize(assignment.len());
            for &bit in assignment {
                w.boolean(bit);
            }
        }
        ProofOutcome::DontTouch => w.u8(2),
        ProofOutcome::Exhausted => w.u8(3),
        ProofOutcome::Aborted => w.u8(4),
    }
    w.usize(result.attempts_used);
    w.duration(result.sat_time);
}

fn decode_proof_result(r: &mut Reader<'_>) -> Result<ProofResult, CheckpointError> {
    let len = r.vec_len(9)?;
    let mut verdicts = Vec::with_capacity(len);
    for _ in 0..len {
        let driver = r.usize()?;
        let equivalent = r.boolean()?;
        verdicts.push((driver, equivalent));
    }
    let sat_outcome = match r.u8()? {
        0 => None,
        1 => Some(crate::observer::SatCallOutcome::Sat),
        2 => Some(crate::observer::SatCallOutcome::Unsat),
        3 => Some(crate::observer::SatCallOutcome::Undetermined),
        _ => return Err(CheckpointError::Corrupt("unknown SAT outcome tag")),
    };
    let outcome = match r.u8()? {
        0 => ProofOutcome::Merge {
            driver: r.usize()?,
            complemented: r.boolean()?,
            by_simulation: r.boolean()?,
        },
        1 => {
            let len = r.vec_len(1)?;
            let mut assignment = Vec::with_capacity(len);
            for _ in 0..len {
                assignment.push(r.boolean()?);
            }
            ProofOutcome::CounterExample { assignment }
        }
        2 => ProofOutcome::DontTouch,
        3 => ProofOutcome::Exhausted,
        4 => ProofOutcome::Aborted,
        _ => return Err(CheckpointError::Corrupt("unknown proof outcome tag")),
    };
    Ok(ProofResult {
        verdicts,
        sat_outcome,
        outcome,
        attempts_used: r.usize()?,
        sat_time: r.duration()?,
    })
}

fn encode_solver_snapshot(w: &mut Writer, s: &SolverSnapshot) {
    w.f64(s.config.var_decay);
    w.f64(s.config.clause_decay);
    w.u64(s.config.restart_base);
    w.usize(s.config.learnt_limit_base);
    w.usize(s.clauses.len());
    for clause in &s.clauses {
        w.usize(clause.lits.len());
        for &lit in &clause.lits {
            w.u32(lit.code() as u32);
        }
        w.boolean(clause.learnt);
        w.f64(clause.activity);
        w.boolean(clause.deleted);
    }
    w.usize(s.watches.len());
    for list in &s.watches {
        w.usize(list.len());
        for &ci in list {
            w.usize(ci);
        }
    }
    w.usize(s.assigns.len());
    for &a in &s.assigns {
        w.opt_bool(a);
    }
    for &p in &s.phase {
        w.boolean(p);
    }
    for &l in &s.level {
        w.u32(l);
    }
    for &reason in &s.reason {
        match reason {
            None => w.boolean(false),
            Some(ci) => {
                w.boolean(true);
                w.usize(ci);
            }
        }
    }
    for &a in &s.activity {
        w.f64(a);
    }
    w.usize(s.order_heap.len());
    for &v in &s.order_heap {
        w.usize(v);
    }
    for &p in &s.order_position {
        // `usize::MAX` marks absence; map it to `u64::MAX` portably.
        w.u64(if p == usize::MAX { u64::MAX } else { p as u64 });
    }
    w.usize(s.trail.len());
    for &lit in &s.trail {
        w.u32(lit.code() as u32);
    }
    w.usize(s.qhead);
    w.f64(s.var_inc);
    w.f64(s.cla_inc);
    w.boolean(s.ok);
    w.usize(s.model.len());
    for &m in &s.model {
        w.opt_bool(m);
    }
    w.u64(s.stats.decisions);
    w.u64(s.stats.propagations);
    w.u64(s.stats.conflicts);
    w.u64(s.stats.restarts);
    w.u64(s.stats.learnt_clauses);
    w.u64(s.stats.solve_calls);
    w.usize(s.num_learnts);
}

fn decode_solver_snapshot(r: &mut Reader<'_>) -> Result<SolverSnapshot, CheckpointError> {
    let config = SolverConfig {
        var_decay: r.f64()?,
        clause_decay: r.f64()?,
        restart_base: r.u64()?,
        learnt_limit_base: r.usize()?,
    };
    let clauses = {
        let len = r.vec_len(10)?;
        let mut clauses = Vec::with_capacity(len);
        for _ in 0..len {
            let lits_len = r.vec_len(4)?;
            let mut lits = Vec::with_capacity(lits_len);
            for _ in 0..lits_len {
                lits.push(SatLit::from_code(r.u32()?));
            }
            clauses.push(ClauseSnapshot {
                lits,
                learnt: r.boolean()?,
                activity: r.f64()?,
                deleted: r.boolean()?,
            });
        }
        clauses
    };
    let watches = {
        let len = r.vec_len(8)?;
        let mut watches = Vec::with_capacity(len);
        for _ in 0..len {
            watches.push(r.usize_vec()?);
        }
        watches
    };
    let num_vars = r.vec_len(1)?;
    let mut assigns = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        assigns.push(r.opt_bool()?);
    }
    let mut phase = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        phase.push(r.boolean()?);
    }
    let mut level = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        level.push(r.u32()?);
    }
    let mut reason = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        reason.push(if r.boolean()? { Some(r.usize()?) } else { None });
    }
    let mut activity = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        activity.push(r.f64()?);
    }
    let order_heap = r.usize_vec()?;
    let mut order_position = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        let raw = r.u64()?;
        order_position.push(if raw == u64::MAX {
            usize::MAX
        } else {
            usize::try_from(raw)
                .map_err(|_| CheckpointError::Corrupt("heap position out of range"))?
        });
    }
    let trail = {
        let len = r.vec_len(4)?;
        let mut trail = Vec::with_capacity(len);
        for _ in 0..len {
            trail.push(SatLit::from_code(r.u32()?));
        }
        trail
    };
    let qhead = r.usize()?;
    let var_inc = r.f64()?;
    let cla_inc = r.f64()?;
    let ok = r.boolean()?;
    let model = {
        let len = r.vec_len(1)?;
        let mut model = Vec::with_capacity(len);
        for _ in 0..len {
            model.push(r.opt_bool()?);
        }
        model
    };
    let stats = SolverStats {
        decisions: r.u64()?,
        propagations: r.u64()?,
        conflicts: r.u64()?,
        restarts: r.u64()?,
        learnt_clauses: r.u64()?,
        solve_calls: r.u64()?,
    };
    let num_learnts = r.usize()?;
    Ok(SolverSnapshot {
        config,
        clauses,
        watches,
        assigns,
        phase,
        level,
        reason,
        activity,
        order_heap,
        order_position,
        trail,
        qhead,
        var_inc,
        cla_inc,
        ok,
        model,
        stats,
        num_learnts,
    })
}

fn encode_circuit_snapshot(w: &mut Writer, s: &CircuitSatSnapshot) {
    encode_solver_snapshot(w, &s.solver);
    w.usize(s.node_var.len());
    for &v in &s.node_var {
        match v {
            None => w.boolean(false),
            Some(v) => {
                w.boolean(true);
                w.u32(v);
            }
        }
    }
    for &e in &s.encoded {
        w.boolean(e);
    }
    w.u64(s.stats.total_calls);
    w.u64(s.stats.sat_calls);
    w.u64(s.stats.unsat_calls);
    w.u64(s.stats.undetermined_calls);
}

fn decode_circuit_snapshot(r: &mut Reader<'_>) -> Result<CircuitSatSnapshot, CheckpointError> {
    let solver = decode_solver_snapshot(r)?;
    let num_nodes = r.vec_len(1)?;
    let mut node_var = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        node_var.push(if r.boolean()? { Some(r.u32()?) } else { None });
    }
    let mut encoded = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        encoded.push(r.boolean()?);
    }
    let stats = QueryStats {
        total_calls: r.u64()?,
        sat_calls: r.u64()?,
        unsat_calls: r.u64()?,
        undetermined_calls: r.u64()?,
    };
    Ok(CircuitSatSnapshot {
        solver,
        node_var,
        encoded,
        stats,
    })
}

// ---------------------------------------------------------------------------
// The little-endian writer/reader.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn opt_bool(&mut self, v: Option<bool>) {
        self.u8(match v {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }

    /// Bit-exact float encoding (restored activities must match exactly —
    /// they steer VSIDS tie-breaking).
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn duration(&mut self, d: Duration) {
        self.u64(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Corrupt("value out of range"))
    }

    fn boolean(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("invalid boolean")),
        }
    }

    fn opt_bool(&mut self) -> Result<Option<bool>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            _ => Err(CheckpointError::Corrupt("invalid optional boolean")),
        }
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn duration(&mut self) -> Result<Duration, CheckpointError> {
        Ok(Duration::from_nanos(self.u64()?))
    }

    /// Reads a vector length and bounds it by the bytes actually left in
    /// the stream (`min_elem_bytes` per element), so a corrupt length field
    /// cannot trigger a pathological allocation.
    fn vec_len(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let len = self.usize()?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CheckpointError::Truncated);
        }
        Ok(len)
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.vec_len(8)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    fn usize_vec(&mut self) -> Result<Vec<usize>, CheckpointError> {
        let len = self.vec_len(8)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.usize()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fingerprint_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        aig.add_output("f", f);
        aig
    }

    #[test]
    fn fingerprints_distinguish_structures() {
        let base = fingerprint_aig();
        let fp = netlist_fingerprint(&base);
        assert_eq!(fp, netlist_fingerprint(&base.clone()), "deterministic");

        let mut grown = base.clone();
        let extra = grown.and(
            Lit::positive(grown.inputs()[0]),
            Lit::positive(grown.inputs()[0]),
        );
        grown.add_output("extra", extra);
        assert_ne!(fp, netlist_fingerprint(&grown));

        // Complementing an output changes the function, hence the print.
        let mut flipped = base.clone();
        let lit = flipped.outputs()[0].lit;
        flipped.set_output_lit(0, !lit);
        assert_ne!(fp, netlist_fingerprint(&flipped));
    }

    /// A synthetic but structurally rich checkpoint exercising every codec
    /// branch (inflight batch, all proof outcomes, populated solvers).
    fn sample_checkpoint() -> SweepCheckpoint {
        let solver = SolverSnapshot {
            config: SolverConfig::default(),
            clauses: vec![
                ClauseSnapshot {
                    lits: vec![SatLit::from_code(0), SatLit::from_code(3)],
                    learnt: false,
                    activity: 0.0,
                    deleted: false,
                },
                ClauseSnapshot {
                    lits: vec![
                        SatLit::from_code(2),
                        SatLit::from_code(5),
                        SatLit::from_code(1),
                    ],
                    learnt: true,
                    activity: 1.5,
                    deleted: true,
                },
            ],
            watches: vec![vec![0], vec![1], vec![], vec![0, 1], vec![], vec![1]],
            assigns: vec![Some(true), None, Some(false)],
            phase: vec![true, false, true],
            level: vec![0, 0, 0],
            reason: vec![None, Some(1), None],
            activity: vec![0.25, 1.0, 0.0],
            order_heap: vec![1, 2],
            order_position: vec![usize::MAX, 0, 1],
            trail: vec![SatLit::from_code(0), SatLit::from_code(5)],
            qhead: 2,
            var_inc: 1.25,
            cla_inc: 1.0,
            ok: true,
            model: vec![Some(true), Some(false), None],
            stats: SolverStats {
                decisions: 4,
                propagations: 9,
                conflicts: 2,
                restarts: 1,
                learnt_clauses: 1,
                solve_calls: 3,
            },
            num_learnts: 0,
        };
        let circuit = CircuitSatSnapshot {
            solver,
            node_var: vec![None, Some(0), Some(1), None, Some(2)],
            encoded: vec![false, true, true, false, true],
            stats: QueryStats {
                total_calls: 3,
                sat_calls: 1,
                unsat_calls: 1,
                undetermined_calls: 1,
            },
        };
        SweepCheckpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            canonical_fingerprint: 0xFEED_FACE_89AB_CDEF,
            primed: true,
            engine: Engine::Stp,
            config: SweepConfig::fast().checkpoint_every(7),
            round: 2,
            phase: PhasePod::Merging {
                pending: vec![(9, 0), (7, 2)],
                batch_index: 3,
                inflight: Some(InflightPod {
                    items: vec![ProofItem {
                        candidate: 9,
                        attempts: 1,
                        drivers: vec![(4, true), (5, false)],
                        // Candidate-keyed (9 % 16), deliberately non-zero so
                        // the codec test catches positional fallbacks.
                        slot: 9,
                    }],
                    results: vec![ProofResult {
                        verdicts: vec![(4, false)],
                        sat_outcome: Some(crate::observer::SatCallOutcome::Sat),
                        outcome: ProofOutcome::CounterExample {
                            assignment: vec![true, false, true],
                        },
                        attempts_used: 2,
                        sat_time: Duration::from_micros(42),
                    }],
                    // A populated pre-query snapshot exercises the
                    // presence-gated codec branch.
                    pre_query: vec![Some(circuit.clone())],
                    next: 0,
                    committed: 0,
                    settled: 0,
                    conflicts: 1,
                }),
            },
            merge_log: vec![(5, Lit::positive(3)), (6, Lit::FALSE)],
            dont_touch: vec![8],
            classes: vec![(vec![4, 7, 9], vec![false, true, false])],
            constants: vec![ConstantCandidate {
                node: 10,
                value: true,
            }],
            num_patterns: 65,
            pattern_words: vec![vec![0xAAAA, 0x1], vec![0x5555, 0x0], vec![0xF0F0, 0x1]],
            resim: crate::resim::ResimSnapshot {
                last_seen: vec![0, 1, 2, 2, 2],
                events: 2,
                resimulated: 7,
                skipped: 3,
            },
            stats: StatsObserver {
                rounds: 1,
                merges: 2,
                sat_calls_sat: 1,
                sat_calls_unsat: 2,
                checkpoints: 1,
                ..StatsObserver::new()
            },
            sweep_sat_calls: 3,
            committed_candidates: 4,
            last_compaction_ce: 2,
            cosplit: CoSplitSnapshot {
                splits: vec![(4, 2), (7, 1), (9, 3)],
                proofs: vec![(5, 4), (9, 1)],
                cosplits: vec![(4, 7, 1), (7, 9, 2)],
                events: 5,
            },
            simulation_time: Duration::from_millis(12),
            sat_time: Duration::from_millis(7),
            elapsed: Duration::from_millis(20),
            main_solver: circuit.clone(),
            // One hot slot, one cold (absent) slot, one more hot slot:
            // exercises the presence-gated pool codec.
            pool: vec![Some(circuit.clone()), None, Some(circuit)],
            pool_committed: vec![2, 0, 1],
            seq_candidates: 5,
            seq_ternary_constants: 1,
            seq_induction_refuted: 2,
            seq_induction_undet: 1,
            seq_ternary_iterations: 4,
        }
    }

    #[test]
    fn encode_decode_round_trips_the_sample() {
        let checkpoint = sample_checkpoint();
        let bytes = checkpoint.encode();
        let decoded = SweepCheckpoint::decode(&bytes).expect("decodes");
        assert_eq!(decoded, checkpoint);
        // Re-encoding is byte-stable.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_checkpoint().encode();
        for len in 0..bytes.len() {
            let err = SweepCheckpoint::decode(&bytes[..len])
                .expect_err("a strict prefix must not decode");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::Corrupt(_)
                ),
                "unexpected error at prefix {len}: {err:?}"
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let bytes = sample_checkpoint().encode();
        // Flip one byte at a spread of payload positions (past the header,
        // before the checksum tail): every flip must be caught.
        for position in [20usize, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[position] ^= 0x40;
            assert_eq!(
                SweepCheckpoint::decode(&corrupt),
                Err(CheckpointError::Corrupt("payload checksum mismatch")),
                "flip at {position}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample_checkpoint().encode();
        let original = bytes.clone();

        bytes[0] ^= 0xFF;
        assert_eq!(
            SweepCheckpoint::decode(&bytes),
            Err(CheckpointError::BadMagic)
        );

        bytes = original.clone();
        bytes[8] = 99; // the version field follows the 8-byte magic
        assert_eq!(
            SweepCheckpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        );

        bytes = original.clone();
        bytes.push(0);
        // An appended byte shifts the checksum tail, so the checksum (not
        // the trailing-bytes parser check) rejects it.
        assert_eq!(
            SweepCheckpoint::decode(&bytes),
            Err(CheckpointError::Corrupt("payload checksum mismatch"))
        );
        assert!(SweepCheckpoint::decode(&original).is_ok());
    }

    #[test]
    fn version_1_is_rejected() {
        let mut bytes = sample_checkpoint().encode();
        bytes[8] = 1; // below MIN_CHECKPOINT_VERSION
        assert_eq!(
            SweepCheckpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(1))
        );
    }

    /// Zeroes the fields a pre-v4 payload cannot carry.
    fn clear_seq_fields(checkpoint: &mut SweepCheckpoint) {
        checkpoint.config.seq_depth = 0;
        checkpoint.seq_candidates = 0;
        checkpoint.seq_ternary_constants = 0;
        checkpoint.seq_induction_refuted = 0;
        checkpoint.seq_induction_undet = 0;
        checkpoint.seq_ternary_iterations = 0;
    }

    /// Normalises the fields a pre-v5 payload cannot carry to their decode
    /// defaults: no shards, the support-disjoint policy, an empty co-split
    /// table, positional slots and no pre-query snapshots.
    fn clear_v5_fields(checkpoint: &mut SweepCheckpoint) {
        checkpoint.config.shards = 0;
        checkpoint.config.batch_policy = crate::report::BatchPolicy::SupportDisjoint;
        checkpoint.stats.sat_batch_committed = 0;
        checkpoint.cosplit = CoSplitSnapshot::default();
        if let PhasePod::Merging {
            inflight: Some(pod),
            ..
        } = &mut checkpoint.phase
        {
            for (index, item) in pod.items.iter_mut().enumerate() {
                item.slot = index;
            }
            pod.pre_query = vec![None; pod.items.len()];
            pod.committed = 0;
        }
    }

    #[test]
    fn v4_payloads_still_decode() {
        // A genuine v4 payload: sequential fields present, but no batching
        // policy, shards, co-split table, slots or pre-query snapshots.
        let mut old = sample_checkpoint();
        clear_v5_fields(&mut old);

        let v4_bytes = old.encode_versioned(4);
        assert_eq!(v4_bytes[8], 4, "the version field says v4");
        let decoded = SweepCheckpoint::decode(&v4_bytes).expect("v4 decodes");
        assert_eq!(decoded, old);
        assert_eq!(decoded.config().shards, 0);
        assert_eq!(
            decoded.config().batch_policy,
            crate::report::BatchPolicy::SupportDisjoint
        );

        // Re-encoding upgrades to the current version, state unchanged.
        let upgraded = decoded.encode();
        assert_eq!(upgraded[8], CHECKPOINT_VERSION as u8);
        assert_eq!(SweepCheckpoint::decode(&upgraded).expect("decodes"), old);
    }

    #[test]
    fn v3_payloads_still_decode() {
        // A genuine v3 payload: everything of v3 (canonical fingerprint,
        // wall-clock cadence, cold pool slots) but no sequential fields.
        // The v4 decoder must accept it and default seq_depth plus the
        // sequential counters to zero.
        let mut old = sample_checkpoint();
        clear_seq_fields(&mut old);
        clear_v5_fields(&mut old);

        let v3_bytes = old.encode_versioned(3);
        assert_eq!(v3_bytes[8], 3, "the version field says v3");
        let decoded = SweepCheckpoint::decode(&v3_bytes).expect("v3 decodes");
        assert_eq!(decoded, old);
        assert_eq!(decoded.config().seq_depth, 0);

        // Re-encoding upgrades to the current version, state unchanged.
        let upgraded = decoded.encode();
        assert_eq!(upgraded[8], CHECKPOINT_VERSION as u8);
        assert_eq!(SweepCheckpoint::decode(&upgraded).expect("decodes"), old);
    }

    #[test]
    fn v2_payloads_still_decode() {
        // A genuine v2 payload: no canonical fingerprint, no wall-clock
        // cadence, no byte counter, every pool slot materialised.  The v3
        // decoder must accept it and default the new fields.
        let mut old = sample_checkpoint();
        old.canonical_fingerprint = 0;
        old.config.checkpoint_interval_millis = 0;
        old.stats.checkpoint_bytes = 0;
        clear_seq_fields(&mut old);
        clear_v5_fields(&mut old);
        let hot = old.pool[0].clone();
        for slot in &mut old.pool {
            slot.get_or_insert_with(|| hot.clone().expect("slot 0 is hot"));
        }

        let v2_bytes = old.encode_versioned(2);
        assert_eq!(v2_bytes[8], 2, "the version field says v2");
        let decoded = SweepCheckpoint::decode(&v2_bytes).expect("v2 decodes");
        assert_eq!(decoded, old);
        assert_eq!(decoded.canonical_fingerprint(), 0);

        // Re-encoding a decoded v2 checkpoint upgrades it to the current
        // version (same state, new layout).
        let upgraded = decoded.encode();
        assert_eq!(upgraded[8], CHECKPOINT_VERSION as u8);
        assert_eq!(SweepCheckpoint::decode(&upgraded).expect("decodes"), old);
    }

    #[test]
    fn cold_pool_slots_keep_checkpoints_small() {
        // The cheap-checkpoint guarantee: a cold (absent) pool slot costs
        // one presence byte, not a serialised solver snapshot.  With the
        // engine's 16-slot pool, a session that never reached the merging
        // phase would otherwise pay 16 idle snapshots per checkpoint.
        let hot = sample_checkpoint();
        let snapshot_bytes = {
            // Serialised size of one pool snapshot, measured by difference.
            let mut one_cold = hot.clone();
            one_cold.pool[0] = None;
            hot.encode().len() - one_cold.encode().len()
        };
        assert!(
            snapshot_bytes > 100,
            "a solver snapshot must dominate its one-byte presence marker \
             (got {snapshot_bytes} bytes)"
        );

        let mut cold = hot.clone();
        for slot in &mut cold.pool {
            *slot = None;
        }
        let hot_len = hot.encode().len();
        let cold_len = cold.encode().len();
        let hot_slots = hot.pool.iter().filter(|s| s.is_some()).count();
        assert_eq!(
            cold_len,
            hot_len - hot_slots * snapshot_bytes,
            "each cold slot saves exactly one snapshot"
        );
        // And the cold encoding still round-trips.
        let decoded = SweepCheckpoint::decode(&cold.encode()).expect("decodes");
        assert_eq!(decoded, cold);
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let checkpoint = sample_checkpoint();
        let path = std::env::temp_dir().join(format!(
            "stp_sweep_checkpoint_test_{}.ckpt",
            std::process::id()
        ));
        checkpoint.save(&path).expect("writes");
        let loaded = SweepCheckpoint::load(&path).expect("reads");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, checkpoint);

        let missing = SweepCheckpoint::load(path.with_extension("missing"));
        assert!(matches!(missing, Err(CheckpointError::Io(_))));
    }

    // -- proptest: encode ∘ decode = id over random session states ---------

    fn arb_signature_words() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(any::<u64>(), 1..4)
    }

    fn arb_opt_bool() -> impl Strategy<Value = Option<bool>> {
        (0u8..3).prop_map(|v| match v {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        })
    }

    fn arb_proof_outcome() -> impl Strategy<Value = ProofOutcome> {
        prop_oneof![
            (any::<usize>(), any::<bool>(), any::<bool>()).prop_map(
                |(driver, complemented, by_simulation)| ProofOutcome::Merge {
                    driver: driver % 1000,
                    complemented,
                    by_simulation,
                }
            ),
            proptest::collection::vec(any::<bool>(), 0..8)
                .prop_map(|assignment| ProofOutcome::CounterExample { assignment }),
            Just(ProofOutcome::DontTouch),
            Just(ProofOutcome::Exhausted),
            Just(ProofOutcome::Aborted),
        ]
    }

    fn arb_proof_result() -> impl Strategy<Value = ProofResult> {
        (
            proptest::collection::vec((0usize..1000, any::<bool>()), 0..4),
            prop_oneof![
                Just(None),
                Just(Some(crate::observer::SatCallOutcome::Sat)),
                Just(Some(crate::observer::SatCallOutcome::Unsat)),
                Just(Some(crate::observer::SatCallOutcome::Undetermined)),
            ],
            arb_proof_outcome(),
            0usize..100,
            0u64..1_000_000,
        )
            .prop_map(|(verdicts, sat_outcome, outcome, attempts_used, nanos)| {
                ProofResult {
                    verdicts,
                    sat_outcome,
                    outcome,
                    attempts_used,
                    sat_time: Duration::from_nanos(nanos),
                }
            })
    }

    fn arb_inflight() -> impl Strategy<Value = Option<InflightPod>> {
        (
            any::<bool>(),
            proptest::collection::vec(
                (
                    0usize..1000,
                    0usize..5,
                    proptest::collection::vec((0usize..1000, any::<bool>()), 0..3),
                ),
                0..3,
            ),
            proptest::collection::vec(arb_proof_result(), 0..3),
            0usize..4,
            0usize..4,
            0usize..4,
        )
            .prop_map(|(present, items, results, next, settled, conflicts)| {
                if !present {
                    return None;
                }
                let num_items = items.len();
                Some(InflightPod {
                    items: items
                        .into_iter()
                        .enumerate()
                        .map(|(index, (candidate, attempts, drivers))| ProofItem {
                            candidate,
                            attempts,
                            drivers,
                            // Candidate-keyed slots, like the live engine.
                            slot: (candidate + index) % crate::prover::MAX_BATCH,
                        })
                        .collect(),
                    results,
                    pre_query: vec![None; num_items],
                    next,
                    committed: next / 2,
                    settled,
                    conflicts,
                })
            })
    }

    fn arb_phase() -> impl Strategy<Value = PhasePod> {
        prop_oneof![
            Just(PhasePod::Start),
            (
                proptest::collection::vec((0usize..1000, any::<bool>()), 0..6),
                0usize..8,
            )
                .prop_map(|(queue, next)| PhasePod::Constants {
                    queue: queue
                        .into_iter()
                        .map(|(node, value)| ConstantCandidate { node, value })
                        .collect(),
                    next,
                }),
            (
                proptest::collection::vec((0usize..1000, 0usize..10), 0..8),
                0usize..50,
                arb_inflight(),
            )
                .prop_map(|(pending, batch_index, inflight)| PhasePod::Merging {
                    pending,
                    batch_index,
                    inflight,
                }),
            Just(PhasePod::Done),
        ]
    }

    /// A small random (not necessarily semantically valid) solver snapshot:
    /// the codec must round-trip arbitrary states byte-exactly; semantic
    /// validation is the restore path's job.
    fn arb_solver_snapshot() -> impl Strategy<Value = SolverSnapshot> {
        (
            (
                proptest::collection::vec(
                    (
                        proptest::collection::vec(any::<u32>(), 1..4),
                        any::<bool>(),
                        any::<u32>(),
                        any::<bool>(),
                    ),
                    0..4,
                ),
                proptest::collection::vec(proptest::collection::vec(0usize..10, 0..3), 0..6),
                proptest::collection::vec(arb_opt_bool(), 0..5),
            ),
            (
                proptest::collection::vec(any::<u32>(), 0..5),
                proptest::collection::vec(any::<u32>(), 0..4),
                0usize..8,
                any::<u32>(),
                any::<u32>(),
                any::<bool>(),
            ),
        )
            .prop_map(
                |(
                    (raw_clauses, watches, assigns),
                    (levels, trail, qhead, var_inc, cla_inc, ok),
                )| {
                    let n = assigns.len();
                    SolverSnapshot {
                        config: SolverConfig::default(),
                        clauses: raw_clauses
                            .into_iter()
                            .map(|(lits, learnt, activity, deleted)| ClauseSnapshot {
                                lits: lits.into_iter().map(SatLit::from_code).collect(),
                                learnt,
                                activity: f64::from(activity),
                                deleted,
                            })
                            .collect(),
                        watches,
                        phase: vec![false; n],
                        // The codec relies on the per-variable vectors
                        // sharing the arity of `assigns`; pad accordingly.
                        level: (0..n)
                            .map(|i| levels.get(i).copied().unwrap_or(0))
                            .collect(),
                        reason: vec![None; n],
                        activity: vec![0.0; n],
                        order_heap: Vec::new(),
                        order_position: vec![usize::MAX; n],
                        trail: trail.into_iter().map(SatLit::from_code).collect(),
                        qhead,
                        var_inc: f64::from(var_inc),
                        cla_inc: f64::from(cla_inc),
                        ok,
                        model: Vec::new(),
                        stats: SolverStats::default(),
                        num_learnts: 0,
                        assigns,
                    }
                },
            )
    }

    fn arb_checkpoint() -> impl Strategy<Value = SweepCheckpoint> {
        (
            (
                (any::<u64>(), any::<u64>()),
                any::<bool>(),
                any::<bool>(),
                arb_phase(),
                proptest::collection::vec((0usize..1000, any::<u32>()), 0..6),
                proptest::collection::vec(0usize..1000, 0..5),
            ),
            (
                proptest::collection::vec(arb_signature_words(), 0..4),
                arb_solver_snapshot(),
                proptest::collection::vec((arb_solver_snapshot(), any::<bool>()), 0..3),
                proptest::collection::vec(any::<u64>(), 0..4),
                any::<u64>(),
                any::<u64>(),
            ),
        )
            .prop_map(
                |(
                    ((fingerprint, canonical), primed, stp, phase, merges, dont_touch),
                    (pattern_words, main, pool_solvers, pool_committed, sat_calls, committed),
                )| {
                    let wrap = |solver: SolverSnapshot| CircuitSatSnapshot {
                        node_var: vec![None; 3],
                        encoded: vec![false; 3],
                        stats: QueryStats::default(),
                        solver,
                    };
                    SweepCheckpoint {
                        fingerprint,
                        canonical_fingerprint: canonical,
                        primed,
                        engine: if stp { Engine::Stp } else { Engine::Baseline },
                        config: SweepConfig::default(),
                        round: 0,
                        phase,
                        merge_log: merges
                            .into_iter()
                            .map(|(node, lit)| (node, Lit::from_index(lit)))
                            .collect(),
                        dont_touch,
                        classes: vec![(vec![1, 2], vec![false, true])],
                        constants: Vec::new(),
                        num_patterns: 64,
                        pattern_words,
                        resim: crate::resim::ResimSnapshot {
                            last_seen: vec![0; 4],
                            events: 0,
                            resimulated: 0,
                            skipped: 0,
                        },
                        stats: StatsObserver::new(),
                        sweep_sat_calls: sat_calls,
                        committed_candidates: committed,
                        last_compaction_ce: sat_calls / 2,
                        cosplit: CoSplitSnapshot {
                            splits: vec![(3, (sat_calls % 9) as u32 + 1)],
                            proofs: vec![(6, (committed % 7) as u32 + 1)],
                            cosplits: vec![(3, 8, (committed % 5) as u32 + 1)],
                            events: sat_calls % 17,
                        },
                        simulation_time: Duration::ZERO,
                        sat_time: Duration::ZERO,
                        elapsed: Duration::ZERO,
                        main_solver: wrap(main),
                        // Random mix of hot (Some) and cold (None) slots.
                        pool: pool_solvers
                            .into_iter()
                            .map(|(solver, hot)| hot.then(|| wrap(solver)))
                            .collect(),
                        pool_committed,
                        seq_candidates: sat_calls % 97,
                        seq_ternary_constants: committed % 13,
                        seq_induction_refuted: sat_calls % 7,
                        seq_induction_undet: committed % 5,
                        seq_ternary_iterations: sat_calls % 31,
                    }
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `decode ∘ encode = id` over random session states, and encoding
        /// is byte-stable across the round trip.
        #[test]
        fn checkpoint_codec_round_trips(checkpoint in arb_checkpoint()) {
            let bytes = checkpoint.encode();
            let decoded = SweepCheckpoint::decode(&bytes).expect("own encoding decodes");
            prop_assert_eq!(&decoded, &checkpoint);
            prop_assert_eq!(decoded.encode(), bytes);
        }

        /// No random prefix of a valid encoding decodes (truncation is
        /// always detected), and no prefix panics.
        #[test]
        fn checkpoint_codec_rejects_truncations(checkpoint in arb_checkpoint(), cut in 0usize..1000) {
            let bytes = checkpoint.encode();
            let len = bytes.len() * cut / 1000;
            if len < bytes.len() {
                prop_assert!(SweepCheckpoint::decode(&bytes[..len]).is_err());
            }
        }
    }
}
