//! The baseline SAT sweeper (the `&fraig -x` analog of Table II).
//!
//! The baseline shares the proving machinery of [`crate::session`] but uses
//! the conventional strategy the paper compares against:
//!
//! * purely random initial simulation patterns;
//! * candidates processed in topological order, compared against their class
//!   representative only;
//! * every counter-example triggers a full bit-parallel resimulation of the
//!   network (no cut windows, no exhaustive refinement);
//! * no up-front constant substitution pass unless explicitly enabled in the
//!   configuration.
//!
//! **Deprecated in favour of the builder API** — the one-line migration is
//! `Sweeper::new(Engine::Baseline).config(config).run(&aig)?`; the engine
//! normalisation that used to live here (the baseline ignores the paper's
//! STP-only flags) now happens at the single dispatch point in
//! [`crate::session`].

use crate::report::{SweepConfig, SweepResult};
use crate::session::{Engine, Sweeper};
use netlist::Aig;

/// Runs the baseline FRAIG-style sweeper on `aig`.
///
/// Legacy wrapper around [`Sweeper`]; panics on an invalid `config` (the
/// builder API returns [`crate::SweepError::InvalidConfig`] instead).
///
/// The flags of `config` that correspond to the paper's additions
/// (`sat_guided_patterns`, `window_refinement`) are ignored — the baseline
/// never uses them; start from [`SweepConfig::baseline`] for the canonical
/// baseline setting.
///
/// ```
/// use netlist::Aig;
/// use stp_sweep::{fraig, SweepConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let f = aig.and(a, b);
/// let g = aig.and(f, b); // redundant: equals f
/// let y = aig.xor(f, g);
/// aig.add_output("y", y);
/// let result = fraig::sweep_fraig(&aig, &SweepConfig::baseline());
/// assert!(result.aig.num_ands() <= aig.num_ands());
/// ```
#[deprecated(note = "use `Sweeper::new(Engine::Baseline).config(config).run(&aig)` instead")]
pub fn sweep_fraig(aig: &Aig, config: &SweepConfig) -> SweepResult {
    Sweeper::new(Engine::Baseline)
        .config(*config)
        .run(aig)
        .expect("legacy wrapper: invalid SweepConfig")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::cec::check_equivalence;
    use crate::sweeper::sweep_stp;

    fn redundant_circuit() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 5);
        let f1 = aig.and(xs[0], xs[1]);
        let f2_inner = aig.nand(xs[0], xs[1]);
        let f2 = !f2_inner;
        let g1 = aig.xor(xs[2], xs[3]);
        let g2_t = aig.or(xs[2], xs[3]);
        let g2_b = aig.nand(xs[2], xs[3]);
        let g2 = aig.and(g2_t, g2_b);
        let o1 = aig.mux(xs[4], f1, g2);
        let o2 = aig.mux(xs[4], g1, f2);
        aig.add_output("o1", o1);
        aig.add_output("o2", o2);
        aig
    }

    #[test]
    fn baseline_sweep_preserves_function_and_reduces() {
        let aig = redundant_circuit();
        let result = sweep_fraig(&aig, &SweepConfig::baseline());
        assert!(result.aig.num_ands() < aig.num_ands());
        assert!(check_equivalence(&aig, &result.aig, 100_000).equivalent);
    }

    #[test]
    fn baseline_and_stp_agree_on_final_size() {
        let aig = redundant_circuit();
        let baseline = sweep_fraig(&aig, &SweepConfig::baseline());
        let stp = sweep_stp(&aig, &SweepConfig::default());
        // Both engines prove the same merges on this small circuit; only the
        // effort spent differs (cf. the "Result" column of Table II).
        assert_eq!(baseline.aig.num_ands(), stp.aig.num_ands());
    }

    #[test]
    fn stp_needs_no_more_sat_calls_than_baseline() {
        let aig = redundant_circuit();
        let baseline = sweep_fraig(&aig, &SweepConfig::baseline());
        let stp = sweep_stp(&aig, &SweepConfig::default());
        assert!(
            stp.report.sat_calls_sat <= baseline.report.sat_calls_sat,
            "STP sweeping should not need more satisfiable SAT calls ({} vs {})",
            stp.report.sat_calls_sat,
            baseline.report.sat_calls_sat
        );
    }

    #[test]
    fn baseline_ignores_stp_only_flags() {
        let aig = redundant_circuit();
        let config = SweepConfig {
            sat_guided_patterns: true,
            window_refinement: true,
            ..SweepConfig::baseline()
        };
        let result = sweep_fraig(&aig, &config);
        assert_eq!(result.report.proved_by_simulation, 0);
        assert_eq!(result.report.disproved_by_simulation, 0);
    }
}
