//! Configuration and reporting types shared by both sweepers.

use crate::error::SweepError;
use netlist::Aig;
use std::fmt;
use std::time::Duration;

/// How the engine selects which pending candidates to prove speculatively
/// in one SAT batch (see the `crate::prover` module docs for the commit
/// protocol that makes every policy commit identical results).
///
/// The policy only decides how far the batch former extends the canonical
/// prefix of pending candidates — it can never change which SAT calls,
/// counter-examples or merges are *committed*, only how much speculative
/// work is wasted ([`SweepReport::sat_parallel_conflicts`]) and how large
/// committed batches get ([`SweepReport::sat_batch_committed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// The PR 4 prior: extend the batch while the candidate's proof cone
    /// (candidate plus drivers, measured by primary-input support) is
    /// disjoint from everything already in the batch.  Safe but near-serial
    /// on arithmetic circuits, where all candidates share most inputs.
    SupportDisjoint,
    /// The learned policy (the default): extend the batch while the
    /// candidate's class and every class already in the batch have never
    /// been split by the same committed counter-example — falling back to
    /// support-disjointness while a pair lacks observations (see
    /// [`bitsim::CoSplitTable`]).  Classes that refine independently batch
    /// together even when their supports overlap.
    #[default]
    RefinementAware,
}

/// Configuration of a SAT-sweeping run.
///
/// The defaults correspond to the setting of the paper's evaluation: a TFI /
/// driver budget of 1000 (Algorithm 2, line 1), exhaustive simulation
/// windows of fewer than 16 leaves, and a finite conflict budget per SAT
/// query so that hard queries come back as `unDET`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Number of initial simulation patterns.
    pub num_initial_patterns: usize,
    /// Conflict budget per SAT query (`unDET` when exhausted).
    pub conflict_limit: u64,
    /// Maximum number of candidate drivers examined per candidate node
    /// (the paper's TFI limit `n = 1000`).
    pub tfi_limit: usize,
    /// Maximum number of leaves of an exhaustive simulation window
    /// (the paper restricts windows to fewer than 16 leaves).
    pub window_limit: usize,
    /// Seed of the pseudo-random pattern generator.
    pub seed: u64,
    /// Generate the initial patterns with SAT guidance (two-round scheme of
    /// Section IV-A) instead of purely at random.
    pub sat_guided_patterns: bool,
    /// Detect and substitute constant nodes before pairwise merging.
    pub constant_substitution: bool,
    /// Refine candidate equivalence classes by exhaustive STP window
    /// simulation before calling the SAT solver.
    pub window_refinement: bool,
    /// Number of worker threads for level-scheduled parallel simulation
    /// (see [`bitsim::AigSimulator::run_parallel`]).  The default of 1 is
    /// the fully sequential behaviour; any value yields bit-identical
    /// signatures and identical sweep results.
    pub num_threads: usize,
    /// Number of worker threads for parallel SAT proving (see
    /// [`crate::prover::ParallelProver`]).  The default of 1 proves each
    /// batch on the calling thread; any value commits the same SAT calls,
    /// counter-examples and merges in the same order.
    pub sat_parallelism: usize,
    /// Emit a [`crate::SweepCheckpoint`] through
    /// [`crate::Observer::on_checkpoint`] every this many committed
    /// candidates (settled merge candidates plus processed constant
    /// candidates).  `0` (the default) disables periodic checkpoints; a
    /// budget-stopped run still carries a final checkpoint inside
    /// [`crate::SweepError::BudgetExhausted`] either way.  Checkpoints never
    /// change the sweep result.
    pub checkpoint_interval: usize,
    /// Reset each [`crate::prover::ParallelProver`] pool solver after it has
    /// served this many *committed* SAT queries, bounding clause
    /// accumulation on very long runs.  Keyed on the committed query count,
    /// the resets happen at identical points for every `sat_parallelism` and
    /// `num_threads`, so determinism is preserved.  `0` (the default)
    /// disables resets — a reset discards learnt clauses, so runs with
    /// different intervals may commit different (equally correct) sweeps.
    pub solver_reset_interval: u64,
    /// Compact the pattern set every this many counter-examples: drop dead
    /// pattern columns that no surviving candidate class (nor any candidate
    /// node vs. constant zero) disagrees on, bounding the pattern-word
    /// footprint of long runs.  Compaction never changes the sweep — the
    /// engines refine classes from counter-example assignments, not from
    /// stored patterns — so SAT calls, merges and the result network are
    /// identical with or without it.  `0` (the default) disables compaction.
    pub compact_every: u64,
    /// Emit a [`crate::SweepCheckpoint`] whenever this many *milliseconds* of
    /// wall-clock time have elapsed since the last one was emitted, checked
    /// at the same candidate boundaries as [`SweepConfig::checkpoint_interval`]
    /// (the two cadences compose with OR).  Wall-clock cadence is what a
    /// sweep service wants: a slice can be suspended or a crash survived
    /// after a bounded amount of *time*, independent of how fast candidates
    /// commit.  Checkpoints never change the sweep result, so runs with any
    /// cadence still produce byte-identical output.  `0` (the default)
    /// disables the timer.  Set through [`SweepConfig::checkpoint_every_secs`],
    /// which stores whole milliseconds to keep the config `Copy + Eq`.
    pub checkpoint_interval_millis: u64,
    /// Induction depth `k` of the sequential sweep.  `0` (the default) runs
    /// the purely combinational sweep, ignoring any latch table; a nonzero
    /// value switches [`crate::Sweeper::run`] to the sequential engine:
    /// ternary (X-valued) fixpoint simulation from the initial state, latch
    /// correspondence candidates refined by multi-frame binary simulation,
    /// and each surviving candidate proved by `k`-step induction (base case
    /// unrolled from the initial state, inductive step from a free state).
    /// Set through [`SweepConfig::sequential`] or
    /// [`SweepConfig::with_seq_depth`]; capped at [`MAX_SEQ_DEPTH`] by
    /// [`SweepConfig::validate`].
    pub seq_depth: usize,
    /// The speculative batch-formation policy (see [`BatchPolicy`]).
    /// Either policy commits byte-identical results; they differ only in
    /// how much SAT parallelism a batch exposes.
    pub batch_policy: BatchPolicy,
    /// Number of shards the solver-slot space is partitioned into for
    /// proving (see [`crate::prover::ParallelProver::prove_batch_sharded`]).
    /// `0` (the default) disables sharding and proves batches with
    /// [`SweepConfig::sat_parallelism`] work-stealing workers; `k ≥ 1`
    /// assigns each of the `k` contiguous slot ranges to one isolated
    /// sub-worker.  Every value commits byte-identical results; sharding
    /// exists as the in-process rehearsal for distributing slot ranges
    /// across processes (the checkpoint codec carries the shard config as
    /// the wire format).  Capped at [`crate::prover::MAX_BATCH`] by
    /// [`SweepConfig::validate`].
    pub shards: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            num_initial_patterns: 256,
            conflict_limit: 20_000,
            tfi_limit: 1000,
            window_limit: 8,
            seed: 0xC0FFEE,
            sat_guided_patterns: true,
            constant_substitution: true,
            window_refinement: true,
            num_threads: 1,
            sat_parallelism: 1,
            checkpoint_interval: 0,
            solver_reset_interval: 0,
            compact_every: 0,
            checkpoint_interval_millis: 0,
            seq_depth: 0,
            batch_policy: BatchPolicy::RefinementAware,
            shards: 0,
        }
    }
}

/// The largest window (number of leaves) the paper's exhaustive STP window
/// simulation supports: Section III-B restricts windows to at most 16 leaves.
pub const MAX_WINDOW_LIMIT: usize = 16;

/// The largest induction depth [`SweepConfig::validate`] accepts.  Each unit
/// of depth unrolls another time frame into every base-case and inductive
/// SAT query, so the cost grows linearly in `k` per query; depths beyond
/// this bound are virtually always a configuration mistake.
pub const MAX_SEQ_DEPTH: usize = 64;

impl SweepConfig {
    /// The configuration used by the baseline FRAIG-style sweeper: random
    /// patterns, no constant substitution pass, no window refinement.
    pub fn baseline() -> Self {
        SweepConfig {
            sat_guided_patterns: false,
            constant_substitution: false,
            window_refinement: false,
            ..SweepConfig::default()
        }
    }

    /// The exact setting of the paper's evaluation (alias of
    /// [`SweepConfig::default`]): 256 SAT-guided patterns, a TFI budget of
    /// 1000, windows of at most 8 leaves, all of Algorithm 2's features on.
    pub fn paper() -> Self {
        SweepConfig::default()
    }

    /// A cheap setting for interactive use and smoke tests: fewer patterns,
    /// a small conflict budget, purely random patterns (SAT-guided pattern
    /// generation itself costs SAT queries), small windows.
    pub fn fast() -> Self {
        SweepConfig {
            num_initial_patterns: 64,
            conflict_limit: 2_000,
            tfi_limit: 100,
            window_limit: 6,
            sat_guided_patterns: false,
            ..SweepConfig::default()
        }
    }

    /// A high-effort setting: more initial patterns, a generous conflict
    /// budget and a deep driver search, for runs where quality matters more
    /// than latency.
    pub fn thorough() -> Self {
        SweepConfig {
            num_initial_patterns: 1024,
            conflict_limit: 100_000,
            tfi_limit: 10_000,
            window_limit: 12,
            ..SweepConfig::default()
        }
    }

    /// The sequential-sweeping setting: the default combinational
    /// configuration plus an induction depth of `k` (see
    /// [`SweepConfig::seq_depth`]).  `k = 1` is classic signal
    /// correspondence (simple induction); larger depths prove equivalences
    /// that need more history.
    pub fn sequential(k: usize) -> Self {
        SweepConfig::default().with_seq_depth(k)
    }

    /// Sets the induction depth of the sequential sweep
    /// (see [`SweepConfig::seq_depth`]; `0` = combinational).
    pub fn with_seq_depth(mut self, k: usize) -> Self {
        self.seq_depth = k;
        self
    }

    /// Sets the number of initial simulation patterns.
    pub fn with_patterns(mut self, num: usize) -> Self {
        self.num_initial_patterns = num;
        self
    }

    /// Sets the conflict budget per SAT query.
    pub fn with_conflict_limit(mut self, limit: u64) -> Self {
        self.conflict_limit = limit;
        self
    }

    /// Sets the maximum number of candidate drivers examined per node.
    pub fn with_tfi_limit(mut self, limit: usize) -> Self {
        self.tfi_limit = limit;
        self
    }

    /// Sets the maximum number of leaves of an exhaustive simulation window.
    pub fn with_window_limit(mut self, limit: usize) -> Self {
        self.window_limit = limit;
        self
    }

    /// Sets the seed of the pseudo-random pattern generator.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads for parallel simulation.
    ///
    /// Parallel runs are deterministic: signatures are bit-identical and the
    /// sweep result is the same for every thread count.  `1` (the default)
    /// is fully sequential; `0` is rejected by [`SweepConfig::validate`].
    pub fn parallelism(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Sets the number of worker threads for parallel SAT proving.
    ///
    /// The engine partitions the candidate queue into TFI-disjoint batches
    /// and proves each batch on up to `sat_parallelism` workers; results are
    /// committed at a deterministic barrier in canonical candidate order, so
    /// SAT calls, counter-examples and merges are identical for every value.
    /// `1` (the default) proves batches on the calling thread; `0` is
    /// rejected by [`SweepConfig::validate`].
    pub fn sat_parallelism(mut self, sat_parallelism: usize) -> Self {
        self.sat_parallelism = sat_parallelism;
        self
    }

    /// Sets the periodic checkpoint cadence in committed candidates
    /// (see [`SweepConfig::checkpoint_interval`]; `0` disables).
    pub fn checkpoint_every(mut self, candidates: usize) -> Self {
        self.checkpoint_interval = candidates;
        self
    }

    /// Sets the periodic checkpoint cadence in wall-clock seconds (see
    /// [`SweepConfig::checkpoint_interval_millis`]; `0.0` disables).
    ///
    /// Fractional seconds work down to a millisecond (`0.05` → 50 ms);
    /// positive values below one millisecond round up to 1 ms.  Negative,
    /// NaN or infinite values are recorded as invalid and rejected by
    /// [`SweepConfig::validate`] — the builder itself stays infallible so
    /// setters keep chaining.
    pub fn checkpoint_every_secs(mut self, secs: f64) -> Self {
        self.checkpoint_interval_millis = if secs == 0.0 {
            0
        } else if secs.is_finite() && secs > 0.0 {
            ((secs * 1000.0).ceil() as u64).max(1)
        } else {
            u64::MAX // sentinel: rejected by validate()
        };
        self
    }

    /// Sets the per-slot solver hygiene interval in committed SAT queries
    /// (see [`SweepConfig::solver_reset_interval`]; `0` disables).
    pub fn with_solver_reset_interval(mut self, queries: u64) -> Self {
        self.solver_reset_interval = queries;
        self
    }

    /// Sets the pattern compaction cadence in counter-examples
    /// (see [`SweepConfig::compact_every`]; `0` disables).
    pub fn compact_every(mut self, counterexamples: u64) -> Self {
        self.compact_every = counterexamples;
        self
    }

    /// Sets the speculative batch-formation policy (see [`BatchPolicy`]).
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.batch_policy = policy;
        self
    }

    /// Sets the number of proving shards (see [`SweepConfig::shards`];
    /// `0` disables sharding).  Every shard count commits byte-identical
    /// results.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Checks the configuration for values the engines cannot work with.
    ///
    /// Invalid values used to be clamped or to silently misbehave; the
    /// builder API rejects them up front with
    /// [`SweepError::InvalidConfig`]:
    ///
    /// * `num_initial_patterns` must be nonzero (candidate classes are built
    ///   from initial signatures);
    /// * `conflict_limit` must be nonzero (a zero budget turns every SAT
    ///   query into `unDET` and marks every candidate don't-touch);
    /// * `window_limit` must be at most [`MAX_WINDOW_LIMIT`] (the paper
    ///   restricts exhaustive windows to at most 16 leaves);
    /// * `num_threads` must be nonzero (1 = sequential);
    /// * [`SweepConfig::checkpoint_every_secs`] must have been given a
    ///   finite, non-negative duration;
    /// * `shards` must be at most [`crate::prover::MAX_BATCH`] (one shard
    ///   needs at least one solver slot).
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.num_initial_patterns == 0 {
            return Err(SweepError::InvalidConfig(
                "num_initial_patterns must be nonzero".into(),
            ));
        }
        if self.num_threads == 0 {
            return Err(SweepError::InvalidConfig(
                "num_threads must be nonzero (1 = sequential)".into(),
            ));
        }
        if self.sat_parallelism == 0 {
            return Err(SweepError::InvalidConfig(
                "sat_parallelism must be nonzero (1 = sequential proving)".into(),
            ));
        }
        if self.conflict_limit == 0 {
            return Err(SweepError::InvalidConfig(
                "conflict_limit must be nonzero".into(),
            ));
        }
        if self.window_limit > MAX_WINDOW_LIMIT {
            return Err(SweepError::InvalidConfig(format!(
                "window_limit {} exceeds the paper's maximum of {MAX_WINDOW_LIMIT} leaves",
                self.window_limit
            )));
        }
        if self.checkpoint_interval_millis == u64::MAX {
            return Err(SweepError::InvalidConfig(
                "checkpoint_every_secs must be a finite, non-negative duration".into(),
            ));
        }
        if self.seq_depth > MAX_SEQ_DEPTH {
            return Err(SweepError::InvalidConfig(format!(
                "seq_depth {} exceeds the maximum induction depth of {MAX_SEQ_DEPTH}",
                self.seq_depth
            )));
        }
        if self.shards > crate::prover::MAX_BATCH {
            return Err(SweepError::InvalidConfig(format!(
                "shards {} exceeds the solver pool of {} slots",
                self.shards,
                crate::prover::MAX_BATCH
            )));
        }
        Ok(())
    }
}

/// Measurements of one sweeping run — the columns of Table II.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepReport {
    /// AND gates before sweeping.
    pub gates_before: usize,
    /// AND gates after sweeping and cleanup.
    pub gates_after: usize,
    /// Logic levels of the original network.
    pub levels: usize,
    /// Number of proved node merges.
    pub merges: usize,
    /// Number of nodes substituted by constants.
    pub constants: usize,
    /// Satisfiable SAT calls (each produced a counter-example).
    pub sat_calls_sat: u64,
    /// Unsatisfiable SAT calls (each proved a merge or constant).
    pub sat_calls_unsat: u64,
    /// SAT calls that exhausted their conflict budget.
    pub sat_calls_undet: u64,
    /// Total SAT calls.
    pub sat_calls_total: u64,
    /// Candidate pairs disproved by simulation alone (no SAT call needed).
    pub disproved_by_simulation: u64,
    /// Candidate pairs proved by exhaustive window simulation alone.
    pub proved_by_simulation: u64,
    /// Incremental resimulation events (one per counter-example).
    pub resim_events: u64,
    /// AND nodes evaluated by incremental resimulation, summed over events.
    pub resim_nodes: u64,
    /// AND nodes incremental resimulation skipped, summed over events — the
    /// extra work a `simulate_all`-per-counter-example strategy would have
    /// done.
    pub resim_skipped_nodes: u64,
    /// Worker threads used for parallel simulation (1 = sequential; for
    /// merged multi-pass reports, the maximum over the passes).
    pub num_threads: usize,
    /// Worker threads used for parallel SAT proving (1 = sequential; for
    /// merged multi-pass reports, the maximum over the passes).
    pub sat_parallelism: usize,
    /// SAT-proving batches committed (each batch is one barrier of the
    /// parallel prover; identical for every `sat_parallelism`).
    pub sat_batches: u64,
    /// Speculative proof results accepted at commit barriers, summed over
    /// batches.  `sat_batch_committed / sat_batches` is the mean committed
    /// batch size — the utilisation measure refinement-aware batching
    /// optimises (see [`SweepConfig::batch_policy`]).  Identical for every
    /// `sat_parallelism` and shard count.
    pub sat_batch_committed: u64,
    /// Speculative SAT calls discarded at the commit barrier because an
    /// earlier commit in the same batch invalidated them.  These are *not*
    /// part of [`SweepReport::sat_calls_total`]; they measure wasted
    /// parallel work, and are identical for every `sat_parallelism`.
    pub sat_parallel_conflicts: u64,
    /// Dead pattern columns dropped by periodic pattern compaction (see
    /// [`SweepConfig::compact_every`]), summed over compactions.  Identical
    /// for every thread count; `0` when compaction is disabled.
    pub patterns_dropped: u64,
    /// Work-stealing chunk claims beyond each worker's first, summed over
    /// parallel level evaluations.  Purely diagnostic: the steal *schedule*
    /// is timing-dependent, but the produced signatures are bit-identical
    /// regardless, so this counter is excluded from determinism-gated
    /// output.  `0` for sequential runs.
    pub steal_events: u64,
    /// Latches of the input network (sequential sweeps only; `0` for
    /// combinational runs, kept from the first pass when merging).
    pub seq_latches_before: usize,
    /// Latches surviving the sequential sweep (mirrors
    /// [`SweepReport::gates_after`]: the later pass wins when merging).
    pub seq_latches_after: usize,
    /// Latch-correspondence candidates the sequential engine submitted to
    /// `k`-step induction after ternary and multi-frame binary refinement.
    pub seq_candidates: u64,
    /// Latches proved stuck at a definite value by the ternary fixpoint
    /// alone and substituted by constants without any SAT call.
    pub seq_ternary_constants: u64,
    /// Sequential candidates refuted by a satisfiable base case (a real
    /// counter-example trace from the initial state).
    pub seq_induction_refuted: u64,
    /// Sequential candidates left unmerged because the inductive step was
    /// satisfiable or a query exhausted its conflict budget — `k`-step
    /// induction is incomplete, so these are "unknown", not refuted.
    pub seq_induction_undet: u64,
    /// Iterations the ternary fixpoint took to converge (at most
    /// latches + 1; `0` for combinational runs).
    pub ternary_iterations: u64,
    /// Time spent simulating (initial + counter-example simulation).
    pub simulation_time: Duration,
    /// Aggregate time spent inside SAT solvers, summed over the prover's
    /// workers.  Conflict-discarded speculative queries are included;
    /// queries abandoned when a budget stop drops the rest of a batch are
    /// not.  With `sat_parallelism > 1` queries overlap in wall-clock, so
    /// this can exceed [`SweepReport::total_time`] — read it as solver CPU
    /// time, not as a fraction of the run.
    pub sat_time: Duration,
    /// End-to-end runtime of the sweep.
    pub total_time: Duration,
}

impl SweepReport {
    /// Fraction of gates removed by the sweep.
    pub fn reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            1.0 - self.gates_after as f64 / self.gates_before as f64
        }
    }

    /// Folds the report of a later pass into this one.
    ///
    /// Counters and times are summed; `gates_before` and `levels` keep
    /// describing the network this report started from while `gates_after`
    /// is taken from the later pass.  This is the accumulation used by
    /// [`crate::Pipeline`] and the fixpoint wrapper.
    pub fn merge(&mut self, later: &SweepReport) {
        self.gates_after = later.gates_after;
        self.merges += later.merges;
        self.constants += later.constants;
        self.sat_calls_sat += later.sat_calls_sat;
        self.sat_calls_unsat += later.sat_calls_unsat;
        self.sat_calls_undet += later.sat_calls_undet;
        self.sat_calls_total += later.sat_calls_total;
        self.disproved_by_simulation += later.disproved_by_simulation;
        self.proved_by_simulation += later.proved_by_simulation;
        self.resim_events += later.resim_events;
        self.resim_nodes += later.resim_nodes;
        self.resim_skipped_nodes += later.resim_skipped_nodes;
        self.num_threads = self.num_threads.max(later.num_threads);
        self.sat_parallelism = self.sat_parallelism.max(later.sat_parallelism);
        self.sat_batches += later.sat_batches;
        self.sat_batch_committed += later.sat_batch_committed;
        self.sat_parallel_conflicts += later.sat_parallel_conflicts;
        self.patterns_dropped += later.patterns_dropped;
        self.steal_events += later.steal_events;
        self.seq_latches_after = later.seq_latches_after;
        self.seq_candidates += later.seq_candidates;
        self.seq_ternary_constants += later.seq_ternary_constants;
        self.seq_induction_refuted += later.seq_induction_refuted;
        self.seq_induction_undet += later.seq_induction_undet;
        self.ternary_iterations += later.ternary_iterations;
        self.simulation_time += later.simulation_time;
        self.sat_time += later.sat_time;
        self.total_time += later.total_time;
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gates {} -> {} ({} merges, {} constants), SAT {}/{} sat/total ({} undet), sim {:.3}s, total {:.3}s",
            self.gates_before,
            self.gates_after,
            self.merges,
            self.constants,
            self.sat_calls_sat,
            self.sat_calls_total,
            self.sat_calls_undet,
            self.simulation_time.as_secs_f64(),
            self.total_time.as_secs_f64()
        )
    }
}

/// The outcome of a sweeping run: the optimised network plus measurements.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept (functionally equivalent, smaller or equal) network.
    pub aig: Aig,
    /// Measurements of the run.
    pub report: SweepReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_paper_features() {
        let c = SweepConfig::default();
        assert!(c.sat_guided_patterns);
        assert!(c.constant_substitution);
        assert!(c.window_refinement);
        assert_eq!(c.tfi_limit, 1000);
        assert!(c.window_limit < 16);
    }

    #[test]
    fn baseline_config_disables_paper_features() {
        let c = SweepConfig::baseline();
        assert!(!c.sat_guided_patterns);
        assert!(!c.constant_substitution);
        assert!(!c.window_refinement);
    }

    #[test]
    fn presets_are_valid_and_ordered_by_effort() {
        for config in [
            SweepConfig::paper(),
            SweepConfig::fast(),
            SweepConfig::thorough(),
            SweepConfig::baseline(),
        ] {
            config.validate().expect("presets validate");
        }
        assert!(
            SweepConfig::fast().num_initial_patterns < SweepConfig::paper().num_initial_patterns
        );
        assert!(
            SweepConfig::paper().num_initial_patterns
                < SweepConfig::thorough().num_initial_patterns
        );
        assert_eq!(SweepConfig::paper(), SweepConfig::default());
    }

    #[test]
    fn chainable_setters_apply() {
        let config = SweepConfig::fast()
            .with_patterns(99)
            .with_conflict_limit(7)
            .with_tfi_limit(3)
            .with_window_limit(5)
            .with_seed(42)
            .parallelism(4)
            .sat_parallelism(3)
            .checkpoint_every(50)
            .checkpoint_every_secs(1.5)
            .with_solver_reset_interval(128)
            .compact_every(200)
            .with_seq_depth(2)
            .batch_policy(BatchPolicy::SupportDisjoint)
            .shards(2);
        assert_eq!(config.num_initial_patterns, 99);
        assert_eq!(config.conflict_limit, 7);
        assert_eq!(config.tfi_limit, 3);
        assert_eq!(config.window_limit, 5);
        assert_eq!(config.seed, 42);
        assert_eq!(config.num_threads, 4);
        assert_eq!(config.sat_parallelism, 3);
        assert_eq!(config.checkpoint_interval, 50);
        assert_eq!(config.checkpoint_interval_millis, 1500);
        assert_eq!(config.solver_reset_interval, 128);
        assert_eq!(config.compact_every, 200);
        assert_eq!(config.seq_depth, 2);
        assert_eq!(config.batch_policy, BatchPolicy::SupportDisjoint);
        assert_eq!(config.shards, 2);
    }

    #[test]
    fn sequential_preset_sets_only_the_depth() {
        let config = SweepConfig::sequential(3);
        assert_eq!(config.seq_depth, 3);
        assert_eq!(
            SweepConfig {
                seq_depth: 0,
                ..config
            },
            SweepConfig::default(),
            "everything else stays at the paper defaults"
        );
        config.validate().expect("the preset validates");
    }

    #[test]
    fn checkpoint_every_secs_maps_to_whole_milliseconds() {
        assert_eq!(
            SweepConfig::default()
                .checkpoint_every_secs(0.0)
                .checkpoint_interval_millis,
            0,
            "0.0 disables the timer"
        );
        assert_eq!(
            SweepConfig::default()
                .checkpoint_every_secs(0.05)
                .checkpoint_interval_millis,
            50
        );
        assert_eq!(
            SweepConfig::default()
                .checkpoint_every_secs(1e-9)
                .checkpoint_interval_millis,
            1,
            "sub-millisecond durations round up"
        );
        assert_eq!(
            SweepConfig::default()
                .checkpoint_every_secs(2.0)
                .checkpoint_interval_millis,
            2000
        );
    }

    #[test]
    fn presets_default_to_sequential() {
        for config in [
            SweepConfig::paper(),
            SweepConfig::fast(),
            SweepConfig::thorough(),
            SweepConfig::baseline(),
        ] {
            assert_eq!(config.num_threads, 1, "parallelism is opt-in");
            assert_eq!(config.sat_parallelism, 1, "SAT parallelism is opt-in");
            assert_eq!(config.checkpoint_interval, 0, "checkpoints are opt-in");
            assert_eq!(
                config.checkpoint_interval_millis, 0,
                "wall-clock checkpoints are opt-in"
            );
            assert_eq!(config.solver_reset_interval, 0, "resets are opt-in");
            assert_eq!(config.compact_every, 0, "compaction is opt-in");
            assert_eq!(config.seq_depth, 0, "sequential sweeping is opt-in");
            assert_eq!(
                config.batch_policy,
                BatchPolicy::RefinementAware,
                "the learned batch former is the default"
            );
            assert_eq!(config.shards, 0, "sharding is opt-in");
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(SweepConfig::default().with_patterns(0).validate().is_err());
        assert!(SweepConfig::default().parallelism(0).validate().is_err());
        assert!(SweepConfig::default().parallelism(8).validate().is_ok());
        assert!(SweepConfig::default()
            .sat_parallelism(0)
            .validate()
            .is_err());
        assert!(SweepConfig::default().sat_parallelism(8).validate().is_ok());
        assert!(SweepConfig::default()
            .with_conflict_limit(0)
            .validate()
            .is_err());
        assert!(SweepConfig::default()
            .with_window_limit(MAX_WINDOW_LIMIT + 1)
            .validate()
            .is_err());
        // The boundary value itself is allowed (the ablation sweeps it).
        assert!(SweepConfig::default()
            .with_window_limit(MAX_WINDOW_LIMIT)
            .validate()
            .is_ok());
        // Degenerate wall-clock cadences are recorded as a sentinel and
        // rejected here, not at the (infallible) builder.
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                SweepConfig::default()
                    .checkpoint_every_secs(bad)
                    .validate()
                    .is_err(),
                "{bad} must be rejected"
            );
        }
        assert!(SweepConfig::default()
            .checkpoint_every_secs(0.25)
            .validate()
            .is_ok());
        assert!(SweepConfig::sequential(MAX_SEQ_DEPTH + 1)
            .validate()
            .is_err());
        assert!(SweepConfig::sequential(MAX_SEQ_DEPTH).validate().is_ok());
        assert!(SweepConfig::default()
            .shards(crate::prover::MAX_BATCH + 1)
            .validate()
            .is_err());
        assert!(SweepConfig::default()
            .shards(crate::prover::MAX_BATCH)
            .validate()
            .is_ok());
    }

    #[test]
    fn merge_accumulates_counts_and_keeps_origin() {
        let mut first = SweepReport {
            gates_before: 100,
            gates_after: 80,
            levels: 9,
            merges: 5,
            sat_calls_sat: 2,
            sat_calls_total: 4,
            seq_latches_before: 7,
            seq_latches_after: 6,
            seq_candidates: 2,
            simulation_time: Duration::from_millis(10),
            ..SweepReport::default()
        };
        let second = SweepReport {
            gates_before: 80,
            gates_after: 70,
            levels: 8,
            merges: 3,
            constants: 1,
            sat_calls_sat: 1,
            sat_calls_total: 2,
            resim_events: 2,
            resim_nodes: 30,
            resim_skipped_nodes: 130,
            num_threads: 4,
            sat_parallelism: 2,
            sat_batches: 3,
            sat_batch_committed: 5,
            sat_parallel_conflicts: 1,
            patterns_dropped: 40,
            steal_events: 6,
            seq_latches_after: 3,
            seq_candidates: 4,
            seq_ternary_constants: 1,
            seq_induction_refuted: 2,
            seq_induction_undet: 1,
            ternary_iterations: 5,
            simulation_time: Duration::from_millis(5),
            ..SweepReport::default()
        };
        first.merge(&second);
        assert_eq!(first.gates_before, 100);
        assert_eq!(first.levels, 9);
        assert_eq!(first.gates_after, 70);
        assert_eq!(first.merges, 8);
        assert_eq!(first.constants, 1);
        assert_eq!(first.sat_calls_sat, 3);
        assert_eq!(first.sat_calls_total, 6);
        assert_eq!(first.resim_events, 2);
        assert_eq!(first.resim_nodes, 30);
        assert_eq!(first.resim_skipped_nodes, 130);
        assert_eq!(first.num_threads, 4, "merge keeps the maximum");
        assert_eq!(first.sat_parallelism, 2, "merge keeps the maximum");
        assert_eq!(first.sat_batches, 3);
        assert_eq!(first.sat_batch_committed, 5);
        assert_eq!(first.sat_parallel_conflicts, 1);
        assert_eq!(first.patterns_dropped, 40);
        assert_eq!(first.steal_events, 6);
        assert_eq!(first.seq_latches_before, 7, "merge keeps the origin");
        assert_eq!(first.seq_latches_after, 3, "the later pass wins");
        assert_eq!(first.seq_candidates, 6);
        assert_eq!(first.seq_ternary_constants, 1);
        assert_eq!(first.seq_induction_refuted, 2);
        assert_eq!(first.seq_induction_undet, 1);
        assert_eq!(first.ternary_iterations, 5);
        assert_eq!(first.simulation_time, Duration::from_millis(15));
    }

    #[test]
    fn merge_is_associative() {
        // The pipeline folds pass reports left to right, but the fixpoint
        // wrapper pre-merges its inner iterations before handing the result
        // up.  Both bracketings must agree, which holds because every field
        // policy (sum, max, last-writer, keep-first) is associative.
        let a = SweepReport {
            gates_before: 100,
            gates_after: 80,
            levels: 9,
            merges: 5,
            sat_calls_sat: 2,
            sat_calls_total: 4,
            num_threads: 2,
            simulation_time: Duration::from_millis(10),
            ..SweepReport::default()
        };
        let b = SweepReport {
            gates_before: 80,
            gates_after: 70,
            levels: 8,
            merges: 3,
            constants: 1,
            sat_calls_unsat: 4,
            sat_calls_total: 5,
            num_threads: 4,
            sat_parallelism: 2,
            sat_batches: 3,
            seq_latches_after: 5,
            seq_candidates: 3,
            ternary_iterations: 2,
            sat_time: Duration::from_millis(7),
            ..SweepReport::default()
        };
        let c = SweepReport {
            gates_before: 70,
            gates_after: 61,
            levels: 7,
            merges: 2,
            sat_calls_undet: 1,
            sat_calls_total: 1,
            sat_parallelism: 3,
            patterns_dropped: 12,
            steal_events: 6,
            seq_latches_after: 4,
            seq_induction_undet: 1,
            total_time: Duration::from_millis(20),
            ..SweepReport::default()
        };

        let left = {
            let mut folded = a;
            folded.merge(&b);
            folded.merge(&c);
            folded
        };
        let right = {
            let mut later = b;
            later.merge(&c);
            let mut folded = a;
            folded.merge(&later);
            folded
        };
        assert_eq!(left, right, "merge bracketing must not matter");
        assert_eq!(left.gates_before, 100);
        assert_eq!(left.gates_after, 61);
        assert_eq!(left.sat_calls_total, 10);
    }

    #[test]
    fn report_reduction() {
        let report = SweepReport {
            gates_before: 100,
            gates_after: 80,
            ..SweepReport::default()
        };
        assert!((report.reduction() - 0.2).abs() < 1e-9);
        assert_eq!(SweepReport::default().reduction(), 0.0);
        assert!(report.to_string().contains("100 -> 80"));
    }
}
