//! Configuration and reporting types shared by both sweepers.

use netlist::Aig;
use std::fmt;
use std::time::Duration;

/// Configuration of a SAT-sweeping run.
///
/// The defaults correspond to the setting of the paper's evaluation: a TFI /
/// driver budget of 1000 (Algorithm 2, line 1), exhaustive simulation
/// windows of fewer than 16 leaves, and a finite conflict budget per SAT
/// query so that hard queries come back as `unDET`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Number of initial simulation patterns.
    pub num_initial_patterns: usize,
    /// Conflict budget per SAT query (`unDET` when exhausted).
    pub conflict_limit: u64,
    /// Maximum number of candidate drivers examined per candidate node
    /// (the paper's TFI limit `n = 1000`).
    pub tfi_limit: usize,
    /// Maximum number of leaves of an exhaustive simulation window
    /// (the paper restricts windows to fewer than 16 leaves).
    pub window_limit: usize,
    /// Seed of the pseudo-random pattern generator.
    pub seed: u64,
    /// Generate the initial patterns with SAT guidance (two-round scheme of
    /// Section IV-A) instead of purely at random.
    pub sat_guided_patterns: bool,
    /// Detect and substitute constant nodes before pairwise merging.
    pub constant_substitution: bool,
    /// Refine candidate equivalence classes by exhaustive STP window
    /// simulation before calling the SAT solver.
    pub window_refinement: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            num_initial_patterns: 256,
            conflict_limit: 20_000,
            tfi_limit: 1000,
            window_limit: 8,
            seed: 0xC0FFEE,
            sat_guided_patterns: true,
            constant_substitution: true,
            window_refinement: true,
        }
    }
}

impl SweepConfig {
    /// The configuration used by the baseline FRAIG-style sweeper: random
    /// patterns, no constant substitution pass, no window refinement.
    pub fn baseline() -> Self {
        SweepConfig {
            sat_guided_patterns: false,
            constant_substitution: false,
            window_refinement: false,
            ..SweepConfig::default()
        }
    }
}

/// Measurements of one sweeping run — the columns of Table II.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepReport {
    /// AND gates before sweeping.
    pub gates_before: usize,
    /// AND gates after sweeping and cleanup.
    pub gates_after: usize,
    /// Logic levels of the original network.
    pub levels: usize,
    /// Number of proved node merges.
    pub merges: usize,
    /// Number of nodes substituted by constants.
    pub constants: usize,
    /// Satisfiable SAT calls (each produced a counter-example).
    pub sat_calls_sat: u64,
    /// Unsatisfiable SAT calls (each proved a merge or constant).
    pub sat_calls_unsat: u64,
    /// SAT calls that exhausted their conflict budget.
    pub sat_calls_undet: u64,
    /// Total SAT calls.
    pub sat_calls_total: u64,
    /// Candidate pairs disproved by simulation alone (no SAT call needed).
    pub disproved_by_simulation: u64,
    /// Candidate pairs proved by exhaustive window simulation alone.
    pub proved_by_simulation: u64,
    /// Time spent simulating (initial + counter-example simulation).
    pub simulation_time: Duration,
    /// Time spent inside the SAT solver.
    pub sat_time: Duration,
    /// End-to-end runtime of the sweep.
    pub total_time: Duration,
}

impl SweepReport {
    /// Fraction of gates removed by the sweep.
    pub fn reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            1.0 - self.gates_after as f64 / self.gates_before as f64
        }
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gates {} -> {} ({} merges, {} constants), SAT {}/{} sat/total ({} undet), sim {:.3}s, total {:.3}s",
            self.gates_before,
            self.gates_after,
            self.merges,
            self.constants,
            self.sat_calls_sat,
            self.sat_calls_total,
            self.sat_calls_undet,
            self.simulation_time.as_secs_f64(),
            self.total_time.as_secs_f64()
        )
    }
}

/// The outcome of a sweeping run: the optimised network plus measurements.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept (functionally equivalent, smaller or equal) network.
    pub aig: Aig,
    /// Measurements of the run.
    pub report: SweepReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_paper_features() {
        let c = SweepConfig::default();
        assert!(c.sat_guided_patterns);
        assert!(c.constant_substitution);
        assert!(c.window_refinement);
        assert_eq!(c.tfi_limit, 1000);
        assert!(c.window_limit < 16);
    }

    #[test]
    fn baseline_config_disables_paper_features() {
        let c = SweepConfig::baseline();
        assert!(!c.sat_guided_patterns);
        assert!(!c.constant_substitution);
        assert!(!c.window_refinement);
    }

    #[test]
    fn report_reduction() {
        let report = SweepReport {
            gates_before: 100,
            gates_after: 80,
            ..SweepReport::default()
        };
        assert!((report.reduction() - 0.2).abs() < 1e-9);
        assert_eq!(SweepReport::default().reduction(), 0.0);
        assert!(report.to_string().contains("100 -> 80"));
    }
}
