//! The STP-based k-LUT network simulator (Algorithm 1 of the paper).
//!
//! A logic matrix is a truth table read column-wise (Definition 2), so the
//! simulator's primitive is *logic-matrix column selection*: the output of a
//! node under one pattern is obtained by a single indexing operation into
//! the node's matrix, instead of decomposing the LUT into bitwise operations.
//!
//! Two modes are provided, mirroring Algorithm 1:
//!
//! * [`StpSimulator::simulate_all`] — visit all nodes in topological order
//!   and compute each output by one matrix pass per pattern (`m = a`).
//! * [`StpSimulator::simulate_nodes`] — only the *specified* nodes are of
//!   interest (`m = s`): the network is first cut into tree-shaped regions
//!   with at most `limit = ⌊log₂ |P|⌋` leaves (Section III-B), the truth
//!   table of every cut is obtained by STP composition of the member
//!   matrices, and only the cut roots are simulated.

use bitsim::{kernels, parallel, PatternSet, SigRef, Signature, SignatureArena};
use netlist::{LutNetwork, LutNode, LutNodeId};
use std::collections::HashMap;
use stp::LogicMatrix;
use truthtable::{compose, TruthTable};

/// Hard ceiling on the number of leaves of a collapsed cut (beyond this the
/// cut is split; composing larger truth tables would cost more than it
/// saves, cf. the paper's "fewer than 16 leaf nodes" restriction).
pub const MAX_CUT_LEAVES: usize = 16;

/// Result of an all-nodes STP simulation: one [`SignatureArena`] row per
/// node.
///
/// After an incremental [`StpSimulator::resimulate`], nodes outside the
/// resimulated targets become *stale*: their arena row was written at an
/// older pattern count (the arena's generation tag differs from the current
/// pattern count).  Stale signatures must not be read
/// ([`StpSimState::signature`] panics); [`StpSimState::is_stale`] tells which
/// nodes are affected.
#[derive(Debug, Clone)]
pub struct StpSimState {
    arena: SignatureArena,
    steal_events: u64,
}

impl StpSimState {
    /// A borrowed view of the signature of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node's signature is stale after an incremental
    /// resimulation that did not target it.
    pub fn signature(&self, node: LutNodeId) -> SigRef<'_> {
        assert!(
            !self.arena.is_stale(node),
            "node {node} is stale: it was skipped by an incremental resimulation"
        );
        self.arena.sig(node)
    }

    /// `true` if the node's signature no longer covers every pattern (the
    /// node was skipped by an incremental [`StpSimulator::resimulate`]).
    pub fn is_stale(&self, node: LutNodeId) -> bool {
        self.arena.is_stale(node)
    }

    /// The signature of output `index` (complement applied).
    ///
    /// # Panics
    ///
    /// Panics if the driving node's signature is stale.
    pub fn output_signature(&self, net: &LutNetwork, index: usize) -> Signature {
        let output = &net.outputs()[index];
        let sig = self.signature(output.node).to_signature();
        if output.complemented {
            sig.complement()
        } else {
            sig
        }
    }

    /// Number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.arena.num_patterns()
    }

    /// The backing signature arena.  Stale rows (see
    /// [`StpSimState::is_stale`]) carry an older generation tag.
    pub fn arena(&self) -> &SignatureArena {
        &self.arena
    }

    /// Number of work-stealing events the producing run observed (0 for
    /// sequential runs).
    pub fn steal_events(&self) -> u64 {
        self.steal_events
    }
}

/// The STP-based simulator over a k-LUT network.
#[derive(Debug, Clone)]
pub struct StpSimulator<'a> {
    net: &'a LutNetwork,
    /// The logic matrix (packed truth-table row) of every LUT node, plus its
    /// fanins, pre-extracted so that the simulation loop touches flat arrays
    /// only.
    node_words: Vec<Vec<u64>>,
    node_fanins: Vec<Vec<LutNodeId>>,
}

impl<'a> StpSimulator<'a> {
    /// Prepares the simulator: every LUT function is converted once into its
    /// logic matrix.
    pub fn new(net: &'a LutNetwork) -> Self {
        let mut node_words = Vec::with_capacity(net.num_nodes());
        let mut node_fanins = Vec::with_capacity(net.num_nodes());
        for id in net.node_ids() {
            match net.node(id) {
                LutNode::Lut { fanins, function } => {
                    // The logic matrix of the node; its packed truth-table
                    // words are what column selection indexes into.
                    let matrix =
                        LogicMatrix::from_truth_table_bits(function.num_vars(), function.words());
                    node_words.push(matrix.to_truth_table_bits());
                    node_fanins.push(fanins.clone());
                }
                _ => {
                    node_words.push(Vec::new());
                    node_fanins.push(Vec::new());
                }
            }
        }
        StpSimulator {
            net,
            node_words,
            node_fanins,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &LutNetwork {
        self.net
    }

    /// Simulates **all** nodes (Algorithm 1, mode `a`).
    ///
    /// Each node's output is produced by one pass over its logic matrix: the
    /// columns holding a `True` vector (the minterms of the LUT function)
    /// are accumulated over 64 patterns at a time, so a node costs
    /// `O(#minterms · k)` word operations per 64 patterns regardless of how
    /// the LUT would decompose into bitwise operators.  Very wide LUTs fall
    /// back to per-pattern column selection.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the network's.
    pub fn simulate_all(&self, patterns: &PatternSet) -> StpSimState {
        assert_eq!(
            patterns.num_inputs(),
            self.net.num_pis(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let mut arena = SignatureArena::new(self.net.num_nodes(), n);
        for id in self.net.node_ids() {
            match self.net.node(id) {
                LutNode::Const0 => {} // rows start zeroed
                LutNode::Input { position } => {
                    arena
                        .row_mut(id)
                        .copy_from_slice(patterns.input_signature(*position).words());
                }
                LutNode::Lut { .. } => {
                    let (prefix, row) = arena.split_at_row(id);
                    let fanin_words: Vec<&[u64]> = self.node_fanins[id]
                        .iter()
                        .map(|&f| prefix.row(f))
                        .collect();
                    eval_lut_words(&self.node_words[id], &fanin_words, n, 0, row);
                    arena.mask_row_tail(id);
                }
            }
            arena.mark_written(id);
        }
        StpSimState {
            arena,
            steal_events: 0,
        }
    }

    /// Simulates **all** nodes with up to `num_threads` worker threads.
    ///
    /// Nodes are grouped by topological level; within one level the arena
    /// rows are partitioned into **cost-balanced** chunks (a `k`-input LUT
    /// weighs `2^k`, so skewed levels no longer starve threads) that
    /// [`std::thread::scope`] workers claim through an atomic cursor — see
    /// [`parallel::evaluate_level_stealing`].  The workers run exactly the
    /// word operations of [`StpSimulator::simulate_all`], so the result is
    /// **bit-identical to a sequential run** for any thread count.  Levels
    /// whose work is below [`parallel::PARALLEL_GRAIN`] are evaluated
    /// inline.
    ///
    /// `num_threads <= 1` falls back to [`StpSimulator::simulate_all`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the network's.
    pub fn simulate_all_parallel(&self, patterns: &PatternSet, num_threads: usize) -> StpSimState {
        if num_threads <= 1 {
            return self.simulate_all(patterns);
        }
        assert_eq!(
            patterns.num_inputs(),
            self.net.num_pis(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let mut arena = SignatureArena::new(self.net.num_nodes(), n);
        let mut steal_events = 0u64;
        let groups = parallel::group_by_level(&self.net.levels());
        for group in &groups {
            let mut luts: Vec<LutNodeId> = Vec::with_capacity(group.len());
            for &id in group {
                match self.net.node(id) {
                    LutNode::Const0 => arena.mark_written(id),
                    LutNode::Input { position } => {
                        arena
                            .row_mut(id)
                            .copy_from_slice(patterns.input_signature(*position).words());
                        arena.mark_written(id);
                    }
                    LutNode::Lut { .. } => luts.push(id),
                }
            }
            if luts.is_empty() {
                continue;
            }
            // Cost model: evaluating a k-input LUT scans up to 2^k minterm
            // columns per word, so its per-word cost is exponential in its
            // fanin width while an AND gate's is constant.
            let costs: Vec<u64> = luts
                .iter()
                .map(|&id| 1u64 << self.node_fanins[id].len().min(MAX_CUT_LEAVES))
                .collect();
            let (rows, reader) = arena.split_rows(&luts);
            steal_events += parallel::evaluate_level_stealing(
                rows,
                &luts,
                &costs,
                num_threads,
                &|id, word_lo, out| {
                    let fanin_words: Vec<&[u64]> = self.node_fanins[id]
                        .iter()
                        .map(|&f| reader.row(f))
                        .collect();
                    eval_lut_words(&self.node_words[id], &fanin_words, n, word_lo, out);
                },
            );
            for &id in &luts {
                arena.mask_row_tail(id);
                arena.mark_written(id);
            }
        }
        StpSimState {
            arena,
            steal_events,
        }
    }

    /// Incremental resimulation: appends the patterns of `extra` to `state`
    /// for the `targets` only, using [`StpSimulator::simulate_nodes`] (the
    /// cut-collapsing specified-node mode) as the kernel.  Inputs and the
    /// constant node are extended as well (their values are free); every
    /// other non-target LUT is marked *stale* instead of being resimulated —
    /// the dirty-set analogue of fanout-limited resimulation in FRAIG-style
    /// sweepers.
    ///
    /// Returns the number of LUT nodes the kernel evaluated (the cut roots
    /// visited on the targets' behalf) — the work metric that a
    /// `simulate_all` call would have inflated to every LUT in the network.
    /// Only the **targets** have their stored signatures extended; a
    /// non-target cut root's freshly computed value is intermediate data
    /// and the node is marked stale like every other skipped LUT.
    ///
    /// # Panics
    ///
    /// Panics if `extra` has a different input count than the network, if a
    /// target is out of range, or if a target is already stale (its history
    /// is incomplete, so appending would corrupt it).
    pub fn resimulate(
        &self,
        state: &mut StpSimState,
        extra: &PatternSet,
        targets: &[LutNodeId],
    ) -> usize {
        assert_eq!(
            extra.num_inputs(),
            self.net.num_pis(),
            "pattern set input count must match the network"
        );
        assert_eq!(
            state.arena.num_rows(),
            self.net.num_nodes(),
            "state must belong to this network"
        );
        for &t in targets {
            assert!(
                !state.arena.is_stale(t),
                "target {t} is stale: its signature history is incomplete"
            );
        }
        let (values, evaluated) = self.simulate_nodes_counted(extra, targets);
        let mut is_target = vec![false; self.net.num_nodes()];
        for &t in targets {
            is_target[t] = true;
        }
        // Growing the arena leaves every row's generation at the old pattern
        // count, so all rows start out stale; the nodes refreshed below are
        // re-marked and everything else *stays* stale — exactly the dirty
        // set the pre-arena `stale: Vec<bool>` tracked by hand.
        let old_n = state.arena.num_patterns();
        state.arena.grow_patterns(old_n + extra.num_patterns());
        for id in self.net.node_ids() {
            match self.net.node(id) {
                LutNode::Const0 => state.arena.mark_written(id), // new bits stay zero
                LutNode::Input { position } => {
                    let sig = extra.input_signature(*position);
                    for p in 0..extra.num_patterns() {
                        if sig.get_bit(p) {
                            state.arena.set_bit(id, old_n + p, true);
                        }
                    }
                    state.arena.mark_written(id);
                }
                LutNode::Lut { .. } => {
                    if is_target[id] {
                        let fresh = &values[&id];
                        for p in 0..extra.num_patterns() {
                            if fresh.get_bit(p) {
                                state.arena.set_bit(id, old_n + p, true);
                            }
                        }
                        state.arena.mark_written(id);
                    }
                }
            }
        }
        evaluated
    }

    /// Simulates only the **specified** nodes (Algorithm 1, mode `s`).
    ///
    /// The cut size limit is `⌊log₂ |P|⌋` as in the paper (at least 2, at
    /// most [`MAX_CUT_LEAVES`]); all other nodes are collapsed into cuts
    /// whose truth tables are obtained by STP composition, so only cut roots
    /// are visited during simulation.
    ///
    /// Returns the signature of each target node.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the network's or
    /// a target id is out of range.
    pub fn simulate_nodes(
        &self,
        patterns: &PatternSet,
        targets: &[LutNodeId],
    ) -> HashMap<LutNodeId, Signature> {
        self.simulate_nodes_counted(patterns, targets).0
    }

    /// Simulates only the **specified** nodes with up to `num_threads`
    /// worker threads: the cut collapse is unchanged, but the cut roots are
    /// evaluated level by level with each [`std::thread::scope`] worker
    /// filling a contiguous chunk of every root's signature words (the
    /// [`parallel`] scheduler shared with the all-nodes evaluators).  The
    /// evaluation is exact, so the result is **bit-identical to
    /// [`StpSimulator::simulate_nodes`]** for any thread count;
    /// `num_threads <= 1` falls back to the sequential path.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the network's or
    /// a target id is out of range.
    pub fn simulate_nodes_parallel(
        &self,
        patterns: &PatternSet,
        targets: &[LutNodeId],
        num_threads: usize,
    ) -> HashMap<LutNodeId, Signature> {
        self.simulate_nodes_counted_parallel(patterns, targets, num_threads)
            .0
    }

    /// Like [`StpSimulator::simulate_nodes_parallel`], but also reports how
    /// many LUT nodes (cut roots) were evaluated — identical to the count of
    /// [`StpSimulator::simulate_nodes_counted`].
    pub fn simulate_nodes_counted_parallel(
        &self,
        patterns: &PatternSet,
        targets: &[LutNodeId],
        num_threads: usize,
    ) -> (HashMap<LutNodeId, Signature>, usize) {
        let n = patterns.num_patterns();
        let num_words = n.div_ceil(64);
        // A single signature word cannot be split across workers, so skip
        // the collapse/level set-up and evaluate sequentially.
        if num_threads <= 1 || targets.is_empty() || num_words < 2 {
            return self.simulate_nodes_counted(patterns, targets);
        }
        assert_eq!(
            patterns.num_inputs(),
            self.net.num_pis(),
            "pattern set input count must match the network"
        );
        let limit = cut_limit(n);
        let collapse = self.collapse(targets, limit);
        let mut roots: Vec<LutNodeId> = collapse.roots.iter().copied().collect();
        roots.sort_unstable();
        let evaluated = roots
            .iter()
            .filter(|&&r| matches!(self.net.node(r), LutNode::Lut { .. }))
            .count();

        // Dependency depth over the cut-root DAG: a root's cut leaves are
        // PIs, the constant, or earlier roots (smaller ids), so one
        // ascending pass assigns levels.
        let num_nodes = self.net.num_nodes();
        let mut signatures: Vec<Signature> = vec![Signature::zeros(0); num_nodes];
        let mut depth = vec![0usize; num_nodes];
        let mut level_nodes: Vec<Vec<LutNodeId>> = Vec::new();
        for &root in &roots {
            match self.net.node(root) {
                LutNode::Const0 => signatures[root] = Signature::zeros(n),
                LutNode::Input { position } => {
                    signatures[root] = patterns.input_signature(*position).clone();
                }
                LutNode::Lut { .. } => {
                    let cut = &collapse.cuts[&root];
                    let d = 1 + cut
                        .leaves
                        .iter()
                        .filter(|&&l| matches!(self.net.node(l), LutNode::Lut { .. }))
                        .map(|&l| depth[l])
                        .max()
                        .unwrap_or(0);
                    depth[root] = d;
                    if level_nodes.len() < d {
                        level_nodes.resize_with(d, Vec::new);
                    }
                    level_nodes[d - 1].push(root);
                }
            }
        }
        // Leaf PI signatures that are not roots themselves.
        for level in &level_nodes {
            for &root in level {
                for &leaf in &collapse.cuts[&root].leaves {
                    if let LutNode::Input { position } = self.net.node(leaf) {
                        if signatures[leaf].is_empty() && n > 0 {
                            signatures[leaf] = patterns.input_signature(*position).clone();
                        }
                    }
                }
            }
        }
        // Constant leaves contribute a hard-zero word array so every leaf
        // kind goes through the one shared lookup kernel.
        let zero_words = vec![0u64; num_words];
        for level in &level_nodes {
            let sigs = &signatures;
            let cuts = &collapse.cuts;
            let net = self.net;
            let zeros = zero_words.as_slice();
            let buffers =
                parallel::evaluate_level(level, num_words, num_threads, &|id, word_lo, out| {
                    let cut = &cuts[&id];
                    let leaf_words: Vec<&[u64]> = cut
                        .leaves
                        .iter()
                        .map(|&leaf| match net.node(leaf) {
                            LutNode::Const0 => zeros,
                            _ => sigs[leaf].words(),
                        })
                        .collect();
                    parallel::lookup_kernel(
                        |index| cut.table.get_bit(index),
                        &leaf_words,
                        n,
                        word_lo,
                        out,
                    );
                });
            for (out, &id) in buffers.into_iter().zip(level.iter()) {
                signatures[id] = Signature::from_words(n, out);
            }
        }
        let map = targets
            .iter()
            .map(|&t| (t, signatures[t].clone()))
            .collect();
        (map, evaluated)
    }

    /// Like [`StpSimulator::simulate_nodes`], but also reports how many LUT
    /// nodes were actually evaluated (the cut roots) — the measure of work
    /// incremental resimulation saves over an all-nodes pass.
    pub fn simulate_nodes_counted(
        &self,
        patterns: &PatternSet,
        targets: &[LutNodeId],
    ) -> (HashMap<LutNodeId, Signature>, usize) {
        assert_eq!(
            patterns.num_inputs(),
            self.net.num_pis(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let limit = cut_limit(n);
        let collapse = self.collapse(targets, limit);

        // Simulate cut roots in topological (id) order.
        let mut values: HashMap<LutNodeId, Signature> = HashMap::new();
        let mut roots: Vec<LutNodeId> = collapse.roots.iter().copied().collect();
        roots.sort_unstable();
        let evaluated = roots
            .iter()
            .filter(|&&r| matches!(self.net.node(r), LutNode::Lut { .. }))
            .count();
        for &root in &roots {
            let sig = match self.net.node(root) {
                LutNode::Const0 => Signature::zeros(n),
                LutNode::Input { position } => patterns.input_signature(*position).clone(),
                LutNode::Lut { .. } => {
                    let cut = &collapse.cuts[&root];
                    let mut out = Signature::zeros(n);
                    for p in 0..n {
                        let mut index = 0usize;
                        for (k, &leaf) in cut.leaves.iter().enumerate() {
                            let bit = match self.net.node(leaf) {
                                LutNode::Input { position } => patterns.value(*position, p),
                                LutNode::Const0 => false,
                                LutNode::Lut { .. } => values
                                    .get(&leaf)
                                    .expect("leaf roots precede their users in id order")
                                    .get_bit(p),
                            };
                            if bit {
                                index |= 1 << k;
                            }
                        }
                        if cut.table.get_bit(index) {
                            out.set_bit(p, true);
                        }
                    }
                    out
                }
            };
            values.insert(root, sig);
        }
        let map = targets.iter().map(|&t| (t, values[&t].clone())).collect();
        (map, evaluated)
    }

    /// Collapses the transitive fanin of `targets` into cuts with at most
    /// `limit` leaves (Section III-B).  Returns the set of cut roots (which
    /// includes every target) and the cut of every root.
    /// Collapses the transitive fanin of `targets` into cuts with at most
    /// `limit` leaves (Section III-B).  Returns the set of cut roots (which
    /// includes every target) and, for every needed node, its function
    /// expressed over its cut leaves.
    fn collapse(&self, targets: &[LutNodeId], limit: usize) -> Collapse {
        let num_nodes = self.net.num_nodes();
        for &t in targets {
            assert!(t < num_nodes, "target node out of range");
        }
        let mut is_target = vec![false; num_nodes];
        for &t in targets {
            is_target[t] = true;
        }
        // Mark the nodes needed to compute the targets and count fanouts
        // restricted to that region.
        let mut needed = vec![false; num_nodes];
        let mut stack: Vec<LutNodeId> = targets.to_vec();
        while let Some(id) = stack.pop() {
            if needed[id] {
                continue;
            }
            needed[id] = true;
            for &f in self.net.node(id).fanins() {
                stack.push(f);
            }
        }
        let mut fanout = vec![0usize; num_nodes];
        for id in self.net.node_ids().filter(|&id| needed[id]) {
            for &f in self.net.node(id).fanins() {
                fanout[f] += 1;
            }
        }

        // Per-node record of (leaves, function-over-leaves); the leaf set a
        // node exposes to its parents is `[id]` once it became a root.
        let mut record: Vec<Option<CutFunction>> = vec![None; num_nodes];
        let mut exposed: Vec<Option<Vec<LutNodeId>>> = vec![None; num_nodes];
        let mut is_root = vec![false; num_nodes];

        for id in 0..num_nodes {
            if !needed[id] {
                continue;
            }
            match self.net.node(id) {
                LutNode::Const0 | LutNode::Input { .. } => {
                    exposed[id] = Some(vec![id]);
                    record[id] = Some(CutFunction {
                        leaves: vec![id],
                        table: TruthTable::variable(1, 0),
                    });
                    if is_target[id] {
                        is_root[id] = true;
                    }
                }
                LutNode::Lut { fanins, function } => {
                    // Gather the leaf sets the fanins currently expose.
                    let mut merged: Vec<LutNodeId> = Vec::new();
                    for &f in fanins {
                        for &leaf in exposed[f].as_ref().expect("fanins precede node") {
                            if !merged.contains(&leaf) {
                                merged.push(leaf);
                            }
                        }
                    }
                    merged.sort_unstable();
                    let oversize = merged.len() > MAX_CUT_LEAVES;
                    let (leaves, table) = if oversize {
                        // Fall back to the direct fanins as leaves; promote
                        // any absorbed fanin to a root so its value is
                        // available during simulation.
                        for &f in fanins {
                            if !is_root[f] && !matches!(self.net.node(f), LutNode::Lut { .. }) {
                                continue;
                            }
                            if !is_root[f] {
                                is_root[f] = true;
                                exposed[f] = Some(vec![f]);
                            }
                        }
                        (fanins.clone(), function.clone())
                    } else {
                        // STP composition: re-express each fanin over the
                        // merged leaf set and compose with the node matrix.
                        let inners: Vec<TruthTable> = fanins
                            .iter()
                            .map(|&f| {
                                let exposed_f = exposed[f].as_ref().expect("fanins precede node");
                                if exposed_f.len() == 1 && exposed_f[0] == f {
                                    let pos = merged
                                        .iter()
                                        .position(|&l| l == f)
                                        .expect("leaf is in the merged set");
                                    TruthTable::variable(merged.len(), pos)
                                } else {
                                    let base = record[f]
                                        .as_ref()
                                        .expect("collapsed fanin has a recorded cut");
                                    let var_map: Vec<usize> = base
                                        .leaves
                                        .iter()
                                        .map(|l| {
                                            merged
                                                .iter()
                                                .position(|m| m == l)
                                                .expect("leaf is in the merged set")
                                        })
                                        .collect();
                                    base.table.extend_to(merged.len(), &var_map)
                                }
                            })
                            .collect();
                        (merged.clone(), compose(function, &inners))
                    };
                    record[id] = Some(CutFunction {
                        leaves: leaves.clone(),
                        table,
                    });
                    // A node becomes a cut root when it is a target, when its
                    // value is reused by more than one parent (the tree
                    // requirement of Section III-B) or when its cut exceeded
                    // the limit.
                    let becomes_root =
                        is_target[id] || fanout[id] > 1 || leaves.len() > limit || oversize;
                    if becomes_root {
                        is_root[id] = true;
                        exposed[id] = Some(vec![id]);
                    } else {
                        exposed[id] = Some(leaves);
                    }
                }
            }
        }
        let roots: Vec<LutNodeId> = (0..num_nodes).filter(|&id| is_root[id]).collect();
        let cuts: HashMap<LutNodeId, CutFunction> = roots
            .iter()
            .map(|&r| (r, record[r].clone().expect("roots are needed nodes")))
            .collect();
        Collapse {
            roots: roots.into_iter().collect(),
            cuts,
        }
    }
}

/// Evaluates one LUT node for signature words `word_lo .. word_lo +
/// out.len()`: `words` is the node's packed logic-matrix row, `fanin_words`
/// the complete word arrays of the fanins, `n` the total pattern count.
///
/// This is the single LUT kernel shared by the sequential and parallel
/// evaluators: the minterm columns (or the maxterm columns when the function
/// is dense) are accumulated 64 patterns at a time; very wide LUTs (more
/// than 256 columns) fall back to per-pattern column selection.  `out` must
/// be zero-initialised.
///
/// The narrow path is structured minterm-outer / fanin-middle / words-inner
/// over stack blocks of up to [`LUT_BLOCK_WORDS`] words: the innermost loops
/// are plain stride-1 slice zips over contiguous fanin words (the
/// [`bitsim::kernels`] primitives), so the per-column table-bit branch is
/// amortised over a whole block and the hot loops autovectorize (or use the
/// explicitly widened kernels under the `simd` feature).  The pre-arena
/// kernel was words-outer / minterm-inner, re-deciding every column once
/// per word.
fn eval_lut_words(
    words: &[u64],
    fanin_words: &[&[u64]],
    n: usize,
    word_lo: usize,
    out: &mut [u64],
) {
    let k = fanin_words.len();
    let columns = 1usize << k;
    if columns > 256 {
        // Wide LUT: per-pattern column selection, restricted to the chunk.
        let p_lo = word_lo * 64;
        let p_hi = ((word_lo + out.len()) * 64).min(n);
        for p in p_lo..p_hi {
            let mut index = 0usize;
            for (j, fw) in fanin_words.iter().enumerate() {
                index |= (((fw[p / 64] >> (p % 64)) & 1) as usize) << j;
            }
            out[p / 64 - word_lo] |= ((words[index / 64] >> (index % 64)) & 1) << (p % 64);
        }
    } else {
        let ones: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        let use_zeros = ones * 2 > columns;
        let mut acc = [0u64; LUT_BLOCK_WORDS];
        let mut term = [0u64; LUT_BLOCK_WORDS];
        let mut start = 0usize;
        while start < out.len() {
            let blen = (out.len() - start).min(LUT_BLOCK_WORDS);
            let w0 = word_lo + start;
            acc[..blen].fill(0);
            for m in 0..columns {
                let column_is_one = (words[m / 64] >> (m % 64)) & 1 == 1;
                if column_is_one == use_zeros {
                    continue;
                }
                term[..blen].fill(u64::MAX);
                for (j, fw) in fanin_words.iter().enumerate() {
                    let src = &fw[w0..w0 + blen];
                    if (m >> j) & 1 == 1 {
                        kernels::and_assign(&mut term[..blen], src);
                    } else {
                        kernels::andnot_assign(&mut term[..blen], src);
                    }
                }
                kernels::or_assign(&mut acc[..blen], &term[..blen]);
            }
            kernels::copy_polarity(&mut out[start..start + blen], &acc[..blen], use_zeros);
            start += blen;
        }
    }
}

/// Stack-block size (in words) of the narrow-LUT evaluation path: 64 words
/// cover 4096 patterns per block while the accumulator and term buffers stay
/// comfortably on the stack.
const LUT_BLOCK_WORDS: usize = 64;

/// The cut size limit of Algorithm 1: `⌊log₂ n⌋` for `n` patterns, clamped
/// to `[1, MAX_CUT_LEAVES]`.
pub fn cut_limit(num_patterns: usize) -> usize {
    let log = usize::BITS as usize - 1 - num_patterns.max(2).leading_zeros() as usize;
    log.clamp(1, MAX_CUT_LEAVES)
}

/// A collapsed cut: the root's function expressed over its leaves.
#[derive(Debug, Clone)]
struct CutFunction {
    leaves: Vec<LutNodeId>,
    table: TruthTable,
}

#[derive(Debug)]
struct Collapse {
    roots: std::collections::HashSet<LutNodeId>,
    cuts: HashMap<LutNodeId, CutFunction>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitsim::LutSimulator;
    use netlist::{lutmap, Aig};

    /// The k-LUT network of Fig. 1(a): five PIs and six 2-input NAND LUTs.
    fn figure1_network() -> (LutNetwork, Vec<LutNodeId>) {
        let nand = TruthTable::from_binary_str(2, "0111").unwrap();
        let mut net = LutNetwork::new();
        let pis: Vec<LutNodeId> = (1..=5).map(|i| net.add_input(format!("{i}"))).collect();
        let n6 = net.add_lut(vec![pis[0], pis[2]], nand.clone());
        let n7 = net.add_lut(vec![pis[1], pis[2]], nand.clone());
        let n8 = net.add_lut(vec![pis[2], pis[3]], nand.clone());
        let n9 = net.add_lut(vec![pis[3], pis[4]], nand.clone());
        let n10 = net.add_lut(vec![n6, n7], nand.clone());
        let n11 = net.add_lut(vec![n8, n9], nand);
        net.add_output("po1", n10, false);
        net.add_output("po2", n11, false);
        (net, vec![n6, n7, n8, n9, n10, n11])
    }

    fn mapped_network() -> (Aig, LutNetwork) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let g1 = aig.and(xs[0], xs[1]);
        let g2 = aig.xor(xs[2], xs[3]);
        let g3 = aig.maj(xs[3], xs[4], xs[5]);
        let g4 = aig.mux(g1, g2, g3);
        let g5 = aig.or(g2, g3);
        aig.add_output("o0", g4);
        aig.add_output("o1", !g5);
        let lut = lutmap::map_to_luts(&aig, 4);
        (aig, lut)
    }

    #[test]
    fn cut_limit_follows_log2() {
        assert_eq!(cut_limit(2), 1);
        assert_eq!(cut_limit(10), 3);
        assert_eq!(cut_limit(1024), 10);
        assert_eq!(cut_limit(1_000_000), 16);
        assert_eq!(cut_limit(0), 1);
    }

    #[test]
    fn figure1_all_nodes_simulation_matches_reference() {
        let (net, _) = figure1_network();
        let patterns = PatternSet::from_binary_strings(&[
            "0111001011",
            "1010011011",
            "1110011000",
            "0000011111",
            "1010000101",
        ]);
        let stp = StpSimulator::new(&net).simulate_all(&patterns);
        let baseline = LutSimulator::new(&net).run(&patterns);
        for id in net.node_ids() {
            assert_eq!(stp.signature(id), baseline.signature(id), "node {id}");
        }
        assert_eq!(stp.num_patterns(), 10);
    }

    #[test]
    fn figure1_specified_nodes_match_all_nodes() {
        // Simulate only nodes 7 and 8, as in the paper's example.
        let (net, nodes) = figure1_network();
        let patterns = PatternSet::from_binary_strings(&[
            "0111001011",
            "1010011011",
            "1110011000",
            "0000011111",
            "1010000101",
        ]);
        let sim = StpSimulator::new(&net);
        let all = sim.simulate_all(&patterns);
        let targets = vec![nodes[1], nodes[2]]; // paper nodes "7" and "8"
        let specified = sim.simulate_nodes(&patterns, &targets);
        assert_eq!(specified.len(), 2);
        for &t in &targets {
            assert_eq!(specified[&t], all.signature(t), "target {t}");
        }
    }

    #[test]
    fn simulate_all_matches_bitwise_baseline_on_mapped_network() {
        let (_, lut) = mapped_network();
        let patterns = PatternSet::random(6, 500, 17).unwrap();
        let stp = StpSimulator::new(&lut).simulate_all(&patterns);
        let baseline = LutSimulator::new(&lut).run(&patterns);
        for id in lut.node_ids() {
            assert_eq!(stp.signature(id), baseline.signature(id), "node {id}");
        }
        for o in 0..lut.num_pos() {
            assert_eq!(
                stp.output_signature(&lut, o),
                baseline.output_signature(&lut, o)
            );
        }
    }

    #[test]
    fn simulate_nodes_matches_all_for_every_target_choice() {
        let (_, lut) = mapped_network();
        let patterns = PatternSet::random(6, 64, 3).unwrap();
        let sim = StpSimulator::new(&lut);
        let all = sim.simulate_all(&patterns);
        let lut_ids: Vec<LutNodeId> = lut.lut_ids().collect();
        // Every single-node target and a couple of multi-node target sets.
        for &t in &lut_ids {
            let r = sim.simulate_nodes(&patterns, &[t]);
            assert_eq!(r[&t], all.signature(t), "single target {t}");
        }
        let r = sim.simulate_nodes(&patterns, &lut_ids);
        for &t in &lut_ids {
            assert_eq!(r[&t], all.signature(t), "joint target {t}");
        }
    }

    #[test]
    fn specified_simulation_with_pi_target() {
        let (_, lut) = mapped_network();
        let patterns = PatternSet::random(6, 32, 5).unwrap();
        let sim = StpSimulator::new(&lut);
        let pi = lut.inputs()[2];
        let r = sim.simulate_nodes(&patterns, &[pi]);
        assert_eq!(&r[&pi], patterns.input_signature(2));
    }

    #[test]
    fn parallel_simulation_is_bit_identical_to_sequential() {
        let (_, lut) = mapped_network();
        let sim = StpSimulator::new(&lut);
        // 65536 patterns = 1024 words cross the parallel grain; the small
        // counts keep the inline fallback covered.
        for n in [1usize, 63, 64, 65, 500, 65536] {
            let patterns = PatternSet::random(6, n, n as u64 + 1).unwrap();
            let sequential = sim.simulate_all(&patterns);
            for threads in [1usize, 2, 3, 4, 8] {
                let parallel = sim.simulate_all_parallel(&patterns, threads);
                assert_eq!(parallel.num_patterns(), sequential.num_patterns());
                for id in lut.node_ids() {
                    assert_eq!(
                        parallel.signature(id),
                        sequential.signature(id),
                        "node {id}, {n} patterns, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn resimulate_appends_target_bits_and_marks_others_stale() {
        let (_, lut) = mapped_network();
        let sim = StpSimulator::new(&lut);
        let base = PatternSet::random(6, 64, 3).unwrap();
        let extra = PatternSet::random(6, 17, 4).unwrap();
        let mut combined = base.clone();
        combined.extend(&extra);

        let lut_ids: Vec<LutNodeId> = lut.lut_ids().collect();
        let targets = vec![lut_ids[0], *lut_ids.last().unwrap()];

        let mut state = sim.simulate_all(&base);
        let evaluated = sim.resimulate(&mut state, &extra, &targets);
        assert!(evaluated >= targets.len());
        assert!(evaluated <= lut_ids.len());
        assert_eq!(state.num_patterns(), 81);

        let full = sim.simulate_all(&combined);
        for &t in &targets {
            assert!(!state.is_stale(t));
            assert_eq!(state.signature(t), full.signature(t), "target {t}");
        }
        // Inputs stay fresh; skipped LUTs are stale.
        for &pi in lut.inputs() {
            assert!(!state.is_stale(pi));
            assert_eq!(state.signature(pi), full.signature(pi));
        }
        for &id in &lut_ids {
            if !targets.contains(&id) {
                assert!(state.is_stale(id), "non-target LUT {id} must be stale");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn reading_a_stale_signature_panics() {
        let (_, lut) = mapped_network();
        let sim = StpSimulator::new(&lut);
        let base = PatternSet::random(6, 32, 1).unwrap();
        let extra = PatternSet::random(6, 1, 2).unwrap();
        let lut_ids: Vec<LutNodeId> = lut.lut_ids().collect();
        let mut state = sim.simulate_all(&base);
        sim.resimulate(&mut state, &extra, &lut_ids[..1]);
        let _ = state.signature(lut_ids[1]);
    }

    #[test]
    fn parallel_simulate_nodes_is_bit_identical_to_sequential() {
        let (_, lut) = mapped_network();
        let sim = StpSimulator::new(&lut);
        let lut_ids: Vec<LutNodeId> = lut.lut_ids().collect();
        // Pattern counts straddling word boundaries and the parallel grain.
        for n in [1usize, 63, 64, 65, 700] {
            let patterns = PatternSet::random(6, n, n as u64 + 7).unwrap();
            for targets in [&lut_ids[..1], &lut_ids[..]] {
                let (seq, seq_count) = sim.simulate_nodes_counted(&patterns, targets);
                for threads in [1usize, 2, 4, 8] {
                    let (par, par_count) =
                        sim.simulate_nodes_counted_parallel(&patterns, targets, threads);
                    assert_eq!(par_count, seq_count, "n {n}, {threads} threads");
                    for &t in targets {
                        assert_eq!(par[&t], seq[&t], "node {t}, n {n}, {threads} threads");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_simulate_nodes_handles_pi_targets_and_deep_chains() {
        // The deep-chain case splits into several stacked cuts, so the
        // parallel path must schedule multiple levels of cut roots.
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 10);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.xor(acc, x);
        }
        aig.add_output("parity", acc);
        let lut = lutmap::map_to_luts(&aig, 2);
        let patterns = PatternSet::random(10, 200, 13).unwrap();
        let sim = StpSimulator::new(&lut);
        let last_lut = lut.lut_ids().last().expect("chain has LUTs");
        let pi = lut.inputs()[3];
        let targets = vec![pi, last_lut];
        let (seq, seq_count) = sim.simulate_nodes_counted(&patterns, &targets);
        let par = sim.simulate_nodes_parallel(&patterns, &targets, 4);
        let (_, par_count) = sim.simulate_nodes_counted_parallel(&patterns, &targets, 4);
        assert_eq!(par_count, seq_count);
        assert_eq!(par[&last_lut], seq[&last_lut]);
        assert_eq!(&par[&pi], patterns.input_signature(3));
    }

    #[test]
    fn deep_chain_respects_cut_limit() {
        // A long XOR chain: with few patterns the limit is small, so the
        // chain is split into several cuts; the result must still match.
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 10);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.xor(acc, x);
        }
        aig.add_output("parity", acc);
        let lut = lutmap::map_to_luts(&aig, 2);
        let patterns = PatternSet::random(10, 8, 9).unwrap(); // limit = 3
        let sim = StpSimulator::new(&lut);
        let all = sim.simulate_all(&patterns);
        let last_lut = lut.lut_ids().last().expect("chain has LUTs");
        let r = sim.simulate_nodes(&patterns, &[last_lut]);
        assert_eq!(r[&last_lut], all.signature(last_lut));
    }
}
