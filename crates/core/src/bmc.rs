//! Bounded-model-checking sequential-equivalence oracle.
//!
//! The differential test oracle behind the sequential sweeping engine:
//! both networks are unrolled into one combinational network over *shared*
//! per-frame primary inputs, and the position-matched real primary outputs
//! are proved equal frame by frame on a single incremental solver.  The
//! check is complete only up to the bound — exactly what the test battery
//! needs: every latch merge the engine commits must survive the oracle,
//! and a seeded mutation must be caught by it.
//!
//! Uninitialised (`X`) latches become free frame-0 variables shared
//! between the networks when their latch (state-input) names agree.  A
//! sweep preserves the names of surviving latches, so an original/swept
//! pair quantifies over one consistent unknown initial state; unrelated
//! networks simply get independent variables.

use crate::sequential::{real_pi_positions, real_po_indices, unroll_into};
use netlist::{Aig, LatchInit, Lit};
use satsolver::{CircuitSat, EquivOutcome};
use std::collections::HashMap;

/// Outcome of [`bmc_sec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecResult {
    /// Every checked frame was proved equal (`false` when a difference was
    /// found *or* any frame stayed undetermined).
    pub equivalent: bool,
    /// First frame with a proved output difference.
    pub counterexample_frame: Option<usize>,
    /// Frames actually checked (the scan stops at a counter-example).
    pub frames_checked: usize,
    /// Some frame's query exhausted its conflict budget, leaving the
    /// verdict inconclusive.
    pub undetermined: bool,
}

/// Checks sequential equivalence of `a` and `b` over the first `frames`
/// time steps.
///
/// The real (non-latch) primary inputs are matched by position and shared
/// between the unrolled copies; the real primary outputs are compared by
/// position.  The verdict is exact up to the bound: `equivalent` with
/// `undetermined == false` means no input sequence of length `frames` can
/// distinguish the networks from their initial states.
///
/// # Panics
///
/// Panics if `frames` is zero or the networks disagree in their number of
/// real primary inputs or outputs.
pub fn bmc_sec(a: &Aig, b: &Aig, frames: usize, conflict_budget: u64) -> SecResult {
    assert!(frames > 0, "at least one frame must be checked");
    let a_pis = real_pi_positions(a);
    let b_pis = real_pi_positions(b);
    assert_eq!(
        a_pis.len(),
        b_pis.len(),
        "the networks disagree in their number of real primary inputs"
    );
    assert_eq!(
        real_po_indices(a).len(),
        real_po_indices(b).len(),
        "the networks disagree in their number of real primary outputs"
    );

    let mut joint = Aig::new();
    // Shared per-frame primary inputs, named after `a`'s.
    let frame_pis: Vec<Vec<Lit>> = (0..frames)
        .map(|f| {
            a_pis
                .iter()
                .map(|&p| joint.add_input(format!("{}@{f}", a.input_name(p))))
                .collect()
        })
        .collect();
    // Frame-0 states; `X`-initialised variables are shared by latch name.
    let mut x_vars: HashMap<String, Lit> = HashMap::new();
    let mut frame0 = |joint: &mut Aig, net: &Aig| -> Vec<Lit> {
        net.latches()
            .iter()
            .map(|latch| match latch.init {
                LatchInit::Zero => Lit::FALSE,
                LatchInit::One => Lit::TRUE,
                LatchInit::X => {
                    let name = net.input_name(latch.state_input).to_string();
                    *x_vars
                        .entry(name.clone())
                        .or_insert_with(|| joint.add_input(format!("{name}@init")))
                }
            })
            .collect()
    };
    let a0 = frame0(&mut joint, a);
    let b0 = frame0(&mut joint, b);
    let unrolled_a = unroll_into(&mut joint, a, a0, &frame_pis);
    let unrolled_b = unroll_into(&mut joint, b, b0, &frame_pis);

    // Per-frame difference: OR of XORs over the position-matched outputs.
    let diffs: Vec<Lit> = (0..frames)
        .map(|f| {
            let xors: Vec<Lit> = unrolled_a.outputs[f]
                .iter()
                .zip(&unrolled_b.outputs[f])
                .map(|(&x, &y)| joint.xor(x, y))
                .collect();
            joint.or_many(&xors)
        })
        .collect();

    // One incremental solver across the frames: clauses learned proving
    // frame `f` stay useful for frame `f + 1`.
    let mut sat = CircuitSat::new(&joint);
    let mut undetermined = false;
    for (f, &diff) in diffs.iter().enumerate() {
        match sat.prove_constant(diff, false, conflict_budget) {
            EquivOutcome::Equivalent => {}
            EquivOutcome::CounterExample(_) => {
                return SecResult {
                    equivalent: false,
                    counterexample_frame: Some(f),
                    frames_checked: f + 1,
                    undetermined,
                };
            }
            EquivOutcome::Undetermined => undetermined = true,
        }
    }
    SecResult {
        equivalent: !undetermined,
        counterexample_frame: None,
        frames_checked: frames,
        undetermined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-bit counter with an enable input and a carry-out output.
    fn counter() -> Aig {
        counter_with_b0_init(LatchInit::Zero)
    }

    fn counter_with_b0_init(b0_init: LatchInit) -> Aig {
        let mut aig = Aig::new();
        let en = aig.add_input("en");
        let b0 = aig.add_latch("b0", b0_init);
        let b1 = aig.add_latch("b1", LatchInit::Zero);
        let n0 = aig.xor(b0, en);
        let c0 = aig.and(b0, en);
        let n1 = aig.xor(b1, c0);
        let carry = aig.and(b1, c0);
        aig.set_latch_next(0, n0);
        aig.set_latch_next(1, n1);
        aig.add_output("carry", carry);
        aig
    }

    #[test]
    fn a_network_is_equivalent_to_itself() {
        let aig = counter();
        let result = bmc_sec(&aig, &aig, 6, 100_000);
        assert!(result.equivalent);
        assert_eq!(result.counterexample_frame, None);
        assert_eq!(result.frames_checked, 6);
        assert!(!result.undetermined);
    }

    #[test]
    fn a_flipped_initial_value_is_caught() {
        let good = counter();
        let bad = counter_with_b0_init(LatchInit::One);
        let result = bmc_sec(&good, &bad, 6, 100_000);
        assert!(!result.equivalent);
        // b0 = 1 at frame 0 makes the counters diverge; the carry output
        // first differs within two steps of enabling.
        assert!(result.counterexample_frame.is_some());
    }

    #[test]
    fn distinct_functions_diverge_at_the_right_frame() {
        // Latch-free pair: a buffer vs an inverter differ at frame 0.
        let mut a = Aig::new();
        let x = a.add_input("x");
        a.add_output("y", x);
        let mut b = Aig::new();
        let x = b.add_input("x");
        b.add_output("y", !x);
        let result = bmc_sec(&a, &b, 3, 100_000);
        assert_eq!(result.counterexample_frame, Some(0));
        assert_eq!(result.frames_checked, 1);
    }

    #[test]
    fn shared_x_init_makes_identical_networks_equivalent() {
        // An X-initialised latch feeding the output: each copy alone is
        // nondeterministic, but sharing the frame-0 variable by name makes
        // the pair provably equal.
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let q = aig.add_latch("q", LatchInit::X);
        aig.set_latch_next(0, d);
        aig.add_output("y", q);
        let result = bmc_sec(&aig, &aig.clone(), 4, 100_000);
        assert!(
            result.equivalent,
            "shared X variables must line up: {result:?}"
        );
    }
}
