//! Parallel SAT proving over speculative candidate batches.
//!
//! PR 3 made simulation scale with worker threads, which left the SAT
//! solver as the engine's serial bottleneck: every candidate/driver pair was
//! proved one after the other on a single incremental solver.  This module
//! proves **batches** of candidates concurrently — one [`CircuitSat`] slot
//! per proof attempt, workers under [`std::thread::scope`] — while keeping
//! the sweep **byte-identical for every `sat_parallelism` × `num_threads` ×
//! batch policy × shard count**.  The guarantee rests on three rules:
//!
//! 1. **Prefix batch formation** (in the session) walks the pending
//!    candidates in canonical order and extends the batch while the next
//!    live candidate is *compatible* with it (by the configured
//!    [`crate::report::BatchPolicy`]) and its solver slot is free; the
//!    first incompatible candidate **terminates** the batch — it is never
//!    skipped over.  Batches are therefore always a prefix of the canonical
//!    candidate order, so the commit order of candidates is the strict
//!    sequential order no matter how batches are cut.
//! 2. **Slot-keyed proving** ([`ParallelProver::prove_batch`]): every item
//!    carries its solver slot, fixed by its candidate id
//!    (`candidate % MAX_BATCH`, see [`ProofItem::slot`]) — *not* by its
//!    position in the batch — and runs on that slot of the session's
//!    persistent pool.  Which worker thread runs an item never changes what
//!    the item computes.
//! 3. **Commit-time validation with slot restore** (in the session): at the
//!    barrier the results replay in item order.  Before replaying an item
//!    the session re-derives the driver list the sequential engine would
//!    examine; if an earlier commit (a merge or a counter-example
//!    refinement) changed it, the speculative result is **discarded**
//!    (counted in [`crate::SweepReport::sat_parallel_conflicts`]) *and the
//!    slot solver is restored to its pre-query snapshot* (captured by the
//!    worker just before the query), so a discarded query leaves no trace
//!    in the slot's clause/activity history.  The candidate retries in a
//!    later batch.
//!
//! Together these make the committed operation sequence — SAT queries per
//! slot, counter-examples, merges, and hence the output AIGER — equal *by
//! construction* to the one a batch-size-1 sequential sweep would commit:
//! rule 1 fixes the candidate order, rule 3 fixes each slot's committed
//! query history, and each committed query's answer is a pure function of
//! its slot history.  Batch policies and shard counts only change how much
//! speculative work is wasted, never what is committed.
//!
//! [`ParallelProver::prove_batch_sharded`] proves the same batches under a
//! fixed partition of the slot space into `K` contiguous shards
//! ([`shard_slots`]), each proved sequentially by an isolated sub-worker —
//! the thread-local rehearsal of distributing slot ranges across processes
//! through the checkpoint codec (see `ARCHITECTURE.md`).
//!
//! ```
//! use netlist::{Aig, Lit};
//! use satsolver::CircuitSat;
//! use stp_sweep::prover::{ParallelProver, ProofItem, ProofOutcome, WorkerBudget, MAX_BATCH};
//! use stp_sweep::Budget;
//! use std::time::Instant;
//!
//! let mut aig = Aig::new();
//! let xs = aig.add_inputs("x", 2);
//! let f = aig.and(xs[0], xs[1]);
//! let g = aig.and(xs[1], xs[0]); // same function, distinct node
//! aig.add_output("f", f);
//! aig.add_output("g", g);
//!
//! let item = ProofItem {
//!     candidate: g.node(),
//!     attempts: 0,
//!     drivers: vec![(f.node(), false)],
//!     slot: g.node() % MAX_BATCH,
//! };
//! let mut pool: Vec<CircuitSat> = (0..MAX_BATCH).map(|_| CircuitSat::new(&aig)).collect();
//! let budget = Budget::unlimited();
//! let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
//! let prover = ParallelProver::new(&aig, None, 10_000, 4);
//! let proof = prover.prove_batch(std::slice::from_ref(&item), &mut pool, &worker_budget);
//! assert!(matches!(proof.results[0].outcome, ProofOutcome::Merge { .. }));
//! ```

use crate::observer::SatCallOutcome;
use crate::window::WindowIndex;
use netlist::{Aig, AigNode, Lit, NodeId};
use satsolver::{CircuitSat, CircuitSatSnapshot, EquivOutcome};
use std::ops::Range;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of solver slots in the session pool and the hard cap on batch
/// size.
///
/// Deliberately independent of `sat_parallelism` (batch formation must be
/// identical for every worker count); bounds the speculative work thrown
/// away when an early counter-example invalidates the rest of the batch.
pub const MAX_BATCH: usize = 16;

/// One speculative proof task: a candidate node and the driver list the
/// sequential engine would examine for it, frozen at batch-formation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofItem {
    /// The candidate node to merge away.
    pub candidate: NodeId,
    /// Driver attempts already consumed for this candidate in earlier
    /// batches (the running total behind the TFI limit).
    pub attempts: usize,
    /// Candidate drivers in class order: `(driver, complemented)`.
    pub drivers: Vec<(NodeId, bool)>,
    /// The solver-pool slot this item runs on: `candidate % MAX_BATCH`.
    ///
    /// Keying the slot by the (immutable) candidate id instead of the batch
    /// position means a candidate that retries after an invalidation lands
    /// on the *same* solver again, and — together with the pre-query
    /// restore — each slot's committed query history is independent of how
    /// batches were cut.  Batch formation never admits two items with the
    /// same slot.
    pub slot: usize,
}

/// Terminal decision of one proof item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofOutcome {
    /// The candidate equals `driver` (up to `complemented`); merge it.
    Merge {
        /// The surviving node the candidate merges onto.
        driver: NodeId,
        /// Whether the candidate is the complement of the driver.
        complemented: bool,
        /// Proved by exhaustive window simulation (no SAT call).
        by_simulation: bool,
    },
    /// A satisfiable SAT query disproved the pair; the assignment (one
    /// `bool` per primary input) must refine the candidate classes.
    CounterExample {
        /// The distinguishing input assignment.
        assignment: Vec<bool>,
    },
    /// The conflict budget ran out (`unDET`): mark the candidate
    /// don't-touch.
    DontTouch,
    /// Every driver was examined without a SAT verdict forcing a retry;
    /// the candidate is finished.
    Exhausted,
    /// The worker observed an exhausted [`crate::Budget`] and stopped
    /// before issuing its SAT query; nothing was proved.
    Aborted,
}

/// The result of speculatively proving one [`ProofItem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofResult {
    /// Window-refinement verdicts in driver order (`(driver, equivalent)`),
    /// replayed to observers on commit.
    pub verdicts: Vec<(NodeId, bool)>,
    /// The outcome of the item's SAT query, if one was issued (at most one:
    /// every query outcome terminates the item).
    pub sat_outcome: Option<SatCallOutcome>,
    /// The terminal decision.
    pub outcome: ProofOutcome,
    /// Driver attempts this item consumed (window verdicts included).
    pub attempts_used: usize,
    /// Wall-clock time the worker spent inside the SAT solver.
    pub sat_time: Duration,
}

/// The output of proving one batch: results in item order, plus for every
/// item that issued a SAT query from a position that can be invalidated
/// (every position but the first) a snapshot of its slot solver taken just
/// before the query.  The session restores the snapshot if commit-time
/// validation discards the result, erasing the discarded query from the
/// slot's history.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchProof {
    /// One result per item, in item order.
    pub results: Vec<ProofResult>,
    /// One optional pre-query slot snapshot per item, in item order.
    pub pre_query: Vec<Option<CircuitSatSnapshot>>,
}

/// Cooperative budget view handed to the workers: the wall-clock deadline
/// and cancellation are re-checked inside the batch so a tripped budget
/// stops speculative proving early (the authoritative check happens on the
/// session thread at commit time).
#[derive(Debug, Clone)]
pub struct WorkerBudget<'b> {
    budget: &'b crate::budget::Budget,
    started: Instant,
    committed_sat_calls: u64,
}

impl<'b> WorkerBudget<'b> {
    /// Captures the budget state at batch start.
    pub fn new(
        budget: &'b crate::budget::Budget,
        started: Instant,
        committed_sat_calls: u64,
    ) -> Self {
        WorkerBudget {
            budget,
            started,
            committed_sat_calls,
        }
    }

    fn exhausted(&self) -> bool {
        self.budget
            .exceeded(self.started, self.committed_sat_calls)
            .is_some()
    }
}

/// The contiguous slot range shard `shard` of `shards` owns when the pool
/// holds `num_slots` slots — the same arithmetic on every participant, so a
/// future cross-process reconciliation can recompute ownership from the
/// shard count alone.
pub fn shard_slots(shards: usize, shard: usize, num_slots: usize) -> Range<usize> {
    debug_assert!(shard < shards);
    (shard * num_slots / shards)..((shard + 1) * num_slots / shards)
}

/// The batch prover: owns the immutable per-run context and fans batches
/// out over scoped worker threads.
#[derive(Debug)]
pub struct ParallelProver<'a> {
    aig: &'a Aig,
    /// Window index for pre-SAT exhaustive refinement (`None` disables the
    /// shortcut, as for the baseline engine).
    windows: Option<&'a WindowIndex>,
    conflict_limit: u64,
    num_workers: usize,
}

impl<'a> ParallelProver<'a> {
    /// Creates a prover over the input network.
    ///
    /// `num_workers` is the `sat_parallelism` of the run; it only controls
    /// how many scoped threads prove a batch, never what the batch proves.
    pub fn new(
        aig: &'a Aig,
        windows: Option<&'a WindowIndex>,
        conflict_limit: u64,
        num_workers: usize,
    ) -> Self {
        ParallelProver {
            aig,
            windows,
            conflict_limit,
            num_workers: num_workers.max(1),
        }
    }

    /// Checks the batch's slot assignment against the pool and returns, for
    /// each pool slot, the index of the item that owns it.
    fn item_of_slot(items: &[ProofItem], num_slots: usize) -> Vec<Option<usize>> {
        let mut owner: Vec<Option<usize>> = vec![None; num_slots];
        for (index, item) in items.iter().enumerate() {
            assert!(
                item.slot < num_slots,
                "item slot {} outside the {num_slots}-slot pool",
                item.slot
            );
            assert!(
                owner[item.slot].is_none(),
                "two batch items share solver slot {}",
                item.slot
            );
            owner[item.slot] = Some(index);
        }
        owner
    }

    /// Proves every item of a batch and returns the results in item order.
    ///
    /// `solvers` is the session's full persistent pool; item `i` runs on
    /// `solvers[items[i].slot]` (slots are unique within a batch — batch
    /// formation guarantees it, and this method asserts it).  Results are a
    /// pure function of `(self.aig, self.windows, self.conflict_limit,
    /// items, slot histories)` — never of the worker count or scheduling —
    /// because the item→solver assignment is fixed before any worker starts
    /// and batch sequences are themselves deterministic.  Only the
    /// `Aborted` outcome depends on the budget, and a budget that aborts a
    /// worker also trips the authoritative session-side check.
    ///
    /// # Panics
    ///
    /// Panics if an item's slot is outside the pool or two items share a
    /// slot.
    pub fn prove_batch(
        &self,
        items: &[ProofItem],
        solvers: &mut [CircuitSat<'_>],
        budget: &WorkerBudget<'_>,
    ) -> BatchProof {
        let owner = Self::item_of_slot(items, solvers.len());
        if items.is_empty() {
            return BatchProof {
                results: Vec::new(),
                pre_query: Vec::new(),
            };
        }
        // Fixed item→solver pairing: unit `i` always runs item `i` on the
        // item's own slot, whatever distributes the units over workers.
        let mut units: Vec<(usize, &ProofItem, &mut CircuitSat<'_>)> = solvers
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, solver)| owner[slot].map(|i| (i, &items[i], solver)))
            .collect();
        units.sort_by_key(|&(index, _, _)| index);
        let workers = self.num_workers.min(items.len());
        if workers <= 1 {
            let mut results = Vec::with_capacity(items.len());
            let mut pre_query = Vec::with_capacity(items.len());
            for (index, item, solver) in units {
                let (result, snap) = self.prove_item(item, solver, budget, index > 0);
                results.push(result);
                pre_query.push(snap);
            }
            return BatchProof { results, pre_query };
        }
        // Work-stealing distribution: the queue only decides *who* runs a
        // unit, never *what* the unit computes.
        units.reverse();
        let work: Mutex<Vec<(usize, &ProofItem, &mut CircuitSat<'_>)>> = Mutex::new(units);
        let mut results: Vec<Option<ProofResult>> = items.iter().map(|_| None).collect();
        let mut pre_query: Vec<Option<CircuitSatSnapshot>> = items.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let work = &work;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        loop {
                            let unit = work.lock().expect("work queue poisoned").pop();
                            let Some((index, item, solver)) = unit else {
                                break;
                            };
                            produced
                                .push((index, self.prove_item(item, solver, budget, index > 0)));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                for (index, (result, snap)) in handle.join().expect("prover worker panicked") {
                    results[index] = Some(result);
                    pre_query[index] = snap;
                }
            }
        });
        BatchProof {
            results: results
                .into_iter()
                .map(|slot| slot.expect("every item was claimed by a worker"))
                .collect(),
            pre_query,
        }
    }

    /// Proves a batch under a `shards`-way partition of the slot space:
    /// shard `k` owns the contiguous slot range [`shard_slots`]`(shards, k,
    /// solvers.len())` and proves its items **sequentially in item order**
    /// on an isolated sub-worker thread.  Results are identical to
    /// [`prove_batch`](Self::prove_batch) for every shard count — the
    /// item→slot pairing, per-item computation and pre-query snapshots do
    /// not change, only which thread runs them — which is exactly the
    /// property the sharded-sweep proptests pin.
    ///
    /// # Panics
    ///
    /// Panics on the same slot-assignment violations as `prove_batch`.
    pub fn prove_batch_sharded(
        &self,
        items: &[ProofItem],
        solvers: &mut [CircuitSat<'_>],
        budget: &WorkerBudget<'_>,
        shards: usize,
    ) -> BatchProof {
        let num_slots = solvers.len();
        // Validate the slot assignment (in range, collision-free) exactly as
        // `prove_batch` does; the shard partition below relies on it.
        let _ = Self::item_of_slot(items, num_slots);
        if items.is_empty() {
            return BatchProof {
                results: Vec::new(),
                pre_query: Vec::new(),
            };
        }
        let shards = shards.clamp(1, num_slots);
        let mut results: Vec<Option<ProofResult>> = items.iter().map(|_| None).collect();
        let mut pre_query: Vec<Option<CircuitSatSnapshot>> = items.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut rest = &mut solvers[..];
            let mut handles = Vec::new();
            for shard in 0..shards {
                let range = shard_slots(shards, shard, num_slots);
                let taken = std::mem::take(&mut rest);
                let (head, tail) = taken.split_at_mut(range.len());
                rest = tail;
                // Item indices this shard owns, in item order.
                let mine: Vec<usize> = (0..items.len())
                    .filter(|&i| range.contains(&items[i].slot))
                    .collect();
                if mine.is_empty() {
                    continue;
                }
                let start = range.start;
                handles.push(scope.spawn(move || {
                    let mut produced = Vec::new();
                    for index in mine {
                        let item = &items[index];
                        let solver = &mut head[item.slot - start];
                        produced.push((index, self.prove_item(item, solver, budget, index > 0)));
                    }
                    produced
                }));
            }
            for handle in handles {
                for (index, (result, snap)) in handle.join().expect("shard worker panicked") {
                    results[index] = Some(result);
                    pre_query[index] = snap;
                }
            }
        });
        BatchProof {
            results: results
                .into_iter()
                .map(|slot| slot.expect("every item belongs to exactly one shard"))
                .collect(),
            pre_query,
        }
    }

    /// Proves a single item on its pool solver, outside any batch — used by
    /// the session to re-prove an item whose speculative proof was aborted
    /// by a budget stop (the aborted worker never touched its solver slot,
    /// so re-proving on the restored slot reproduces exactly the query an
    /// uninterrupted run would have issued).  `want_snapshot` requests the
    /// pre-query snapshot, as for mid-batch items.
    pub fn prove_one(
        &self,
        item: &ProofItem,
        solver: &mut CircuitSat<'_>,
        budget: &WorkerBudget<'_>,
        want_snapshot: bool,
    ) -> (ProofResult, Option<CircuitSatSnapshot>) {
        self.prove_item(item, solver, budget, want_snapshot)
    }

    /// Proves one item: the window-refinement filter followed by at most one
    /// SAT query on the item's pool solver — exactly one iteration of the
    /// sequential engine's per-candidate loop.  When `want_snapshot` is set
    /// the slot is snapshotted immediately before the (at most one) query so
    /// the session can undo it if the result is invalidated at commit.
    fn prove_item(
        &self,
        item: &ProofItem,
        solver: &mut CircuitSat<'_>,
        budget: &WorkerBudget<'_>,
        want_snapshot: bool,
    ) -> (ProofResult, Option<CircuitSatSnapshot>) {
        let mut verdicts = Vec::new();
        let mut attempts_used = 0usize;
        for &(driver, complemented) in &item.drivers {
            attempts_used += 1;
            if let Some(index) = self.windows {
                match index.compare(self.aig, item.candidate, driver, complemented) {
                    Some(false) => {
                        verdicts.push((driver, false));
                        continue;
                    }
                    Some(true) => {
                        verdicts.push((driver, true));
                        return (
                            ProofResult {
                                verdicts,
                                sat_outcome: None,
                                outcome: ProofOutcome::Merge {
                                    driver,
                                    complemented,
                                    by_simulation: true,
                                },
                                attempts_used,
                                sat_time: Duration::ZERO,
                            },
                            None,
                        );
                    }
                    None => {}
                }
            }
            if budget.exhausted() {
                return (
                    ProofResult {
                        verdicts,
                        sat_outcome: None,
                        outcome: ProofOutcome::Aborted,
                        attempts_used,
                        sat_time: Duration::ZERO,
                    },
                    None,
                );
            }
            let snapshot = want_snapshot.then(|| solver.snapshot());
            let sat_start = Instant::now();
            let outcome = solver.prove_equivalent(
                Lit::positive(item.candidate),
                Lit::new(driver, complemented),
                self.conflict_limit,
            );
            let sat_time = sat_start.elapsed();
            let (kind, terminal) = match outcome {
                EquivOutcome::Equivalent => (
                    SatCallOutcome::Unsat,
                    ProofOutcome::Merge {
                        driver,
                        complemented,
                        by_simulation: false,
                    },
                ),
                EquivOutcome::CounterExample(assignment) => (
                    SatCallOutcome::Sat,
                    ProofOutcome::CounterExample { assignment },
                ),
                EquivOutcome::Undetermined => {
                    (SatCallOutcome::Undetermined, ProofOutcome::DontTouch)
                }
            };
            return (
                ProofResult {
                    verdicts,
                    sat_outcome: Some(kind),
                    outcome: terminal,
                    attempts_used,
                    sat_time,
                },
                snapshot,
            );
        }
        (
            ProofResult {
                verdicts,
                sat_outcome: None,
                outcome: ProofOutcome::Exhausted,
                attempts_used,
                sat_time: Duration::ZERO,
            },
            None,
        )
    }
}

/// Per-node primary-input support bitsets, the cheap cone-overlap measure
/// behind support-disjoint batching: two nodes whose supports are disjoint
/// have disjoint transitive-fanin cones (up to constant-only logic).
#[derive(Debug, Clone)]
pub struct SupportIndex {
    words_per_node: usize,
    bits: Vec<u64>,
}

impl SupportIndex {
    /// Computes the PI support of every node in one topological pass.
    pub fn build(aig: &Aig) -> Self {
        let words_per_node = aig.num_inputs().div_ceil(64).max(1);
        let mut bits = vec![0u64; aig.num_nodes() * words_per_node];
        for id in aig.node_ids() {
            match aig.node(id) {
                AigNode::Const0 => {}
                AigNode::Input { position } => {
                    bits[id * words_per_node + position / 64] |= 1u64 << (position % 64);
                }
                AigNode::And { fanin0, fanin1 } => {
                    let (a, b) = (fanin0.node(), fanin1.node());
                    for w in 0..words_per_node {
                        bits[id * words_per_node + w] =
                            bits[a * words_per_node + w] | bits[b * words_per_node + w];
                    }
                }
            }
        }
        SupportIndex {
            words_per_node,
            bits,
        }
    }

    /// The support words of one node.
    pub fn support(&self, node: NodeId) -> &[u64] {
        &self.bits[node * self.words_per_node..(node + 1) * self.words_per_node]
    }

    /// ORs a node's support into an accumulator of `words_per_node` words.
    pub fn accumulate(&self, node: NodeId, acc: &mut [u64]) {
        for (a, w) in acc.iter_mut().zip(self.support(node)) {
            *a |= w;
        }
    }

    /// Whether a node's support is disjoint from the accumulator.
    pub fn disjoint(&self, node: NodeId, acc: &[u64]) -> bool {
        self.support(node).iter().zip(acc).all(|(w, a)| w & a == 0)
    }

    /// An all-zero accumulator of the right width.
    pub fn empty_accumulator(&self) -> Vec<u64> {
        vec![0u64; self.words_per_node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    fn sample_aig() -> (Aig, Vec<Lit>) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let f1 = aig.and(xs[0], xs[1]);
        // A structurally distinct node whose function is !f1 = !(x0 & x1):
        // !f1 & !(f1 & x1) collapses to !f1 but hashes differently.
        let f2_t = aig.and(f1, xs[1]);
        let f2 = aig.and(!f1, !f2_t);
        let g1 = aig.xor(xs[2], xs[3]);
        let h1 = aig.and(xs[4], xs[5]);
        let o = aig.or(f1, g1);
        aig.add_output("o", o);
        aig.add_output("f2", f2);
        aig.add_output("h", h1);
        (aig, vec![f1, f2, g1, h1])
    }

    fn fresh_pool(aig: &Aig) -> Vec<CircuitSat<'_>> {
        (0..MAX_BATCH).map(|_| CircuitSat::new(aig)).collect()
    }

    fn item(candidate: NodeId, drivers: Vec<(NodeId, bool)>) -> ProofItem {
        ProofItem {
            candidate,
            attempts: 0,
            drivers,
            slot: candidate % MAX_BATCH,
        }
    }

    #[test]
    fn supports_follow_the_fanin_cones() {
        let (aig, gates) = sample_aig();
        let index = SupportIndex::build(&aig);
        let f1 = gates[0].node();
        let g1 = gates[2].node();
        let h1 = gates[3].node();
        // f1 depends on x0,x1; g1 on x2,x3; h1 on x4,x5: pairwise disjoint.
        let mut acc = index.empty_accumulator();
        index.accumulate(f1, &mut acc);
        assert!(index.disjoint(g1, &acc));
        assert!(index.disjoint(h1, &acc));
        index.accumulate(g1, &mut acc);
        assert!(!index.disjoint(f1, &acc));
        assert!(!index.disjoint(g1, &acc));
        assert!(index.disjoint(h1, &acc));
        // Inputs support themselves; the constant supports nothing.
        assert_eq!(index.support(aig.inputs()[0]).iter().sum::<u64>(), 1);
        assert_eq!(index.support(0).iter().sum::<u64>(), 0);
    }

    #[test]
    fn shard_slots_partition_the_pool() {
        for shards in 1..=MAX_BATCH {
            let mut covered = Vec::new();
            for shard in 0..shards {
                let range = shard_slots(shards, shard, MAX_BATCH);
                covered.extend(range);
            }
            let expected: Vec<usize> = (0..MAX_BATCH).collect();
            assert_eq!(covered, expected, "{shards} shards");
        }
    }

    #[test]
    fn prove_batch_results_are_worker_count_independent() {
        let (aig, gates) = sample_aig();
        let f1 = gates[0].node();
        let f2 = gates[1].node();
        let g1 = gates[2].node();
        let h1 = gates[3].node();
        let items = vec![
            item(f2, vec![(f1, true)]),  // f2 == !f1
            item(h1, vec![(g1, false)]), // h1 != g1: counter-example
        ];
        let budget = Budget::unlimited();
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut reference: Option<Vec<ProofResult>> = None;
        for workers in [1usize, 2, 4] {
            // A fresh pool per worker count: slot histories must match.
            let mut solvers = fresh_pool(&aig);
            let prover = ParallelProver::new(&aig, None, 10_000, workers);
            let proof = prover.prove_batch(&items, &mut solvers, &worker_budget);
            let results = proof.results;
            assert_eq!(results.len(), 2);
            assert!(matches!(
                results[0].outcome,
                ProofOutcome::Merge {
                    driver,
                    complemented: true,
                    by_simulation: false,
                } if driver == f1
            ));
            assert_eq!(results[0].sat_outcome, Some(SatCallOutcome::Unsat));
            assert!(matches!(
                results[1].outcome,
                ProofOutcome::CounterExample { .. }
            ));
            // Item 0 never needs a pre-query snapshot; item 1 issued a query.
            assert!(proof.pre_query[0].is_none());
            assert!(proof.pre_query[1].is_some());
            if let Some(reference) = &reference {
                for (a, b) in reference.iter().zip(&results) {
                    assert_eq!(a.outcome, b.outcome, "{workers} workers");
                    assert_eq!(a.sat_outcome, b.sat_outcome);
                    assert_eq!(a.verdicts, b.verdicts);
                    assert_eq!(a.attempts_used, b.attempts_used);
                }
            } else {
                reference = Some(results);
            }
        }
    }

    #[test]
    fn sharded_proving_matches_unsharded_for_every_shard_count() {
        let (aig, gates) = sample_aig();
        let f1 = gates[0].node();
        let f2 = gates[1].node();
        let g1 = gates[2].node();
        let h1 = gates[3].node();
        let items = vec![
            item(f2, vec![(f1, true)]),
            item(h1, vec![(g1, false)]),
            item(g1, vec![(f1, false)]),
        ];
        let budget = Budget::unlimited();
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut solvers = fresh_pool(&aig);
        let prover = ParallelProver::new(&aig, None, 10_000, 4);
        let reference = prover.prove_batch(&items, &mut solvers, &worker_budget);
        // Wall-clock query times vary run to run; zero them before
        // comparing — everything else must be identical.
        let detimed = |results: &[ProofResult]| -> Vec<ProofResult> {
            results
                .iter()
                .cloned()
                .map(|mut r| {
                    r.sat_time = Duration::ZERO;
                    r
                })
                .collect()
        };
        for shards in [1usize, 2, 4, MAX_BATCH] {
            let mut solvers = fresh_pool(&aig);
            let proof = prover.prove_batch_sharded(&items, &mut solvers, &worker_budget, shards);
            assert_eq!(
                detimed(&proof.results),
                detimed(&reference.results),
                "{shards} shards"
            );
            assert_eq!(
                proof
                    .pre_query
                    .iter()
                    .map(Option::is_some)
                    .collect::<Vec<_>>(),
                reference
                    .pre_query
                    .iter()
                    .map(Option::is_some)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn restoring_a_pre_query_snapshot_erases_the_query() {
        let (aig, gates) = sample_aig();
        let f1 = gates[0].node();
        let f2 = gates[1].node();
        let g1 = gates[2].node();
        let h1 = gates[3].node();
        let items = vec![item(f2, vec![(f1, true)]), item(h1, vec![(g1, false)])];
        let budget = Budget::unlimited();
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut solvers = fresh_pool(&aig);
        let prover = ParallelProver::new(&aig, None, 10_000, 1);
        let proof = prover.prove_batch(&items, &mut solvers, &worker_budget);
        let slot = items[1].slot;
        let polluted = solvers[slot].snapshot();
        let pre = proof.pre_query[1].clone().expect("item 1 issued a query");
        assert_ne!(polluted, pre, "the query must have changed the solver");
        // Restore, then re-prove: the slot behaves as if the first query
        // never happened.
        solvers[slot] = CircuitSat::from_snapshot(&aig, &pre).expect("snapshot restores");
        let (replayed, _) = prover.prove_one(&items[1], &mut solvers[slot], &worker_budget, false);
        assert_eq!(replayed.outcome, proof.results[1].outcome);
        assert_eq!(solvers[slot].snapshot(), polluted);
    }

    #[test]
    fn exhausted_budget_aborts_before_the_sat_query() {
        let (aig, gates) = sample_aig();
        let items = vec![item(gates[1].node(), vec![(gates[0].node(), true)])];
        let budget = Budget::unlimited().with_max_sat_calls(0);
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut solvers = fresh_pool(&aig);
        let prover = ParallelProver::new(&aig, None, 10_000, 2);
        let proof = prover.prove_batch(&items, &mut solvers, &worker_budget);
        assert!(matches!(proof.results[0].outcome, ProofOutcome::Aborted));
        assert_eq!(proof.results[0].sat_outcome, None);
        assert!(proof.pre_query[0].is_none());
    }

    #[test]
    fn window_refinement_settles_pairs_without_sat() {
        let (aig, gates) = sample_aig();
        let windows = WindowIndex::build(&aig, 8);
        let f1 = gates[0].node();
        let f2 = gates[1].node();
        let g1 = gates[2].node();
        let items = vec![item(f2, vec![(g1, false), (f1, true)])];
        let budget = Budget::unlimited();
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut solvers = fresh_pool(&aig);
        let prover = ParallelProver::new(&aig, Some(&windows), 10_000, 1);
        let proof = prover.prove_batch(&items, &mut solvers, &worker_budget);
        let results = &proof.results;
        // g1 disproved by its window, f1 proved by its window: no SAT call.
        assert_eq!(results[0].verdicts, vec![(g1, false), (f1, true)]);
        assert_eq!(results[0].sat_outcome, None);
        assert!(matches!(
            results[0].outcome,
            ProofOutcome::Merge {
                by_simulation: true,
                ..
            }
        ));
        assert_eq!(results[0].attempts_used, 2);
    }

    #[test]
    fn duplicate_slots_are_rejected() {
        let (aig, gates) = sample_aig();
        let f1 = gates[0].node();
        let mut a = item(gates[1].node(), vec![(f1, true)]);
        let mut b = item(gates[2].node(), vec![(f1, false)]);
        a.slot = 3;
        b.slot = 3;
        let budget = Budget::unlimited();
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut solvers = fresh_pool(&aig);
        let prover = ParallelProver::new(&aig, None, 10_000, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prover.prove_batch(&[a, b], &mut solvers, &worker_budget)
        }));
        assert!(result.is_err());
    }
}
