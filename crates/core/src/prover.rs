//! Parallel SAT proving over independent candidate pairs.
//!
//! PR 3 made simulation scale with worker threads, which left the SAT
//! solver as the engine's serial bottleneck: every candidate/driver pair was
//! proved one after the other on a single incremental solver.  This module
//! turns the per-round candidate queue into **TFI-disjoint batches** that
//! are proved concurrently — one [`CircuitSat`] instance per proof attempt,
//! workers under [`std::thread::scope`] — while keeping the sweep
//! **deterministic for every `sat_parallelism`**:
//!
//! 1. **Batch formation** (in the session) walks the pending candidates in
//!    canonical order and greedily selects up to [`MAX_BATCH`] candidates
//!    whose proof cones (candidate plus every driver, measured by their
//!    primary-input support) are pairwise disjoint.  Formation never looks
//!    at the worker count, so the batch sequence is a pure function of the
//!    sweep state.
//! 2. **Proving** ([`ParallelProver::prove_batch`]) runs every
//!    [`ProofItem`] independently on a **deterministically assigned
//!    solver**: the session keeps a pool of [`MAX_BATCH`] persistent
//!    [`CircuitSat`] instances and item `i` of every batch always runs on
//!    pool slot `i`.  Within a batch the slots are disjoint, so workers
//!    never contend; across batches each slot's query history is a pure
//!    function of the (deterministic) batch sequence — never of worker
//!    count or scheduling — so every slot keeps the learned clauses and
//!    lazily encoded cones of its past queries without breaking
//!    determinism.  Items are distributed over the workers through a
//!    work-stealing queue; since item results do not depend on *which*
//!    worker ran them, any schedule commits the same sweep.
//! 3. **Commitment** (in the session) replays the results at a barrier, in
//!    canonical candidate order.  Before replaying an item the session
//!    re-derives the driver list the sequential engine would examine at
//!    this point; if an earlier commit (a merge or a counter-example
//!    refinement) changed the consumed prefix, the speculative result is
//!    **discarded** — counted in [`crate::SweepReport::sat_parallel_conflicts`]
//!    — and the candidate is retried in a later batch.  Every committed SAT
//!    call, counter-example and merge is therefore identical for any
//!    `sat_parallelism` and any `num_threads`.
//!
//! The TFI-disjointness rule does not *guarantee* that a committed
//! counter-example leaves later items valid (a counter-example assigns all
//! primary inputs and refines every candidate class), it only makes
//! invalidation unlikely; the commit-time validation is what carries the
//! determinism guarantee.

use crate::observer::SatCallOutcome;
use crate::window::WindowIndex;
use netlist::{Aig, AigNode, Lit, NodeId};
use satsolver::{CircuitSat, EquivOutcome};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Maximum number of candidates per batch.
///
/// Deliberately independent of `sat_parallelism` (batch formation must be
/// identical for every worker count); bounds the speculative work thrown
/// away when an early counter-example invalidates the rest of the batch.
pub const MAX_BATCH: usize = 16;

/// One speculative proof task: a candidate node and the driver list the
/// sequential engine would examine for it, frozen at batch-formation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofItem {
    /// The candidate node to merge away.
    pub candidate: NodeId,
    /// Driver attempts already consumed for this candidate in earlier
    /// batches (the running total behind the TFI limit).
    pub attempts: usize,
    /// Candidate drivers in class order: `(driver, complemented)`.
    pub drivers: Vec<(NodeId, bool)>,
}

/// Terminal decision of one proof item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofOutcome {
    /// The candidate equals `driver` (up to `complemented`); merge it.
    Merge {
        /// The surviving node the candidate merges onto.
        driver: NodeId,
        /// Whether the candidate is the complement of the driver.
        complemented: bool,
        /// Proved by exhaustive window simulation (no SAT call).
        by_simulation: bool,
    },
    /// A satisfiable SAT query disproved the pair; the assignment (one
    /// `bool` per primary input) must refine the candidate classes.
    CounterExample {
        /// The distinguishing input assignment.
        assignment: Vec<bool>,
    },
    /// The conflict budget ran out (`unDET`): mark the candidate
    /// don't-touch.
    DontTouch,
    /// Every driver was examined without a SAT verdict forcing a retry;
    /// the candidate is finished.
    Exhausted,
    /// The worker observed an exhausted [`crate::Budget`] and stopped
    /// before issuing its SAT query; nothing was proved.
    Aborted,
}

/// The result of speculatively proving one [`ProofItem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofResult {
    /// Window-refinement verdicts in driver order (`(driver, equivalent)`),
    /// replayed to observers on commit.
    pub verdicts: Vec<(NodeId, bool)>,
    /// The outcome of the item's SAT query, if one was issued (at most one:
    /// every query outcome terminates the item).
    pub sat_outcome: Option<SatCallOutcome>,
    /// The terminal decision.
    pub outcome: ProofOutcome,
    /// Driver attempts this item consumed (window verdicts included).
    pub attempts_used: usize,
    /// Wall-clock time the worker spent inside the SAT solver.
    pub sat_time: Duration,
}

/// Cooperative budget view handed to the workers: the wall-clock deadline
/// and cancellation are re-checked inside the batch so a tripped budget
/// stops speculative proving early (the authoritative check happens on the
/// session thread at commit time).
#[derive(Debug, Clone)]
pub struct WorkerBudget<'b> {
    budget: &'b crate::budget::Budget,
    started: Instant,
    committed_sat_calls: u64,
}

impl<'b> WorkerBudget<'b> {
    /// Captures the budget state at batch start.
    pub fn new(
        budget: &'b crate::budget::Budget,
        started: Instant,
        committed_sat_calls: u64,
    ) -> Self {
        WorkerBudget {
            budget,
            started,
            committed_sat_calls,
        }
    }

    fn exhausted(&self) -> bool {
        self.budget
            .exceeded(self.started, self.committed_sat_calls)
            .is_some()
    }
}

/// The batch prover: owns the immutable per-run context and fans batches
/// out over scoped worker threads.
#[derive(Debug)]
pub struct ParallelProver<'a> {
    aig: &'a Aig,
    /// Window index for pre-SAT exhaustive refinement (`None` disables the
    /// shortcut, as for the baseline engine).
    windows: Option<&'a WindowIndex>,
    conflict_limit: u64,
    num_workers: usize,
}

impl<'a> ParallelProver<'a> {
    /// Creates a prover over the input network.
    ///
    /// `num_workers` is the `sat_parallelism` of the run; it only controls
    /// how many scoped threads prove a batch, never what the batch proves.
    pub fn new(
        aig: &'a Aig,
        windows: Option<&'a WindowIndex>,
        conflict_limit: u64,
        num_workers: usize,
    ) -> Self {
        ParallelProver {
            aig,
            windows,
            conflict_limit,
            num_workers: num_workers.max(1),
        }
    }

    /// Proves every item of a batch and returns the results in item order.
    ///
    /// `solvers` is the session's persistent solver pool; item `i` runs on
    /// `solvers[i]`, so the pool must hold at least one slot per item.
    /// Results are a pure function of `(self.aig, self.windows,
    /// self.conflict_limit, items, slot histories)` — never of the worker
    /// count or scheduling — because the item→solver assignment is fixed
    /// before any worker starts and batch sequences are themselves
    /// deterministic.  Only the `Aborted` outcome depends on the budget,
    /// and a budget that aborts a worker also trips the authoritative
    /// session-side check.
    ///
    /// # Panics
    ///
    /// Panics if `solvers` holds fewer slots than `items`.
    pub fn prove_batch(
        &self,
        items: &[ProofItem],
        solvers: &mut [CircuitSat<'_>],
        budget: &WorkerBudget<'_>,
    ) -> Vec<ProofResult> {
        assert!(
            solvers.len() >= items.len(),
            "the solver pool must hold one slot per batch item"
        );
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.num_workers.min(items.len());
        if workers <= 1 {
            return items
                .iter()
                .zip(solvers.iter_mut())
                .map(|(item, solver)| self.prove_item(item, solver, budget))
                .collect();
        }
        // Fixed item→solver pairing, work-stealing distribution: the queue
        // only decides *who* runs a unit, never *what* the unit computes.
        let work: Mutex<Vec<(usize, &ProofItem, &mut CircuitSat<'_>)>> = Mutex::new(
            items
                .iter()
                .enumerate()
                .zip(solvers.iter_mut())
                .map(|((index, item), solver)| (index, item, solver))
                .rev()
                .collect(),
        );
        let mut slots: Vec<Option<ProofResult>> = items.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let work = &work;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        loop {
                            let unit = work.lock().expect("work queue poisoned").pop();
                            let Some((index, item, solver)) = unit else {
                                break;
                            };
                            produced.push((index, self.prove_item(item, solver, budget)));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                for (index, result) in handle.join().expect("prover worker panicked") {
                    slots[index] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every item was claimed by a worker"))
            .collect()
    }

    /// Proves a single item on its pool solver, outside any batch — used by
    /// the session to re-prove an item whose speculative proof was aborted
    /// by a budget stop (the aborted worker never touched its solver slot,
    /// so re-proving on the restored slot reproduces exactly the query an
    /// uninterrupted run would have issued).
    pub fn prove_one(
        &self,
        item: &ProofItem,
        solver: &mut CircuitSat<'_>,
        budget: &WorkerBudget<'_>,
    ) -> ProofResult {
        self.prove_item(item, solver, budget)
    }

    /// Proves one item: the window-refinement filter followed by at most one
    /// SAT query on the item's pool solver — exactly one iteration of the
    /// sequential engine's per-candidate loop.
    fn prove_item(
        &self,
        item: &ProofItem,
        solver: &mut CircuitSat<'_>,
        budget: &WorkerBudget<'_>,
    ) -> ProofResult {
        let mut verdicts = Vec::new();
        let mut attempts_used = 0usize;
        for &(driver, complemented) in &item.drivers {
            attempts_used += 1;
            if let Some(index) = self.windows {
                match index.compare(self.aig, item.candidate, driver, complemented) {
                    Some(false) => {
                        verdicts.push((driver, false));
                        continue;
                    }
                    Some(true) => {
                        verdicts.push((driver, true));
                        return ProofResult {
                            verdicts,
                            sat_outcome: None,
                            outcome: ProofOutcome::Merge {
                                driver,
                                complemented,
                                by_simulation: true,
                            },
                            attempts_used,
                            sat_time: Duration::ZERO,
                        };
                    }
                    None => {}
                }
            }
            if budget.exhausted() {
                return ProofResult {
                    verdicts,
                    sat_outcome: None,
                    outcome: ProofOutcome::Aborted,
                    attempts_used,
                    sat_time: Duration::ZERO,
                };
            }
            let sat_start = Instant::now();
            let outcome = solver.prove_equivalent(
                Lit::positive(item.candidate),
                Lit::new(driver, complemented),
                self.conflict_limit,
            );
            let sat_time = sat_start.elapsed();
            let (kind, terminal) = match outcome {
                EquivOutcome::Equivalent => (
                    SatCallOutcome::Unsat,
                    ProofOutcome::Merge {
                        driver,
                        complemented,
                        by_simulation: false,
                    },
                ),
                EquivOutcome::CounterExample(assignment) => (
                    SatCallOutcome::Sat,
                    ProofOutcome::CounterExample { assignment },
                ),
                EquivOutcome::Undetermined => {
                    (SatCallOutcome::Undetermined, ProofOutcome::DontTouch)
                }
            };
            return ProofResult {
                verdicts,
                sat_outcome: Some(kind),
                outcome: terminal,
                attempts_used,
                sat_time,
            };
        }
        ProofResult {
            verdicts,
            sat_outcome: None,
            outcome: ProofOutcome::Exhausted,
            attempts_used,
            sat_time: Duration::ZERO,
        }
    }
}

/// Per-node primary-input support bitsets, the cheap cone-overlap measure
/// behind TFI-disjoint batching: two nodes whose supports are disjoint have
/// disjoint transitive-fanin cones (up to constant-only logic).
#[derive(Debug, Clone)]
pub struct SupportIndex {
    words_per_node: usize,
    bits: Vec<u64>,
}

impl SupportIndex {
    /// Computes the PI support of every node in one topological pass.
    pub fn build(aig: &Aig) -> Self {
        let words_per_node = aig.num_inputs().div_ceil(64).max(1);
        let mut bits = vec![0u64; aig.num_nodes() * words_per_node];
        for id in aig.node_ids() {
            match aig.node(id) {
                AigNode::Const0 => {}
                AigNode::Input { position } => {
                    bits[id * words_per_node + position / 64] |= 1u64 << (position % 64);
                }
                AigNode::And { fanin0, fanin1 } => {
                    let (a, b) = (fanin0.node(), fanin1.node());
                    for w in 0..words_per_node {
                        bits[id * words_per_node + w] =
                            bits[a * words_per_node + w] | bits[b * words_per_node + w];
                    }
                }
            }
        }
        SupportIndex {
            words_per_node,
            bits,
        }
    }

    /// The support words of one node.
    pub fn support(&self, node: NodeId) -> &[u64] {
        &self.bits[node * self.words_per_node..(node + 1) * self.words_per_node]
    }

    /// ORs a node's support into an accumulator of `words_per_node` words.
    pub fn accumulate(&self, node: NodeId, acc: &mut [u64]) {
        for (a, w) in acc.iter_mut().zip(self.support(node)) {
            *a |= w;
        }
    }

    /// Whether a node's support is disjoint from the accumulator.
    pub fn disjoint(&self, node: NodeId, acc: &[u64]) -> bool {
        self.support(node).iter().zip(acc).all(|(w, a)| w & a == 0)
    }

    /// An all-zero accumulator of the right width.
    pub fn empty_accumulator(&self) -> Vec<u64> {
        vec![0u64; self.words_per_node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    fn sample_aig() -> (Aig, Vec<Lit>) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let f1 = aig.and(xs[0], xs[1]);
        // A structurally distinct node whose function is !f1 = !(x0 & x1):
        // !f1 & !(f1 & x1) collapses to !f1 but hashes differently.
        let f2_t = aig.and(f1, xs[1]);
        let f2 = aig.and(!f1, !f2_t);
        let g1 = aig.xor(xs[2], xs[3]);
        let h1 = aig.and(xs[4], xs[5]);
        let o = aig.or(f1, g1);
        aig.add_output("o", o);
        aig.add_output("f2", f2);
        aig.add_output("h", h1);
        (aig, vec![f1, f2, g1, h1])
    }

    #[test]
    fn supports_follow_the_fanin_cones() {
        let (aig, gates) = sample_aig();
        let index = SupportIndex::build(&aig);
        let f1 = gates[0].node();
        let g1 = gates[2].node();
        let h1 = gates[3].node();
        // f1 depends on x0,x1; g1 on x2,x3; h1 on x4,x5: pairwise disjoint.
        let mut acc = index.empty_accumulator();
        index.accumulate(f1, &mut acc);
        assert!(index.disjoint(g1, &acc));
        assert!(index.disjoint(h1, &acc));
        index.accumulate(g1, &mut acc);
        assert!(!index.disjoint(f1, &acc));
        assert!(!index.disjoint(g1, &acc));
        assert!(index.disjoint(h1, &acc));
        // Inputs support themselves; the constant supports nothing.
        assert_eq!(index.support(aig.inputs()[0]).iter().sum::<u64>(), 1);
        assert_eq!(index.support(0).iter().sum::<u64>(), 0);
    }

    #[test]
    fn prove_batch_results_are_worker_count_independent() {
        let (aig, gates) = sample_aig();
        let f1 = gates[0].node();
        let f2 = gates[1].node();
        let g1 = gates[2].node();
        let h1 = gates[3].node();
        let items = vec![
            ProofItem {
                candidate: f2,
                attempts: 0,
                drivers: vec![(f1, true)], // f2 == !f1
            },
            ProofItem {
                candidate: h1,
                attempts: 0,
                drivers: vec![(g1, false)], // h1 != g1: counter-example
            },
        ];
        let budget = Budget::unlimited();
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut reference: Option<Vec<ProofResult>> = None;
        for workers in [1usize, 2, 4] {
            // A fresh pool per worker count: slot histories must match.
            let mut solvers: Vec<CircuitSat> =
                (0..items.len()).map(|_| CircuitSat::new(&aig)).collect();
            let prover = ParallelProver::new(&aig, None, 10_000, workers);
            let results = prover.prove_batch(&items, &mut solvers, &worker_budget);
            assert_eq!(results.len(), 2);
            assert!(matches!(
                results[0].outcome,
                ProofOutcome::Merge {
                    driver,
                    complemented: true,
                    by_simulation: false,
                } if driver == f1
            ));
            assert_eq!(results[0].sat_outcome, Some(SatCallOutcome::Unsat));
            assert!(matches!(
                results[1].outcome,
                ProofOutcome::CounterExample { .. }
            ));
            if let Some(reference) = &reference {
                for (a, b) in reference.iter().zip(&results) {
                    assert_eq!(a.outcome, b.outcome, "{workers} workers");
                    assert_eq!(a.sat_outcome, b.sat_outcome);
                    assert_eq!(a.verdicts, b.verdicts);
                    assert_eq!(a.attempts_used, b.attempts_used);
                }
            } else {
                reference = Some(results);
            }
        }
    }

    #[test]
    fn exhausted_budget_aborts_before_the_sat_query() {
        let (aig, gates) = sample_aig();
        let items = vec![ProofItem {
            candidate: gates[1].node(),
            attempts: 0,
            drivers: vec![(gates[0].node(), true)],
        }];
        let budget = Budget::unlimited().with_max_sat_calls(0);
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut solvers = vec![CircuitSat::new(&aig)];
        let prover = ParallelProver::new(&aig, None, 10_000, 2);
        let results = prover.prove_batch(&items, &mut solvers, &worker_budget);
        assert!(matches!(results[0].outcome, ProofOutcome::Aborted));
        assert_eq!(results[0].sat_outcome, None);
    }

    #[test]
    fn window_refinement_settles_pairs_without_sat() {
        let (aig, gates) = sample_aig();
        let windows = WindowIndex::build(&aig, 8);
        let f1 = gates[0].node();
        let f2 = gates[1].node();
        let g1 = gates[2].node();
        let items = vec![ProofItem {
            candidate: f2,
            attempts: 0,
            drivers: vec![(g1, false), (f1, true)],
        }];
        let budget = Budget::unlimited();
        let worker_budget = WorkerBudget::new(&budget, Instant::now(), 0);
        let mut solvers = vec![CircuitSat::new(&aig)];
        let prover = ParallelProver::new(&aig, Some(&windows), 10_000, 1);
        let results = prover.prove_batch(&items, &mut solvers, &worker_budget);
        // g1 disproved by its window, f1 proved by its window: no SAT call.
        assert_eq!(results[0].verdicts, vec![(g1, false), (f1, true)]);
        assert_eq!(results[0].sat_outcome, None);
        assert!(matches!(
            results[0].outcome,
            ProofOutcome::Merge {
                by_simulation: true,
                ..
            }
        ));
        assert_eq!(results[0].attempts_used, 2);
    }
}
