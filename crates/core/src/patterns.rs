//! SAT-guided initial simulation patterns (Section IV-A of the paper).
//!
//! Purely random patterns leave two weaknesses that inflate the candidate
//! equivalence classes:
//!
//! 1. nodes that happen to simulate to all-zeros or all-ones look like
//!    constants even when they are not, and
//! 2. nodes with very unbalanced signatures (almost all zeros or almost all
//!    ones) collide with many other unbalanced nodes.
//!
//! The two-round SAT-guided scheme (after Amarù et al., DAC'20) fixes both:
//! round one asks the SAT solver for assignments that flip would-be-constant
//! nodes to their missing value; round two asks for assignments that raise
//! the toggle count of low-diversity nodes.  Every satisfying assignment
//! becomes an additional simulation pattern.

use bitsim::{AigSimulator, PatternSet};
use netlist::{Aig, Lit};
use satsolver::CircuitSat;
use std::collections::HashSet;

/// Configuration of the SAT-guided pattern generator.
#[derive(Debug, Clone, Copy)]
pub struct PatternGenConfig {
    /// Number of purely random base patterns.
    pub num_random: usize,
    /// Seed of the random generator.
    pub seed: u64,
    /// Maximum number of SAT queries spent in round one (constants).
    pub round1_budget: usize,
    /// Maximum number of SAT queries spent in round two (low diversity).
    pub round2_budget: usize,
    /// Conflict limit per SAT query.
    pub conflict_limit: u64,
    /// A node whose fraction of ones lies outside `[bias, 1 - bias]` is
    /// considered low-diversity in round two.
    pub bias: f64,
}

impl Default for PatternGenConfig {
    fn default() -> Self {
        PatternGenConfig {
            num_random: 256,
            seed: 0xC0FFEE,
            round1_budget: 64,
            round2_budget: 64,
            conflict_limit: 1_000,
            bias: 0.05,
        }
    }
}

/// Statistics of a pattern-generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternGenStats {
    /// Patterns contributed by round one (constant disproval).
    pub round1_patterns: usize,
    /// Patterns contributed by round two (toggle improvement).
    pub round2_patterns: usize,
    /// Nodes whose constant-ness round one could not disprove (true
    /// constant candidates handed to the sweeper).
    pub constant_candidates: usize,
}

/// Generates purely random patterns (the baseline sweeper's initial
/// simulation).
///
/// # Panics
///
/// Panics if `num_patterns` is zero — the engines validate
/// `num_initial_patterns > 0` (see [`crate::SweepConfig::validate`]) before
/// generating patterns, so a zero here is a caller bug.
pub fn random_patterns(aig: &Aig, num_patterns: usize, seed: u64) -> PatternSet {
    PatternSet::random(aig.num_inputs(), num_patterns, seed)
        .expect("callers validate the pattern count before generating patterns")
}

/// Generates SAT-guided initial patterns: random base patterns plus the two
/// guided rounds described in Section IV-A.
///
/// The function reuses the caller's [`CircuitSat`] instance so that clauses
/// learned while generating patterns stay available to the sweeping queries
/// that follow.
pub fn sat_guided_patterns(
    aig: &Aig,
    sat: &mut CircuitSat<'_>,
    config: &PatternGenConfig,
) -> (PatternSet, PatternGenStats) {
    let mut stats = PatternGenStats::default();
    let mut patterns = random_patterns(aig, config.num_random.max(1), config.seed);
    let mut extra: Vec<Vec<bool>> = Vec::new();
    let mut seen: HashSet<Vec<bool>> = HashSet::new();

    let state = AigSimulator::new(aig).run(&patterns);

    // Round one: try to disprove all-zero / all-one signatures.
    let mut round1_queries = 0usize;
    for id in aig.and_ids() {
        if round1_queries >= config.round1_budget {
            break;
        }
        let sig = state.signature(id);
        let target = if sig.is_const0() {
            Some(Lit::positive(id))
        } else if sig.is_const1() {
            Some(!Lit::positive(id))
        } else {
            None
        };
        let Some(goal) = target else { continue };
        round1_queries += 1;
        match sat.find_assignment(&[goal], config.conflict_limit) {
            Some(assignment) => {
                if seen.insert(assignment.clone()) {
                    extra.push(assignment);
                    stats.round1_patterns += 1;
                }
            }
            None => {
                stats.constant_candidates += 1;
            }
        }
    }

    // Round two: improve diversity of strongly biased signatures.
    let mut round2_queries = 0usize;
    let n = state.num_patterns() as f64;
    for id in aig.and_ids() {
        if round2_queries >= config.round2_budget {
            break;
        }
        let sig = state.signature(id);
        if sig.is_const0() || sig.is_const1() {
            continue; // handled by round one
        }
        let ones_fraction = sig.count_ones() as f64 / n;
        let goal = if ones_fraction < config.bias {
            Some(Lit::positive(id))
        } else if ones_fraction > 1.0 - config.bias {
            Some(!Lit::positive(id))
        } else {
            None
        };
        let Some(goal) = goal else { continue };
        round2_queries += 1;
        if let Some(assignment) = sat.find_assignment(&[goal], config.conflict_limit) {
            if seen.insert(assignment.clone()) {
                extra.push(assignment);
                stats.round2_patterns += 1;
            }
        }
    }

    for assignment in extra {
        patterns.push_pattern(&assignment);
    }
    (patterns, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitsim::AigSimulator;

    /// An AIG with a node that random simulation almost always sees as
    /// constant zero: a wide AND of many inputs.
    fn biased_aig(width: usize) -> (Aig, Lit) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", width);
        let wide_and = aig.and_many(&xs);
        let other = aig.xor(xs[0], xs[1]);
        let out = aig.or(wide_and, other);
        aig.add_output("y", out);
        (aig, wide_and)
    }

    #[test]
    fn round1_disproves_fake_constants() {
        let (aig, wide_and) = biased_aig(10);
        let mut sat = CircuitSat::new(&aig);
        let config = PatternGenConfig {
            num_random: 64,
            ..PatternGenConfig::default()
        };
        let (patterns, stats) = sat_guided_patterns(&aig, &mut sat, &config);
        assert!(patterns.num_patterns() > 64, "guided patterns were added");
        assert!(stats.round1_patterns > 0, "the wide AND was disproved");
        // After simulation with the guided patterns, the wide AND is no
        // longer a constant candidate.
        let state = AigSimulator::new(&aig).run(&patterns);
        assert!(!state.signature(wide_and.node()).is_const0());
    }

    #[test]
    fn true_constants_are_reported_not_flipped() {
        // h = (a & b) & !a is constant false no matter what.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let t = aig.and(a, b);
        let h = aig.and(t, !a);
        aig.add_output("h", h);
        let mut sat = CircuitSat::new(&aig);
        let config = PatternGenConfig {
            num_random: 16,
            ..PatternGenConfig::default()
        };
        let (_, stats) = sat_guided_patterns(&aig, &mut sat, &config);
        assert!(stats.constant_candidates >= 1);
    }

    #[test]
    fn round2_raises_toggle_diversity() {
        let (aig, wide_and) = biased_aig(8);
        let mut sat = CircuitSat::new(&aig);
        // Make the base set large enough that the wide AND is (rarely) hit,
        // so it lands in round two rather than round one.
        let config = PatternGenConfig {
            num_random: 2048,
            bias: 0.05,
            ..PatternGenConfig::default()
        };
        let (patterns, stats) = sat_guided_patterns(&aig, &mut sat, &config);
        let state = AigSimulator::new(&aig).run(&patterns);
        let ones = state.signature(wide_and.node()).count_ones();
        // Either round added a pattern that sets the node, or it was already
        // diverse enough to skip — in both cases at least one `1` exists.
        assert!(ones >= 1);
        assert_eq!(patterns.num_inputs(), 8);
        let _ = stats;
    }

    #[test]
    fn random_patterns_are_reproducible() {
        let (aig, _) = biased_aig(5);
        let a = random_patterns(&aig, 100, 3);
        let b = random_patterns(&aig, 100, 3);
        assert_eq!(a, b);
    }
}
