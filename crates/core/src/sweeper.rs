//! The STP-based SAT-sweeping engine (Algorithm 2 of the paper) and the
//! shared sweeping machinery used by the baseline engine in [`crate::fraig`].
//!
//! The sweep proceeds as in Fig. 2: initial simulation builds candidate
//! equivalence classes (including constant candidates), the nodes are then
//! visited and every candidate is compared against a preceding *driver* of
//! its class; the SAT solver proves or disproves the merge, and each
//! counter-example is simulated to refine the remaining classes.
//!
//! The STP engine differs from the baseline in exactly the ways the paper
//! describes:
//!
//! * the initial patterns are SAT-guided (Section IV-A);
//! * constant nodes are detected and substituted before pairwise merging;
//! * candidates are processed in reverse topological order, classes are
//!   considered together with their complements, and at most `tfi_limit`
//!   drivers are examined per candidate;
//! * candidates that come back `unDET` are marked *don't touch*;
//! * before any SAT call the pair is checked by **exhaustive STP window
//!   simulation** ([`crate::window`]), which disproves most false candidates
//!   and proves window-complete ones without touching the solver;
//! * counter-examples are simulated only on the equivalence-class nodes via
//!   the cut windows instead of re-simulating the whole network.

use crate::equiv::EquivClasses;
use crate::patterns::{self, PatternGenConfig};
use crate::report::{SweepConfig, SweepReport, SweepResult};
use crate::window::WindowIndex;
use bitsim::{AigSimulator, PatternSet, Signature};
use netlist::{Aig, Lit, NodeId};
use satsolver::{CircuitSat, EquivOutcome};
use std::collections::HashMap;
use std::time::Instant;

/// Which sweeping engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Engine {
    /// Baseline FRAIG-style sweeping: random initial patterns, representative
    /// drivers only, full bitwise counter-example resimulation.
    Baseline,
    /// The paper's STP-based sweeping (Algorithm 2).
    Stp,
}

/// Runs the STP-based SAT sweeper (Algorithm 2) on `aig`.
///
/// The returned network is functionally equivalent to the input (verified by
/// the crate's tests via [`crate::cec`]) and never larger.
pub fn sweep_stp(aig: &Aig, config: &SweepConfig) -> SweepResult {
    run_sweep(aig, config, Engine::Stp)
}

/// Runs the STP sweeper repeatedly until no further gates are removed (or
/// `max_rounds` is reached).  Merging can expose new structural sharing
/// (the cleanup re-hashes the network), so a second pass occasionally finds
/// additional merges; the reports of all rounds are accumulated.
pub fn sweep_stp_to_fixpoint(aig: &Aig, config: &SweepConfig, max_rounds: usize) -> SweepResult {
    let mut current = aig.clone();
    let mut accumulated = SweepReport {
        gates_before: aig.num_ands(),
        levels: aig.depth(),
        ..SweepReport::default()
    };
    for _ in 0..max_rounds.max(1) {
        let round = run_sweep(&current, config, Engine::Stp);
        accumulated.merges += round.report.merges;
        accumulated.constants += round.report.constants;
        accumulated.sat_calls_sat += round.report.sat_calls_sat;
        accumulated.sat_calls_unsat += round.report.sat_calls_unsat;
        accumulated.sat_calls_undet += round.report.sat_calls_undet;
        accumulated.sat_calls_total += round.report.sat_calls_total;
        accumulated.proved_by_simulation += round.report.proved_by_simulation;
        accumulated.disproved_by_simulation += round.report.disproved_by_simulation;
        accumulated.simulation_time += round.report.simulation_time;
        accumulated.sat_time += round.report.sat_time;
        accumulated.total_time += round.report.total_time;
        let converged = round.aig.num_ands() == current.num_ands();
        current = round.aig;
        if converged {
            break;
        }
    }
    accumulated.gates_after = current.num_ands();
    SweepResult {
        aig: current,
        report: accumulated,
    }
}

pub(crate) fn run_sweep(aig: &Aig, config: &SweepConfig, engine: Engine) -> SweepResult {
    let total_start = Instant::now();
    let original = aig.clone();
    let mut result = aig.clone();
    let mut report = SweepReport {
        gates_before: original.num_ands(),
        levels: original.depth(),
        ..SweepReport::default()
    };

    let mut sat = CircuitSat::new(&original);

    // ------------------------------------------------------------------
    // Initial simulation (random or SAT-guided).
    // ------------------------------------------------------------------
    let sim_start = Instant::now();
    let mut pattern_set = if engine == Engine::Stp && config.sat_guided_patterns {
        let gen_config = PatternGenConfig {
            num_random: config.num_initial_patterns,
            seed: config.seed,
            conflict_limit: config.conflict_limit.min(2_000),
            ..PatternGenConfig::default()
        };
        let (p, _) = patterns::sat_guided_patterns(&original, &mut sat, &gen_config);
        p
    } else {
        patterns::random_patterns(&original, config.num_initial_patterns, config.seed)
    };
    let state = AigSimulator::new(&original).run(&pattern_set);
    let and_signatures: HashMap<NodeId, Signature> = original
        .and_ids()
        .map(|id| (id, state.signature(id).clone()))
        .collect();
    report.simulation_time += sim_start.elapsed();
    // SAT queries spent on pattern generation are not sweeping queries; the
    // Table II counters start after the initial simulation, as in the paper.
    let pattern_gen_stats = sat.query_stats();

    let mut classes = EquivClasses::from_signatures(&and_signatures);

    // Window index used by the STP engine for exhaustive refinement and for
    // counter-example simulation restricted to class nodes.
    let windows = if engine == Engine::Stp {
        Some(WindowIndex::build(&original, config.window_limit))
    } else {
        None
    };

    // Tracks nodes that have been merged away (and into what) and nodes
    // marked don't-touch.
    let mut merged: Vec<Option<Lit>> = vec![None; original.num_nodes()];
    let mut dont_touch = vec![false; original.num_nodes()];

    // ------------------------------------------------------------------
    // Constant-node substitution.
    // ------------------------------------------------------------------
    if config.constant_substitution {
        let candidates: Vec<_> = classes.constants().to_vec();
        for candidate in candidates {
            let lit = Lit::positive(candidate.node);
            let sat_start = Instant::now();
            let outcome = sat.prove_constant(lit, candidate.value, config.conflict_limit);
            report.sat_time += sat_start.elapsed();
            match outcome {
                EquivOutcome::Equivalent => {
                    let constant = if candidate.value {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    };
                    result.replace_node(candidate.node, constant);
                    merged[candidate.node] = Some(constant);
                    classes.remove(candidate.node);
                    report.constants += 1;
                }
                EquivOutcome::CounterExample(ce) => {
                    refine_with_counterexample(
                        &original,
                        &ce,
                        &mut pattern_set,
                        &mut classes,
                        windows.as_ref(),
                        &mut report,
                        engine,
                    );
                }
                EquivOutcome::Undetermined => {
                    dont_touch[candidate.node] = true;
                    classes.remove(candidate.node);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pairwise merging.
    // ------------------------------------------------------------------
    let mut order: Vec<NodeId> = original.and_ids().collect();
    if engine == Engine::Stp {
        // Algorithm 2 traverses the circuit from outputs to inputs.
        order.reverse();
    }

    for candidate in order {
        let mut attempts = 0usize;
        // The driver list is recomputed from the candidate's *current* class
        // whenever a counter-example refines the classes, so no effort is
        // spent on pairs that simulation has already distinguished.
        'candidate: loop {
            if merged[candidate].is_some() || dont_touch[candidate] || attempts >= config.tfi_limit
            {
                break;
            }
            let Some(class) = classes.class_of(candidate) else {
                break;
            };
            if class.representative() == candidate {
                break;
            }
            // Candidate drivers: class members that precede the candidate in
            // topological order, bounded by the TFI limit.
            let candidate_phase = class.phase_of(candidate);
            let drivers: Vec<(NodeId, bool)> = class
                .members()
                .iter()
                .zip(class.members().iter().map(|&m| class.phase_of(m)))
                .filter(|&(&m, _)| m < candidate && merged[m].is_none() && !dont_touch[m])
                .map(|(&m, phase)| (m, phase != candidate_phase))
                .take(config.tfi_limit - attempts)
                .collect();
            if drivers.is_empty() {
                break;
            }
            for (driver, complemented) in drivers {
                attempts += 1;
                // Exhaustive STP window refinement before any SAT call.
                if engine == Engine::Stp && config.window_refinement {
                    if let Some(index) = windows.as_ref() {
                        match index.compare(&original, candidate, driver, complemented) {
                            Some(false) => {
                                report.disproved_by_simulation += 1;
                                continue;
                            }
                            Some(true) => {
                                report.proved_by_simulation += 1;
                                apply_merge(
                                    &mut result,
                                    candidate,
                                    driver,
                                    complemented,
                                    &mut merged,
                                    &mut classes,
                                    &mut report,
                                );
                                break 'candidate;
                            }
                            None => {}
                        }
                    }
                }
                let sat_start = Instant::now();
                let outcome = sat.prove_equivalent(
                    Lit::positive(candidate),
                    Lit::new(driver, complemented),
                    config.conflict_limit,
                );
                report.sat_time += sat_start.elapsed();
                match outcome {
                    EquivOutcome::Equivalent => {
                        apply_merge(
                            &mut result,
                            candidate,
                            driver,
                            complemented,
                            &mut merged,
                            &mut classes,
                            &mut report,
                        );
                        break 'candidate;
                    }
                    EquivOutcome::CounterExample(ce) => {
                        refine_with_counterexample(
                            &original,
                            &ce,
                            &mut pattern_set,
                            &mut classes,
                            windows.as_ref(),
                            &mut report,
                            engine,
                        );
                        // Re-derive the drivers from the refined classes.
                        continue 'candidate;
                    }
                    EquivOutcome::Undetermined => {
                        // Don't-touch: stop spending effort on this candidate.
                        dont_touch[candidate] = true;
                        classes.remove(candidate);
                        break 'candidate;
                    }
                }
            }
            // Every driver was examined without a counter-example forcing a
            // re-derivation: nothing more to do for this candidate.
            break;
        }
    }

    // ------------------------------------------------------------------
    // Cleanup and reporting.
    // ------------------------------------------------------------------
    let query_stats = sat.query_stats();
    report.sat_calls_total = query_stats.total_calls - pattern_gen_stats.total_calls;
    report.sat_calls_sat = query_stats.sat_calls - pattern_gen_stats.sat_calls;
    report.sat_calls_unsat = query_stats.unsat_calls - pattern_gen_stats.unsat_calls;
    report.sat_calls_undet = query_stats.undetermined_calls - pattern_gen_stats.undetermined_calls;

    let (cleaned, _) = result.cleanup();
    report.gates_after = cleaned.num_ands();
    report.total_time = total_start.elapsed();
    SweepResult {
        aig: cleaned,
        report,
    }
}

/// Applies a proved merge: redirects `candidate`'s fanouts to `driver`
/// (complemented as required) in the working copy.
fn apply_merge(
    result: &mut Aig,
    candidate: NodeId,
    driver: NodeId,
    complemented: bool,
    merged: &mut [Option<Lit>],
    classes: &mut EquivClasses,
    report: &mut SweepReport,
) {
    let replacement = Lit::new(driver, complemented);
    result.replace_node(candidate, replacement);
    merged[candidate] = Some(replacement);
    classes.remove(candidate);
    report.merges += 1;
}

/// Simulates a counter-example and refines the candidate classes.
///
/// The baseline engine re-simulates the whole network bit-parallel; the STP
/// engine simulates only the nodes that are still members of some candidate
/// class (or constant candidates) through their cut windows.
fn refine_with_counterexample(
    original: &Aig,
    counterexample: &[bool],
    pattern_set: &mut PatternSet,
    classes: &mut EquivClasses,
    windows: Option<&WindowIndex>,
    report: &mut SweepReport,
    engine: Engine,
) {
    let sim_start = Instant::now();
    pattern_set.push_pattern(counterexample);
    let new_signatures: HashMap<NodeId, Signature> = match (engine, windows) {
        (Engine::Stp, Some(index)) => {
            // Only class members and constant candidates need new values.
            let mut targets: Vec<NodeId> = classes
                .classes()
                .iter()
                .flat_map(|c| c.members().iter().copied())
                .collect();
            targets.extend(classes.constants().iter().map(|c| c.node));
            targets.sort_unstable();
            targets.dedup();
            let mut ce_only = PatternSet::new(original.num_inputs());
            ce_only.push_pattern(counterexample);
            index.simulate_targets(original, &ce_only, &targets)
        }
        _ => {
            // Full bitwise resimulation with the complete (grown) pattern set.
            let state = AigSimulator::new(original).run(pattern_set);
            original
                .and_ids()
                .map(|id| (id, state.signature(id).clone()))
                .collect()
        }
    };
    classes.refine(&new_signatures);
    report.simulation_time += sim_start.elapsed();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cec::check_equivalence;

    /// A circuit with planted redundancy: the same functions built twice with
    /// different structure, plus a constant-false cone.
    fn redundant_circuit() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        // Version 1 of a few functions.
        let f1 = aig.and(xs[0], xs[1]);
        let g1 = aig.xor(xs[2], xs[3]);
        let h1 = aig.maj(xs[3], xs[4], xs[5]);
        // Version 2, structurally different but equivalent.
        let f2_a = aig.nand(xs[0], xs[1]);
        let f2 = !f2_a;
        let g2_t = aig.or(xs[2], xs[3]);
        let g2_b = aig.nand(xs[2], xs[3]);
        let g2 = aig.and(g2_t, g2_b);
        let h2_ab = aig.and(xs[3], xs[4]);
        let h2_ac = aig.and(xs[3], xs[5]);
        let h2_bc = aig.and(xs[4], xs[5]);
        let h2_t = aig.or(h2_ab, h2_ac);
        let h2 = aig.or(h2_t, h2_bc);
        // A constant-false cone that is not structurally obvious.
        let c_t = aig.and(xs[0], xs[2]);
        let c = aig.and(c_t, !xs[0]);
        // Outputs mix both versions so that the redundancy is observable.
        let o1 = aig.xor(f1, g2);
        let o2 = aig.xor(f2, g1);
        let o3 = aig.or(h1, c);
        let o4 = aig.and(h2, o1);
        aig.add_output("o1", o1);
        aig.add_output("o2", o2);
        aig.add_output("o3", o3);
        aig.add_output("o4", o4);
        aig
    }

    #[test]
    fn stp_sweep_reduces_and_preserves_function() {
        let aig = redundant_circuit();
        let result = sweep_stp(&aig, &SweepConfig::default());
        assert!(
            result.aig.num_ands() < aig.num_ands(),
            "redundant logic should be merged ({} -> {})",
            aig.num_ands(),
            result.aig.num_ands()
        );
        assert!(result.report.merges + result.report.constants > 0);
        let cec = check_equivalence(&aig, &result.aig, 100_000);
        assert!(cec.equivalent, "sweeping must preserve functionality");
    }

    #[test]
    fn stp_sweep_substitutes_constants() {
        let aig = redundant_circuit();
        let result = sweep_stp(&aig, &SweepConfig::default());
        assert!(
            result.report.constants >= 1,
            "the planted constant cone is found"
        );
    }

    #[test]
    fn window_refinement_reduces_sat_calls() {
        let aig = redundant_circuit();
        let with_windows = sweep_stp(&aig, &SweepConfig::default());
        let without_windows = sweep_stp(
            &aig,
            &SweepConfig {
                window_refinement: false,
                ..SweepConfig::default()
            },
        );
        assert!(
            with_windows.report.sat_calls_total <= without_windows.report.sat_calls_total,
            "window refinement must not increase SAT calls ({} vs {})",
            with_windows.report.sat_calls_total,
            without_windows.report.sat_calls_total
        );
        // Both variants agree on the final size.
        assert_eq!(with_windows.aig.num_ands(), without_windows.aig.num_ands());
    }

    #[test]
    fn sweep_is_idempotent_on_irredundant_networks() {
        let aig = redundant_circuit();
        let once = sweep_stp(&aig, &SweepConfig::default());
        let twice = sweep_stp(&once.aig, &SweepConfig::default());
        assert_eq!(once.aig.num_ands(), twice.aig.num_ands());
        assert_eq!(twice.report.merges, 0);
    }

    #[test]
    fn fixpoint_sweeping_converges_and_accumulates() {
        let aig = redundant_circuit();
        let once = sweep_stp(&aig, &SweepConfig::default());
        let fixed = sweep_stp_to_fixpoint(&aig, &SweepConfig::default(), 4);
        assert!(fixed.aig.num_ands() <= once.aig.num_ands());
        assert!(fixed.report.merges >= once.report.merges);
        assert!(check_equivalence(&aig, &fixed.aig, 100_000).equivalent);
        assert_eq!(fixed.report.gates_before, aig.num_ands());
        assert_eq!(fixed.report.gates_after, fixed.aig.num_ands());
    }

    #[test]
    fn report_counts_are_consistent() {
        let aig = redundant_circuit();
        let result = sweep_stp(&aig, &SweepConfig::default());
        let r = &result.report;
        assert_eq!(
            r.sat_calls_total,
            r.sat_calls_sat + r.sat_calls_unsat + r.sat_calls_undet
        );
        assert!(r.gates_after <= r.gates_before);
        assert!(r.total_time >= r.sat_time);
    }
}
