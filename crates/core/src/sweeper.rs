//! Legacy free-function entry points of the STP sweeper.
//!
//! **Deprecated in favour of the builder API** — these wrappers remain for
//! source compatibility and forward to [`crate::Sweeper`] / [`crate::Pipeline`].
//! The one-line migration:
//!
//! ```text
//! sweeper::sweep_stp(&aig, &config)                 // before
//! Sweeper::new(Engine::Stp).config(config).run(&aig)?  // after
//!
//! sweeper::sweep_stp_to_fixpoint(&aig, &config, n)  // before
//! Pipeline::new(config).sweep_to_fixpoint(Engine::Stp, n).run(&aig)?  // after
//! ```
//!
//! The builder additionally offers progress [`crate::Observer`]s, a
//! [`crate::Budget`] (deadline, SAT-call cap, cancellation) with partial
//! results, typed [`crate::SweepError`]s instead of silent misbehaviour, and
//! deterministic parallelism on both hot paths — simulation via
//! [`crate::SweepConfig::parallelism`] and SAT proving via
//! [`crate::SweepConfig::sat_parallelism`] — none of which the legacy free
//! functions expose (they always run sequentially).
//! See [`crate::session`] for the engine itself (Algorithm 2 of the paper)
//! and [`crate::pipeline`] for multi-pass composition.

pub use crate::session::Engine;

use crate::pipeline::Pipeline;
use crate::report::{SweepConfig, SweepResult};
use crate::session::Sweeper;
use netlist::Aig;

/// Runs the STP-based SAT sweeper (Algorithm 2) on `aig`.
///
/// Legacy wrapper around [`Sweeper`]; panics on an invalid `config` (the
/// builder API returns [`crate::SweepError::InvalidConfig`] instead).
///
/// The returned network is functionally equivalent to the input (verified by
/// the crate's tests via [`crate::cec`]) and never larger.
///
/// ```
/// use netlist::Aig;
/// use stp_sweep::{sweeper, SweepConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let f = aig.and(a, b);
/// let g = aig.and(f, b); // redundant: equals f
/// let y = aig.xor(f, g);
/// aig.add_output("y", y);
/// let result = sweeper::sweep_stp(&aig, &SweepConfig::default());
/// assert!(result.aig.num_ands() <= aig.num_ands());
/// ```
#[deprecated(note = "use `Sweeper::new(Engine::Stp).config(config).run(&aig)` instead")]
pub fn sweep_stp(aig: &Aig, config: &SweepConfig) -> SweepResult {
    Sweeper::new(Engine::Stp)
        .config(*config)
        .run(aig)
        .expect("legacy wrapper: invalid SweepConfig")
}

/// Runs the STP sweeper repeatedly until no further gates are removed (or
/// `max_rounds` is reached), accumulating the reports of all rounds.
///
/// Legacy wrapper around [`Pipeline::sweep_to_fixpoint`]; panics on an
/// invalid `config`.
///
/// ```
/// use netlist::Aig;
/// use stp_sweep::{sweeper, SweepConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let f = aig.and(a, b);
/// let g = aig.and(f, b);
/// let y = aig.xor(f, g);
/// aig.add_output("y", y);
/// let fixed = sweeper::sweep_stp_to_fixpoint(&aig, &SweepConfig::default(), 4);
/// assert_eq!(fixed.report.gates_before, aig.num_ands());
/// assert_eq!(fixed.report.gates_after, fixed.aig.num_ands());
/// ```
#[deprecated(
    note = "use `Pipeline::new(config).sweep_to_fixpoint(Engine::Stp, max_rounds).run(&aig)` instead"
)]
pub fn sweep_stp_to_fixpoint(aig: &Aig, config: &SweepConfig, max_rounds: usize) -> SweepResult {
    Pipeline::new(*config)
        .sweep_to_fixpoint(Engine::Stp, max_rounds)
        .run(aig)
        .expect("legacy wrapper: invalid SweepConfig")
        .into_sweep_result()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::cec::check_equivalence;
    use crate::report::SweepReport;
    use netlist::Aig;

    /// A circuit with planted redundancy: the same functions built twice with
    /// different structure, plus a constant-false cone.
    fn redundant_circuit() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        // Version 1 of a few functions.
        let f1 = aig.and(xs[0], xs[1]);
        let g1 = aig.xor(xs[2], xs[3]);
        let h1 = aig.maj(xs[3], xs[4], xs[5]);
        // Version 2, structurally different but equivalent.
        let f2_a = aig.nand(xs[0], xs[1]);
        let f2 = !f2_a;
        let g2_t = aig.or(xs[2], xs[3]);
        let g2_b = aig.nand(xs[2], xs[3]);
        let g2 = aig.and(g2_t, g2_b);
        let h2_ab = aig.and(xs[3], xs[4]);
        let h2_ac = aig.and(xs[3], xs[5]);
        let h2_bc = aig.and(xs[4], xs[5]);
        let h2_t = aig.or(h2_ab, h2_ac);
        let h2 = aig.or(h2_t, h2_bc);
        // A constant-false cone that is not structurally obvious.
        let c_t = aig.and(xs[0], xs[2]);
        let c = aig.and(c_t, !xs[0]);
        // Outputs mix both versions so that the redundancy is observable.
        let o1 = aig.xor(f1, g2);
        let o2 = aig.xor(f2, g1);
        let o3 = aig.or(h1, c);
        let o4 = aig.and(h2, o1);
        aig.add_output("o1", o1);
        aig.add_output("o2", o2);
        aig.add_output("o3", o3);
        aig.add_output("o4", o4);
        aig
    }

    #[test]
    fn stp_sweep_reduces_and_preserves_function() {
        let aig = redundant_circuit();
        let result = sweep_stp(&aig, &SweepConfig::default());
        assert!(
            result.aig.num_ands() < aig.num_ands(),
            "redundant logic should be merged ({} -> {})",
            aig.num_ands(),
            result.aig.num_ands()
        );
        assert!(result.report.merges + result.report.constants > 0);
        let cec = check_equivalence(&aig, &result.aig, 100_000);
        assert!(cec.equivalent, "sweeping must preserve functionality");
    }

    #[test]
    fn stp_sweep_substitutes_constants() {
        let aig = redundant_circuit();
        let result = sweep_stp(&aig, &SweepConfig::default());
        assert!(
            result.report.constants >= 1,
            "the planted constant cone is found"
        );
    }

    #[test]
    fn window_refinement_reduces_sat_calls() {
        let aig = redundant_circuit();
        let with_windows = sweep_stp(&aig, &SweepConfig::default());
        let without_windows = sweep_stp(
            &aig,
            &SweepConfig {
                window_refinement: false,
                ..SweepConfig::default()
            },
        );
        assert!(
            with_windows.report.sat_calls_total <= without_windows.report.sat_calls_total,
            "window refinement must not increase SAT calls ({} vs {})",
            with_windows.report.sat_calls_total,
            without_windows.report.sat_calls_total
        );
        // Both variants agree on the final size.
        assert_eq!(with_windows.aig.num_ands(), without_windows.aig.num_ands());
    }

    #[test]
    fn sweep_is_idempotent_on_irredundant_networks() {
        let aig = redundant_circuit();
        let once = sweep_stp(&aig, &SweepConfig::default());
        let twice = sweep_stp(&once.aig, &SweepConfig::default());
        assert_eq!(once.aig.num_ands(), twice.aig.num_ands());
        assert_eq!(twice.report.merges, 0);
    }

    #[test]
    fn fixpoint_sweeping_converges_and_accumulates() {
        let aig = redundant_circuit();
        let once = sweep_stp(&aig, &SweepConfig::default());
        let fixed = sweep_stp_to_fixpoint(&aig, &SweepConfig::default(), 4);
        assert!(fixed.aig.num_ands() <= once.aig.num_ands());
        assert!(fixed.report.merges >= once.report.merges);
        assert!(check_equivalence(&aig, &fixed.aig, 100_000).equivalent);
        assert_eq!(fixed.report.gates_before, aig.num_ands());
        assert_eq!(fixed.report.gates_after, fixed.aig.num_ands());
    }

    #[test]
    fn report_counts_are_consistent() {
        let aig = redundant_circuit();
        let result = sweep_stp(&aig, &SweepConfig::default());
        let r = &result.report;
        assert_eq!(
            r.sat_calls_total,
            r.sat_calls_sat + r.sat_calls_unsat + r.sat_calls_undet
        );
        assert!(r.gates_after <= r.gates_before);
        assert!(r.total_time >= r.sat_time);
    }

    // The wrapper forwards to the builder, so this pins wrapper-forwarding
    // fidelity (config/engine drift) and run-to-run determinism, not an
    // independent engine implementation.
    #[test]
    fn legacy_wrapper_matches_builder_exactly() {
        let aig = redundant_circuit();
        let legacy = sweep_stp(&aig, &SweepConfig::default());
        let builder = crate::Sweeper::new(Engine::Stp)
            .run(&aig)
            .expect("valid default config");
        assert_eq!(legacy.aig.num_ands(), builder.aig.num_ands());
        let strip = |r: &SweepReport| SweepReport {
            simulation_time: Default::default(),
            sat_time: Default::default(),
            total_time: Default::default(),
            ..*r
        };
        assert_eq!(strip(&legacy.report), strip(&builder.report));
    }
}
