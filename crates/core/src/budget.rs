//! Resource budgets and cooperative cancellation for sweeping runs.
//!
//! A [`Budget`] bounds a run along three independent dimensions — a
//! wall-clock deadline, a cap on the number of sweeping SAT queries, and a
//! [`CancelToken`] another thread (or signal handler) can trip.  The engine
//! checks the budget at candidate boundaries and immediately before every
//! SAT call, so a tripped budget stops the run at the next check *without*
//! discarding the merges proved so far: the partial result travels inside
//! [`crate::SweepError::BudgetExhausted`].  A budget that is already
//! exhausted when a session starts skips priming entirely; an in-flight
//! phase (pattern generation, a single SAT query, a pipeline strash or
//! verify pass) is cooperative and runs to its own completion first.
//!
//! Under parallel SAT proving the same contract holds at two levels: the
//! prover's workers re-check the deadline and cancellation cooperatively
//! before every speculative query (via [`crate::prover::WorkerBudget`]), and
//! the commit barrier re-checks the budget authoritatively before counting
//! each committed SAT call — so speculative work never leaks into the
//! partial result, merges are never half-applied, and a `max_sat_calls` cap
//! stops the run after exactly the same committed calls for every
//! `sat_parallelism`.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetCause {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cap on sweeping SAT calls was reached.
    SatCalls,
    /// The [`CancelToken`] was tripped.
    Cancelled,
}

impl fmt::Display for BudgetCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetCause::Deadline => write!(f, "wall-clock deadline"),
            BudgetCause::SatCalls => write!(f, "SAT-call limit"),
            BudgetCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A shareable cooperative cancellation flag.
///
/// Clone the token, hand one clone to [`Budget::with_cancel_token`] and keep
/// the other; calling [`CancelToken::cancel`] from anywhere stops the run at
/// the next budget check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every budget sharing this token trips.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource limits of a sweeping run.  The default is unlimited.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Duration>,
    max_sat_calls: Option<u64>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limits the run to `deadline` of wall-clock time, measured from the
    /// start of the session (for a [`crate::Pipeline`]: of the pipeline).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limits the run to at most `calls` sweeping SAT queries.  SAT queries
    /// spent on SAT-guided pattern generation do not count, mirroring the
    /// paper's Table II accounting.
    pub fn with_max_sat_calls(mut self, calls: u64) -> Self {
        self.max_sat_calls = Some(calls);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` if no limit is set on any dimension.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_sat_calls.is_none() && self.cancel.is_none()
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The SAT-call cap, if any.
    pub fn max_sat_calls(&self) -> Option<u64> {
        self.max_sat_calls
    }

    /// Checks the budget against the elapsed time since `started` and the
    /// number of sweeping SAT calls made so far.
    pub(crate) fn exceeded(&self, started: Instant, sat_calls: u64) -> Option<BudgetCause> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(BudgetCause::Cancelled);
            }
        }
        if let Some(max) = self.max_sat_calls {
            if sat_calls >= max {
                return Some(BudgetCause::SatCalls);
            }
        }
        if let Some(deadline) = self.deadline {
            if started.elapsed() >= deadline {
                return Some(BudgetCause::Deadline);
            }
        }
        None
    }

    /// The budget that remains after `elapsed` time and `sat_calls` queries
    /// have been consumed — used by [`crate::Pipeline`] to thread one budget
    /// through a sequence of passes.
    pub(crate) fn remaining(&self, elapsed: Duration, sat_calls: u64) -> Budget {
        Budget {
            deadline: self.deadline.map(|d| d.saturating_sub(elapsed)),
            max_sat_calls: self.max_sat_calls.map(|m| m.saturating_sub(sat_calls)),
            cancel: self.cancel.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::unlimited();
        assert!(budget.is_unlimited());
        assert_eq!(budget.exceeded(Instant::now(), u64::MAX), None);
    }

    #[test]
    fn sat_call_cap_trips_at_the_cap() {
        let budget = Budget::unlimited().with_max_sat_calls(3);
        let now = Instant::now();
        assert_eq!(budget.exceeded(now, 2), None);
        assert_eq!(budget.exceeded(now, 3), Some(BudgetCause::SatCalls));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(
            budget.exceeded(Instant::now(), 0),
            Some(BudgetCause::Deadline)
        );
    }

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel_token(token.clone());
        assert_eq!(budget.exceeded(Instant::now(), 0), None);
        token.cancel();
        assert_eq!(
            budget.exceeded(Instant::now(), 0),
            Some(BudgetCause::Cancelled)
        );
    }

    #[test]
    fn remaining_subtracts_consumed_resources() {
        let budget = Budget::unlimited()
            .with_deadline(Duration::from_secs(10))
            .with_max_sat_calls(100);
        let rest = budget.remaining(Duration::from_secs(4), 30);
        assert_eq!(rest.deadline(), Some(Duration::from_secs(6)));
        assert_eq!(rest.max_sat_calls(), Some(70));
        // Over-consumption saturates to zero instead of wrapping.
        let none_left = budget.remaining(Duration::from_secs(60), 1000);
        assert_eq!(none_left.deadline(), Some(Duration::ZERO));
        assert_eq!(none_left.max_sat_calls(), Some(0));
    }
}
