//! Speculative batch-formation policies (see [`BatchPolicy`]).
//!
//! The session's batch former walks the pending candidates in canonical
//! order and extends the current batch while [`admits`] accepts the next
//! live candidate; the first rejected candidate **terminates** the batch
//! (prefix formation — see the `crate::prover` module docs for why that,
//! plus slot-keyed solvers and pre-query restore, makes every policy commit
//! byte-identical results).  The policy therefore only decides how *long*
//! the admitted prefix gets:
//!
//! * [`BatchPolicy::SupportDisjoint`] — the PR 4 prior: admit while the
//!   candidate's proof cone shares no primary input with the batch.
//! * [`BatchPolicy::RefinementAware`] — admit while the candidate's class
//!   is *learned-independent* of every class in the batch (never co-split
//!   by a committed counter-example, each observed splitting at least
//!   [`MIN_COSPLIT_OBSERVATIONS`] times — see [`CoSplitTable`]); fall back
//!   to the support prior while the evidence is insufficient.
//!
//! Formation reads only committed state (the co-split table advances on
//! committed refinements alone), so the batch sequence is a pure function
//! of the sweep state — independent of `sat_parallelism`, `num_threads`
//! and shard count.

use crate::prover::SupportIndex;
use crate::report::BatchPolicy;
use bitsim::CoSplitTable;
use netlist::NodeId;

/// Minimum committed observations (splits plus survived proofs) on *both*
/// classes of a pair before "never co-split" counts as evidence of
/// independence.  Below the threshold the refinement-aware policy falls back
/// to the support prior: a class that has never been observed may simply
/// never have been tested.
pub const MIN_COSPLIT_OBSERVATIONS: u32 = 1;

/// Whether `candidate`'s proof cone (candidate plus `drivers`) is
/// support-disjoint from the accumulated batch support `acc`.
pub fn support_disjoint(
    supports: &SupportIndex,
    candidate: NodeId,
    drivers: &[(NodeId, bool)],
    acc: &[u64],
) -> bool {
    supports.disjoint(candidate, acc) && drivers.iter().all(|&(d, _)| supports.disjoint(d, acc))
}

/// Whether the batch former admits `candidate` (class representative
/// `rep`, driver list `drivers`) into a non-empty batch whose members'
/// class representatives are `batch_reps` and whose accumulated support is
/// `acc`.  An empty batch admits any live candidate; callers skip the call.
#[allow(clippy::too_many_arguments)]
pub fn admits(
    policy: BatchPolicy,
    cosplit: &CoSplitTable,
    supports: &SupportIndex,
    candidate: NodeId,
    rep: NodeId,
    drivers: &[(NodeId, bool)],
    acc: &[u64],
    batch_reps: &[NodeId],
) -> bool {
    match policy {
        BatchPolicy::SupportDisjoint => support_disjoint(supports, candidate, drivers, acc),
        BatchPolicy::RefinementAware => {
            // Same class (`rep == other`) and ever-co-split pairs are
            // rejected outright; a fully learned-independent candidate is
            // admitted regardless of support overlap; anything short of
            // full evidence falls back to the support prior.
            let mut learned_independent = true;
            for &other in batch_reps {
                match cosplit.independent(rep, other, MIN_COSPLIT_OBSERVATIONS) {
                    Some(false) => return false,
                    Some(true) => {}
                    None => learned_independent = false,
                }
            }
            learned_independent || support_disjoint(supports, candidate, drivers, acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Aig;

    /// Three AND cones over disjoint input pairs, plus one cone overlapping
    /// the first.
    fn fixture() -> (Aig, NodeId, NodeId, NodeId, NodeId) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let a = aig.and(xs[0], xs[1]).node();
        let b = aig.and(xs[2], xs[3]).node();
        let c = aig.and(xs[4], xs[5]).node();
        let d = aig.and(xs[0], xs[2]).node(); // overlaps a and b
        aig.add_output("a", netlist::Lit::positive(a));
        aig.add_output("b", netlist::Lit::positive(b));
        aig.add_output("c", netlist::Lit::positive(c));
        aig.add_output("d", netlist::Lit::positive(d));
        (aig, a, b, c, d)
    }

    #[test]
    fn support_policy_rejects_overlapping_cones() {
        let (aig, a, b, _c, d) = fixture();
        let supports = SupportIndex::build(&aig);
        let cosplit = CoSplitTable::new();
        let mut acc = supports.empty_accumulator();
        supports.accumulate(a, &mut acc);
        let admit = |cand, reps: &[NodeId]| {
            admits(
                BatchPolicy::SupportDisjoint,
                &cosplit,
                &supports,
                cand,
                cand,
                &[],
                &acc,
                reps,
            )
        };
        assert!(admit(b, &[a]));
        assert!(!admit(d, &[a]), "d shares x0 with a");
    }

    #[test]
    fn refinement_aware_falls_back_to_the_support_prior() {
        let (aig, a, b, _c, d) = fixture();
        let supports = SupportIndex::build(&aig);
        let cosplit = CoSplitTable::new(); // no observations at all
        let mut acc = supports.empty_accumulator();
        supports.accumulate(a, &mut acc);
        let admit = |cand, reps: &[NodeId]| {
            admits(
                BatchPolicy::RefinementAware,
                &cosplit,
                &supports,
                cand,
                cand,
                &[],
                &acc,
                reps,
            )
        };
        // No evidence: behaves exactly like the support prior.
        assert!(admit(b, &[a]));
        assert!(!admit(d, &[a]));
    }

    #[test]
    fn refinement_aware_admits_learned_independent_overlapping_cones() {
        let (aig, a, _b, _c, d) = fixture();
        let supports = SupportIndex::build(&aig);
        let mut cosplit = CoSplitTable::new();
        // a and d each split twice, never together.
        cosplit.record_event(&[a]);
        cosplit.record_event(&[a]);
        cosplit.record_event(&[d]);
        cosplit.record_event(&[d]);
        let mut acc = supports.empty_accumulator();
        supports.accumulate(a, &mut acc);
        assert!(
            admits(
                BatchPolicy::RefinementAware,
                &cosplit,
                &supports,
                d,
                d,
                &[],
                &acc,
                &[a],
            ),
            "learned independence overrides the support overlap"
        );
        // The same pair under the support prior stays rejected.
        assert!(!admits(
            BatchPolicy::SupportDisjoint,
            &cosplit,
            &supports,
            d,
            d,
            &[],
            &acc,
            &[a],
        ));
    }

    #[test]
    fn refinement_aware_rejects_cosplitting_classes() {
        let (aig, a, b, c, _d) = fixture();
        let supports = SupportIndex::build(&aig);
        let mut cosplit = CoSplitTable::new();
        cosplit.record_event(&[b, c]); // b and c co-split once
        cosplit.record_event(&[b]);
        cosplit.record_event(&[c]);
        let mut acc = supports.empty_accumulator();
        supports.accumulate(b, &mut acc);
        // c is support-disjoint from b, but they have co-split: rejected.
        assert!(!admits(
            BatchPolicy::RefinementAware,
            &cosplit,
            &supports,
            c,
            c,
            &[],
            &acc,
            &[b],
        ));
        // a has no co-split history with b and disjoint support: admitted.
        assert!(admits(
            BatchPolicy::RefinementAware,
            &cosplit,
            &supports,
            a,
            a,
            &[],
            &acc,
            &[b],
        ));
    }

    #[test]
    fn same_class_members_never_batch_together() {
        let (aig, a, _b, _c, _d) = fixture();
        let supports = SupportIndex::build(&aig);
        let mut cosplit = CoSplitTable::new();
        cosplit.record_event(&[a]);
        cosplit.record_event(&[a]);
        let acc = supports.empty_accumulator();
        // Candidate from the same class (same rep) as a batch member.
        assert!(!admits(
            BatchPolicy::RefinementAware,
            &cosplit,
            &supports,
            a,
            a,
            &[],
            &acc,
            &[a],
        ));
    }
}
