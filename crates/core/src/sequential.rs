//! Sequential SAT-sweeping: latch-correspondence sweeping driven by
//! X-valued ternary analysis, multi-frame binary simulation and k-step
//! induction.
//!
//! Activated through [`SweepConfig::seq_depth`] (see
//! [`SweepConfig::sequential`]); [`crate::Sweeper::run`] dispatches here
//! when the depth is nonzero.  The flow mirrors the combinational Fig. 2
//! loop, lifted to reachable states:
//!
//! 1. **Ternary fixpoint** ([`bitsim::ternary_fixpoint`]): iterate the latch
//!    transition functions from the declared initial values with every
//!    primary input at `X`.  A latch whose fixpoint value stays a definite
//!    0/1 holds that value in *every* reachable state and is replaced by the
//!    constant outright — no SAT involved.
//! 2. **Candidate classes**: the remaining concretely-initialised latches
//!    are bucketed by their phase-canonicalised ternary trajectory plus
//!    `seq_depth + 1` frames of word-parallel binary simulation (random
//!    per-frame input patterns, state signatures chained through the
//!    next-state functions).  Latches that ever disagree on a simulated
//!    reachable-ish state can never correspond, so the buckets prune the
//!    quadratic pair space the same way signatures do combinationally.
//! 3. **k-step induction**: each candidate pair `(target, rep, phase)` is
//!    proved on per-candidate unrollings of the original network — a base
//!    case (the pair agrees on the first `seq_depth` frames from the
//!    initial state; a SAT answer is a real counter-example) and an
//!    induction step (agreement over `seq_depth` consecutive frames from an
//!    arbitrary state forces agreement on the next; a SAT answer merely
//!    means the depth was too shallow).  Both UNSAT merge the target latch
//!    into its representative.
//!
//! Candidates are proved speculatively in chunks of
//! [`SweepConfig::sat_parallelism`] on fresh per-candidate solvers and
//! committed in canonical candidate order, so the committed SAT calls,
//! counter-examples and merges — and the swept network — are identical for
//! every `sat_parallelism` × `num_threads`, exactly like the combinational
//! engine.  Budget stops and periodic checkpoints happen at candidate
//! boundaries; a resumed run recomputes the deterministic analysis and
//! continues from the committed-candidate cursor.
//!
//! The whole flow is driven through the ordinary [`crate::Sweeper`]
//! builder — a nonzero [`SweepConfig::sequential`] depth is the only
//! switch.  A duplicated latch is found and merged like so:
//!
//! ```
//! use netlist::{Aig, LatchInit};
//! use stp_sweep::{Engine, SweepConfig, Sweeper};
//!
//! // Two identical latches: q2 mirrors q1's init and transition.
//! let mut aig = Aig::new();
//! let x = aig.add_input("x");
//! let q1 = aig.add_latch("q1", LatchInit::Zero);
//! let q2 = aig.add_latch("q2", LatchInit::Zero);
//! let n1 = aig.xor(q1, x);
//! let n2 = aig.xor(q2, x);
//! aig.set_latch_next(0, n1);
//! aig.set_latch_next(1, n2);
//! let y = aig.and(q1, q2);
//! aig.add_output("y", y);
//!
//! let result = Sweeper::new(Engine::Stp)
//!     .config(SweepConfig::sequential(1)) // k-step induction depth 1
//!     .run(&aig)
//!     .expect("valid config, unlimited budget");
//! assert_eq!(result.report.seq_latches_before, 2);
//! assert_eq!(result.report.seq_latches_after, 1);
//! ```

use crate::budget::BudgetCause;
use crate::checkpoint::{netlist_fingerprint, PhasePod, SweepCheckpoint};
use crate::error::SweepError;
use crate::observer::{Observer, SatCallOutcome, StatsObserver};
use crate::report::{SweepConfig, SweepResult};
use crate::resim::ResimSnapshot;
use crate::session::Sweeper;
use bitsim::{
    ternary_fixpoint, AigSimulator, PatternSet, Signature, TernaryFixpoint, TernaryValue,
};
use netlist::{Aig, AigNode, LatchInit, Lit};
use satsolver::{CircuitSat, EquivOutcome};
use std::collections::HashMap;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Unrolling (shared with the BMC oracle in `crate::bmc`).
// ---------------------------------------------------------------------

/// The literals produced by unrolling a sequential network.
pub(crate) struct UnrolledNet {
    /// `states[f][l]` is latch `l`'s state literal at frame `f`
    /// (`frames + 1` entries).
    pub states: Vec<Vec<Lit>>,
    /// `outputs[f][i]` is the `i`-th real (non-latch) primary output at
    /// frame `f` (`frames` entries).
    pub outputs: Vec<Vec<Lit>>,
}

/// Input positions of `aig` that are genuine primary inputs rather than
/// latch states, in ascending position order.
pub(crate) fn real_pi_positions(aig: &Aig) -> Vec<usize> {
    (0..aig.num_inputs())
        .filter(|&p| aig.latch_of_input(p).is_none())
        .collect()
}

/// Output indices of `aig` that are genuine primary outputs rather than
/// latch next-state functions, in ascending index order.
pub(crate) fn real_po_indices(aig: &Aig) -> Vec<usize> {
    (0..aig.num_outputs())
        .filter(|&i| !aig.is_latch_next_output(i))
        .collect()
}

/// Unrolls `frame_pis.len()` transitions of `aig` into `dest`.
///
/// `frame0[l]` supplies latch `l`'s state literal at frame 0;
/// `frame_pis[f][k]` supplies the literal feeding the `k`-th real primary
/// input (ascending position order) at frame `f`.  Latch states thread
/// through the next-state outputs of each copy.
pub(crate) fn unroll_into(
    dest: &mut Aig,
    aig: &Aig,
    frame0: Vec<Lit>,
    frame_pis: &[Vec<Lit>],
) -> UnrolledNet {
    let real_pis = real_pi_positions(aig);
    let real_pos = real_po_indices(aig);
    let latches = aig.latches();
    debug_assert_eq!(frame0.len(), latches.len());
    let mut states = vec![frame0];
    let mut outputs = Vec::with_capacity(frame_pis.len());
    for pis in frame_pis {
        debug_assert_eq!(pis.len(), real_pis.len());
        let mut input_map = vec![Lit::FALSE; aig.num_inputs()];
        for (&pos, &lit) in real_pis.iter().zip(pis) {
            input_map[pos] = lit;
        }
        let current = states.last().expect("frame 0 present").clone();
        for (latch, &lit) in latches.iter().zip(&current) {
            input_map[latch.state_input] = lit;
        }
        let outs = dest.append(aig, &input_map);
        outputs.push(real_pos.iter().map(|&i| outs[i]).collect());
        states.push(latches.iter().map(|l| outs[l.next_output]).collect());
    }
    UnrolledNet { states, outputs }
}

/// Frame-0 state literals from the declared initial values: concrete
/// initialisations become constants, `X`-initialised latches fresh free
/// inputs.
fn init_frame0(dest: &mut Aig, aig: &Aig) -> Vec<Lit> {
    aig.latches()
        .iter()
        .map(|latch| match latch.init {
            LatchInit::Zero => Lit::FALSE,
            LatchInit::One => Lit::TRUE,
            LatchInit::X => dest.add_input(format!("{}@init", aig.input_name(latch.state_input))),
        })
        .collect()
}

/// Fresh primary-input literals for each of `frames` frames, named after
/// the original inputs.
fn fresh_frame_pis(dest: &mut Aig, aig: &Aig, real_pis: &[usize], frames: usize) -> Vec<Vec<Lit>> {
    (0..frames)
        .map(|f| {
            real_pis
                .iter()
                .map(|&p| dest.add_input(format!("{}@{f}", aig.input_name(p))))
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------
// Analysis: ternary fixpoint + multi-frame binary refinement.
// ---------------------------------------------------------------------

/// One latch-correspondence candidate: prove that `target`'s state equals
/// `rep`'s state (complemented if `complemented`) in every reachable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    target: usize,
    rep: usize,
    complemented: bool,
}

/// The deterministic pre-SAT analysis — a pure function of the network and
/// the configuration, so a resumed run recomputes it instead of carrying it
/// in the checkpoint.
struct SeqAnalysis {
    fix: TernaryFixpoint,
    /// Latches proved constant in every reachable state, with their values.
    constants: Vec<(usize, bool)>,
    /// Induction candidates in canonical (class-representative, member)
    /// order — the engine's fixed processing sequence.
    candidates: Vec<Candidate>,
}

fn ternary_code(value: TernaryValue) -> u8 {
    match value {
        TernaryValue::Zero => 0,
        TernaryValue::One => 1,
        TernaryValue::X => 2,
    }
}

/// Mixes a frame index into the configured seed (splitmix-style odd
/// multiplier) so every frame simulates a distinct random pattern set.
fn frame_seed(seed: u64, frame: usize) -> u64 {
    seed ^ (frame as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn analyse(aig: &Aig, config: &SweepConfig) -> SeqAnalysis {
    let fix = ternary_fixpoint(aig);
    let latches = aig.latches();
    let constants: Vec<(usize, bool)> = (0..latches.len())
        .filter_map(|l| fix.values[l].concrete().map(|v| (l, v)))
        .collect();

    // Candidate eligibility: concretely initialised (an `X` initial value
    // makes the frame-0 states free variables, so the pair could never be
    // proved equal there) and not already a ternary constant.
    let eligible: Vec<usize> = (0..latches.len())
        .filter(|&l| latches[l].init != LatchInit::X && fix.values[l].concrete().is_none())
        .collect();
    if eligible.is_empty() {
        return SeqAnalysis {
            fix,
            constants,
            candidates: Vec::new(),
        };
    }

    // Phase canonicalisation: a latch initialised to 1 is keyed through its
    // complement, so a pair related by inversion lands in one bucket.
    let phase: Vec<bool> = latches.iter().map(|l| l.init == LatchInit::One).collect();

    // Multi-frame binary refinement: `seq_depth + 1` transitions of
    // word-parallel simulation with fresh random inputs per frame; state
    // signatures chain through the next-state functions.  `X`-initialised
    // latches get random frame-0 signatures (they are not candidates, but
    // their values flow into the cones of latches that are).
    let w = config.num_initial_patterns;
    let frames = config.seq_depth + 1;
    let x_init = PatternSet::random(latches.len(), w, frame_seed(config.seed, frames + 1))
        .expect("validated pattern count");
    let mut state: Vec<Signature> = latches
        .iter()
        .enumerate()
        .map(|(l, latch)| match latch.init {
            LatchInit::Zero => Signature::zeros(w),
            LatchInit::One => Signature::ones(w),
            LatchInit::X => x_init.input_signature(l).clone(),
        })
        .collect();
    let mut sig_words: Vec<Vec<u64>> = vec![Vec::new(); latches.len()];
    let accumulate = |sig_words: &mut Vec<Vec<u64>>, state: &[Signature]| {
        for (l, sig) in state.iter().enumerate() {
            let canonical = if phase[l] {
                sig.complement()
            } else {
                sig.clone()
            };
            sig_words[l].extend_from_slice(canonical.words());
        }
    };
    accumulate(&mut sig_words, &state);
    for frame in 0..frames {
        let random = PatternSet::random(aig.num_inputs(), w, frame_seed(config.seed, frame))
            .expect("validated pattern count");
        let mut inputs: Vec<Signature> = (0..aig.num_inputs())
            .map(|p| random.input_signature(p).clone())
            .collect();
        for (latch, sig) in latches.iter().zip(&state) {
            inputs[latch.state_input] = sig.clone();
        }
        let patterns = PatternSet::from_input_signatures(inputs, w);
        let sim = AigSimulator::new(aig).run(&patterns);
        state = latches
            .iter()
            .map(|l| sim.output_signature(aig, l.next_output))
            .collect();
        accumulate(&mut sig_words, &state);
    }

    // Bucket by (canonical ternary trajectory, canonical chained state
    // signatures); classes ordered by their lowest member, members in
    // ascending latch order — the canonical candidate sequence.
    let mut buckets: HashMap<(Vec<u8>, Vec<u64>), Vec<usize>> = HashMap::new();
    for &l in &eligible {
        let trajectory: Vec<u8> = fix.trajectories[l]
            .iter()
            .map(|&v| ternary_code(v.complement_if(phase[l])))
            .collect();
        buckets
            .entry((trajectory, std::mem::take(&mut sig_words[l])))
            .or_default()
            .push(l);
    }
    let mut classes: Vec<Vec<usize>> = buckets.into_values().filter(|c| c.len() > 1).collect();
    classes.sort_by_key(|c| c[0]);
    let mut candidates = Vec::new();
    for class in classes {
        let rep = class[0];
        for &member in &class[1..] {
            candidates.push(Candidate {
                target: member,
                rep,
                complemented: phase[member] != phase[rep],
            });
        }
    }
    SeqAnalysis {
        fix,
        constants,
        candidates,
    }
}

// ---------------------------------------------------------------------
// k-step induction per candidate.
// ---------------------------------------------------------------------

enum Verdict {
    /// Both the base case and the induction step are UNSAT: merge.
    Merge,
    /// The base case is satisfiable — a real reachable-state divergence.
    Refuted(Vec<bool>),
    /// The conflict budget ran out, or the induction step is satisfiable
    /// (the depth was too shallow to conclude either way).
    Undetermined,
}

struct Proof {
    verdict: Verdict,
    /// SAT-call outcomes in issue order (base, then step if reached).
    calls: Vec<SatCallOutcome>,
    sat_time: Duration,
}

/// XOR of the pair's state literals at `frame` of an unrolling.
fn state_diff(dest: &mut Aig, states: &[Vec<Lit>], frame: usize, cand: Candidate) -> Lit {
    let target = states[frame][cand.target];
    let rep = states[frame][cand.rep].complement_if(cand.complemented);
    dest.xor(target, rep)
}

/// Proves one candidate by `k`-step induction on fresh per-candidate
/// unrollings of the original network.  Pure per-candidate work on fresh
/// solvers — byte-identical results for any proving schedule.
fn prove_candidate(aig: &Aig, cand: Candidate, k: usize, conflict_limit: u64) -> Proof {
    let start = Instant::now();
    let mut calls = Vec::with_capacity(2);
    let real_pis = real_pi_positions(aig);

    // Base case: `k - 1` transitions from the initial state; the pair must
    // agree at every one of the first `k` frames.
    let mut base = Aig::new();
    let frame0 = init_frame0(&mut base, aig);
    let pis = fresh_frame_pis(&mut base, aig, &real_pis, k - 1);
    let unrolled = unroll_into(&mut base, aig, frame0, &pis);
    let diffs: Vec<Lit> = (0..k)
        .map(|f| state_diff(&mut base, &unrolled.states, f, cand))
        .collect();
    let violation = base.or_many(&diffs);
    let mut sat = CircuitSat::new(&base);
    match sat.prove_constant(violation, false, conflict_limit) {
        EquivOutcome::CounterExample(assignment) => {
            calls.push(SatCallOutcome::Sat);
            return Proof {
                verdict: Verdict::Refuted(assignment),
                calls,
                sat_time: start.elapsed(),
            };
        }
        EquivOutcome::Undetermined => {
            calls.push(SatCallOutcome::Undetermined);
            return Proof {
                verdict: Verdict::Undetermined,
                calls,
                sat_time: start.elapsed(),
            };
        }
        EquivOutcome::Equivalent => calls.push(SatCallOutcome::Unsat),
    }

    // Induction step: from an arbitrary state, agreement over `k`
    // consecutive frames must force agreement on frame `k`.
    let mut step = Aig::new();
    let frame0: Vec<Lit> = aig
        .latches()
        .iter()
        .map(|latch| step.add_input(format!("{}@free", aig.input_name(latch.state_input))))
        .collect();
    let pis = fresh_frame_pis(&mut step, aig, &real_pis, k);
    let unrolled = unroll_into(&mut step, aig, frame0, &pis);
    let mut terms: Vec<Lit> = (0..k)
        .map(|f| !state_diff(&mut step, &unrolled.states, f, cand))
        .collect();
    terms.push(state_diff(&mut step, &unrolled.states, k, cand));
    let violation = step.and_many(&terms);
    let mut sat = CircuitSat::new(&step);
    let verdict = match sat.prove_constant(violation, false, conflict_limit) {
        EquivOutcome::Equivalent => {
            calls.push(SatCallOutcome::Unsat);
            Verdict::Merge
        }
        EquivOutcome::CounterExample(_) => {
            // Not a real divergence: the induction hypothesis admits
            // unreachable states, so a satisfiable step only means the
            // depth was too shallow.
            calls.push(SatCallOutcome::Sat);
            Verdict::Undetermined
        }
        EquivOutcome::Undetermined => {
            calls.push(SatCallOutcome::Undetermined);
            Verdict::Undetermined
        }
    };
    Proof {
        verdict,
        calls,
        sat_time: start.elapsed(),
    }
}

// ---------------------------------------------------------------------
// Result reconstruction.
// ---------------------------------------------------------------------

enum Subst {
    Const(bool),
    Rep { rep: usize, complemented: bool },
}

/// Rebuilds the network with the proved substitutions applied: removed
/// latches lose their state input and next-state output, their fanouts
/// redirect to the substitution, and dead next-state cones are cleaned up.
/// Input and output order is otherwise preserved.
fn rebuild(aig: &Aig, constants: &[(usize, bool)], merges: &[Candidate]) -> Aig {
    let mut subst: Vec<Option<Subst>> = (0..aig.num_latches()).map(|_| None).collect();
    for &(l, value) in constants {
        subst[l] = Some(Subst::Const(value));
    }
    for c in merges {
        subst[c.target] = Some(Subst::Rep {
            rep: c.rep,
            complemented: c.complemented,
        });
    }

    let mut new = Aig::new();
    let mut node_map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    node_map[0] = Some(Lit::FALSE);
    // Inputs in original order, minus the states of removed latches.
    let mut input_pos_map: Vec<Option<usize>> = vec![None; aig.num_inputs()];
    for (pos, &node) in aig.inputs().iter().enumerate() {
        let removed = aig.latch_of_input(pos).is_some_and(|l| subst[l].is_some());
        if removed {
            continue;
        }
        input_pos_map[pos] = Some(new.num_inputs());
        node_map[node] = Some(new.add_input(aig.input_name(pos)));
    }
    // Removed latch states resolve to their substitutions (representatives
    // always survive, so their new literals exist by now).
    for (l, s) in subst.iter().enumerate() {
        let Some(s) = s else { continue };
        let node = aig.latch_state_lit(l).node();
        node_map[node] = Some(match s {
            Subst::Const(value) => {
                if *value {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            }
            Subst::Rep { rep, complemented } => {
                let rep_node = aig.latch_state_lit(*rep).node();
                node_map[rep_node]
                    .expect("representatives survive")
                    .complement_if(*complemented)
            }
        });
    }
    // AND nodes in topological order, through the strash (substituted
    // states fold constants and share structure on the way).
    for id in aig.node_ids() {
        let AigNode::And { fanin0, fanin1 } = *aig.node(id) else {
            continue;
        };
        let map = |lit: Lit, node_map: &[Option<Lit>]| {
            node_map[lit.node()]
                .expect("fanins precede their node")
                .complement_if(lit.is_complemented())
        };
        let f0 = map(fanin0, &node_map);
        let f1 = map(fanin1, &node_map);
        node_map[id] = Some(new.and(f0, f1));
    }
    // Outputs in original order, minus the next-state outputs of removed
    // latches.
    let latch_of_output: HashMap<usize, usize> = aig
        .latches()
        .iter()
        .enumerate()
        .map(|(l, latch)| (latch.next_output, l))
        .collect();
    let mut output_pos_map: Vec<Option<usize>> = vec![None; aig.num_outputs()];
    for (i, out) in aig.outputs().iter().enumerate() {
        if latch_of_output.get(&i).is_some_and(|&l| subst[l].is_some()) {
            continue;
        }
        let lit = node_map[out.lit.node()]
            .expect("driver mapped")
            .complement_if(out.lit.is_complemented());
        output_pos_map[i] = Some(new.num_outputs());
        new.add_output(out.name.clone(), lit);
    }
    // Re-register the surviving latches at their new positions.
    for (l, latch) in aig.latches().iter().enumerate() {
        if subst[l].is_some() {
            continue;
        }
        new.define_latch(
            input_pos_map[latch.state_input].expect("surviving latch state kept"),
            output_pos_map[latch.next_output].expect("surviving latch next kept"),
            latch.init,
        );
    }
    let (cleaned, _) = new.cleanup();
    cleaned
}

// ---------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------

/// Mutable run state threaded through the candidate loop.
struct SeqRun<'o> {
    stats: StatsObserver,
    observer: Option<&'o mut dyn crate::Observer>,
    merges: Vec<Candidate>,
    cursor: usize,
    refuted: u64,
    undet: u64,
    sat_time: Duration,
}

impl SeqRun<'_> {
    fn notify_sat_call(&mut self, outcome: SatCallOutcome) {
        self.stats.on_sat_call(outcome);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_sat_call(outcome);
        }
    }

    fn notify_merge(&mut self, node: netlist::NodeId, replacement: Lit) {
        self.stats.on_merge(node, replacement);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_merge(node, replacement);
        }
    }

    fn notify_counterexample(&mut self, assignment: &[bool]) {
        self.stats.on_counterexample(assignment);
        if let Some(obs) = self.observer.as_mut() {
            obs.on_counterexample(assignment);
        }
    }
}

/// Builds the sequential engine's checkpoint: the merge log carries the
/// committed induction merges as `(state node, replacement state literal)`
/// pairs, the committed-candidate cursor indexes the canonical candidate
/// list, and everything the analysis derives deterministically (ternary
/// constants, classes, patterns) is recomputed on resume instead of being
/// serialised.
#[allow(clippy::too_many_arguments)]
fn build_seq_checkpoint(
    aig: &Aig,
    engine: crate::Engine,
    config: &SweepConfig,
    round: usize,
    analysis: &SeqAnalysis,
    run: &SeqRun<'_>,
    simulation_time: Duration,
    elapsed: Duration,
) -> SweepCheckpoint {
    SweepCheckpoint {
        fingerprint: netlist_fingerprint(aig),
        canonical_fingerprint: netlist::canonical_fingerprint(aig),
        primed: true,
        engine,
        config: *config,
        round,
        phase: PhasePod::Start,
        merge_log: run
            .merges
            .iter()
            .map(|c| {
                (
                    aig.latch_state_lit(c.target).node(),
                    aig.latch_state_lit(c.rep).complement_if(c.complemented),
                )
            })
            .collect(),
        dont_touch: Vec::new(),
        classes: Vec::new(),
        constants: Vec::new(),
        num_patterns: 0,
        pattern_words: Vec::new(),
        resim: ResimSnapshot {
            last_seen: Vec::new(),
            events: 0,
            resimulated: 0,
            skipped: 0,
        },
        stats: run.stats,
        sweep_sat_calls: run.stats.sat_calls_total(),
        committed_candidates: run.cursor as u64,
        last_compaction_ce: 0,
        cosplit: bitsim::CoSplitSnapshot::default(),
        simulation_time,
        sat_time: run.sat_time,
        elapsed,
        main_solver: CircuitSat::new(aig).snapshot(),
        pool: Vec::new(),
        pool_committed: Vec::new(),
        seq_candidates: analysis.candidates.len() as u64,
        seq_ternary_constants: analysis.constants.len() as u64,
        seq_induction_refuted: run.refuted,
        seq_induction_undet: run.undet,
        seq_ternary_iterations: analysis.fix.iterations as u64,
    }
}

/// Runs (or resumes) a sequential sweep.  Called from [`Sweeper::run`] and
/// [`Sweeper::resume_run`] when `seq_depth > 0`.
pub(crate) fn run_sequential(
    builder: Sweeper<'_>,
    aig: &Aig,
    resume: Option<&SweepCheckpoint>,
) -> Result<SweepResult, SweepError> {
    let mismatch = |what: &str| SweepError::CheckpointMismatch(what.to_string());
    let (engine, config, round) = match resume {
        Some(ckpt) => {
            if ckpt.config().seq_depth == 0 {
                return Err(mismatch(
                    "checkpoint was taken by the combinational engine; resume it \
                     through Sweeper::resume_from",
                ));
            }
            if !ckpt.matches(aig) {
                return Err(mismatch(
                    "netlist fingerprint does not match the checkpoint's — the \
                     checkpoint was taken against a different network",
                ));
            }
            let config = *ckpt.config();
            config.validate()?;
            (ckpt.engine(), config, ckpt.round)
        }
        None => {
            builder.config.validate()?;
            (builder.engine, builder.config, builder.round)
        }
    };
    let k = config.seq_depth;
    debug_assert!(k > 0, "dispatch guarantees a sequential depth");
    let budget = builder.budget;
    let started = Instant::now();

    // A budget exhausted before anything ran: return the input unchanged,
    // with no checkpoint — exactly like an unprimed combinational session.
    if resume.is_none() {
        if let Some(cause) = budget.exceeded(started, 0) {
            let (cleaned, _) = aig.cleanup();
            let stats = StatsObserver::new();
            let mut report = stats.counts();
            report.num_threads = config.num_threads;
            report.sat_parallelism = config.sat_parallelism;
            report.gates_before = aig.num_ands();
            report.gates_after = cleaned.num_ands();
            report.levels = aig.depth();
            report.seq_latches_before = aig.num_latches();
            report.seq_latches_after = cleaned.num_latches();
            report.total_time = started.elapsed();
            return Err(SweepError::BudgetExhausted {
                cause,
                partial: Box::new(SweepResult {
                    aig: cleaned,
                    report,
                }),
                checkpoint: None,
            });
        }
    }

    // Deterministic analysis (recomputed on resume — it is a pure function
    // of the network and the checkpointed configuration).
    let sim_start = Instant::now();
    let analysis = analyse(aig, &config);
    let simulation_time_leg = sim_start.elapsed();

    // Restore (or initialise) the run state.
    let mut run = SeqRun {
        stats: StatsObserver::new(),
        observer: builder.observer,
        merges: Vec::new(),
        cursor: 0,
        refuted: 0,
        undet: 0,
        sat_time: Duration::ZERO,
    };
    let mut simulation_time_base = Duration::ZERO;
    let mut elapsed_base = Duration::ZERO;
    match resume {
        Some(ckpt) => {
            if ckpt.seq_candidates != analysis.candidates.len() as u64
                || ckpt.seq_ternary_constants != analysis.constants.len() as u64
            {
                return Err(mismatch(
                    "recomputed sequential analysis disagrees with the checkpoint",
                ));
            }
            let cursor = ckpt.committed_candidates() as usize;
            if cursor > analysis.candidates.len() {
                return Err(mismatch("committed-candidate cursor is out of range"));
            }
            // Map each merge-log entry back to a candidate through the
            // latch state nodes.
            let latch_of_state: HashMap<netlist::NodeId, usize> = (0..aig.num_latches())
                .map(|l| (aig.latch_state_lit(l).node(), l))
                .collect();
            let mut merges = Vec::with_capacity(ckpt.merge_log.len());
            for &(node, lit) in &ckpt.merge_log {
                let (Some(&target), Some(&rep)) =
                    (latch_of_state.get(&node), latch_of_state.get(&lit.node()))
                else {
                    return Err(mismatch(
                        "merge log references a node that is not a latch state",
                    ));
                };
                merges.push(Candidate {
                    target,
                    rep,
                    complemented: lit.is_complemented(),
                });
            }
            run.merges = merges;
            run.cursor = cursor;
            run.refuted = ckpt.seq_induction_refuted;
            run.undet = ckpt.seq_induction_undet;
            run.stats = ckpt.stats;
            run.sat_time = ckpt.sat_time;
            simulation_time_base = ckpt.simulation_time;
            elapsed_base = ckpt.elapsed;
        }
        None => {
            // Fresh run: announce the round and commit the ternary
            // constants (analysis results, no SAT involved).  A resumed
            // run recomputes them; the restored stats already count them.
            run.stats.on_round(round, aig.num_ands());
            if let Some(obs) = run.observer.as_mut() {
                obs.on_round(round, aig.num_ands());
            }
            for &(l, value) in &analysis.constants {
                let node = aig.latch_state_lit(l).node();
                let replacement = if value { Lit::TRUE } else { Lit::FALSE };
                run.notify_merge(node, replacement);
            }
        }
    }

    // The candidate loop: chunks of `sat_parallelism` proved speculatively
    // on fresh solvers, committed in canonical order.  Budget checks and
    // periodic checkpoints sit at candidate boundaries; results of a chunk
    // past a stop are discarded — a resume re-proves them on fresh solvers
    // with identical outcomes, keeping the committed totals equal to an
    // uninterrupted run's.
    let candidates = &analysis.candidates;
    let mut stopped: Option<BudgetCause> = None;
    let mut last_checkpoint = run.cursor as u64;
    let mut last_checkpoint_instant = Instant::now();
    while run.cursor < candidates.len() && stopped.is_none() {
        if let Some(cause) = budget.exceeded(started, run.stats.sat_calls_total()) {
            stopped = Some(cause);
            break;
        }
        let end = (run.cursor + config.sat_parallelism.max(1)).min(candidates.len());
        let chunk = &candidates[run.cursor..end];
        let proofs: Vec<Proof> = if config.sat_parallelism > 1 && chunk.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunk
                    .iter()
                    .map(|&cand| {
                        scope.spawn(move || prove_candidate(aig, cand, k, config.conflict_limit))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("induction prover thread panicked"))
                    .collect()
            })
        } else {
            chunk
                .iter()
                .map(|&cand| prove_candidate(aig, cand, k, config.conflict_limit))
                .collect()
        };
        for (&cand, proof) in chunk.iter().zip(proofs) {
            if stopped.is_some() {
                break;
            }
            for &call in &proof.calls {
                run.notify_sat_call(call);
            }
            run.sat_time += proof.sat_time;
            match proof.verdict {
                Verdict::Merge => {
                    run.merges.push(cand);
                    let node = aig.latch_state_lit(cand.target).node();
                    let replacement = aig
                        .latch_state_lit(cand.rep)
                        .complement_if(cand.complemented);
                    run.notify_merge(node, replacement);
                }
                Verdict::Refuted(cex) => {
                    run.refuted += 1;
                    run.notify_counterexample(&cex);
                }
                Verdict::Undetermined => run.undet += 1,
            }
            run.cursor += 1;
            if let Some(cause) = budget.exceeded(started, run.stats.sat_calls_total()) {
                stopped = Some(cause);
            } else if checkpoint_due(
                &config,
                run.cursor as u64,
                last_checkpoint,
                last_checkpoint_instant,
            ) {
                last_checkpoint = run.cursor as u64;
                last_checkpoint_instant = Instant::now();
                let ckpt = build_seq_checkpoint(
                    aig,
                    engine,
                    &config,
                    round,
                    &analysis,
                    &run,
                    simulation_time_base + simulation_time_leg,
                    elapsed_base + started.elapsed(),
                );
                let encoded = ckpt.encode();
                run.stats.on_checkpoint(&ckpt, &encoded);
                if let Some(obs) = run.observer.as_mut() {
                    obs.on_checkpoint(&ckpt, &encoded);
                }
            }
        }
    }
    let stop_checkpoint = stopped.map(|_| {
        Box::new(build_seq_checkpoint(
            aig,
            engine,
            &config,
            round,
            &analysis,
            &run,
            simulation_time_base + simulation_time_leg,
            elapsed_base + started.elapsed(),
        ))
    });

    // Apply the proved substitutions and assemble the report.
    let result_aig = rebuild(aig, &analysis.constants, &run.merges);
    let mut report = run.stats.counts();
    report.num_threads = config.num_threads;
    report.sat_parallelism = config.sat_parallelism;
    report.gates_before = aig.num_ands();
    report.gates_after = result_aig.num_ands();
    report.levels = aig.depth();
    report.seq_latches_before = aig.num_latches();
    report.seq_latches_after = result_aig.num_latches();
    report.seq_candidates = analysis.candidates.len() as u64;
    report.seq_ternary_constants = analysis.constants.len() as u64;
    report.seq_induction_refuted = run.refuted;
    report.seq_induction_undet = run.undet;
    report.ternary_iterations = analysis.fix.iterations as u64;
    report.simulation_time = simulation_time_base + simulation_time_leg;
    report.sat_time = run.sat_time;
    report.total_time = elapsed_base + started.elapsed();
    let result = SweepResult {
        aig: result_aig,
        report,
    };
    match stopped {
        None => Ok(result),
        Some(cause) => Err(SweepError::BudgetExhausted {
            cause,
            partial: Box::new(result),
            checkpoint: stop_checkpoint,
        }),
    }
}

/// Candidate-count or wall-clock checkpoint cadence (same rules as the
/// combinational session).
fn checkpoint_due(
    config: &SweepConfig,
    cursor: u64,
    last_checkpoint: u64,
    last_checkpoint_instant: Instant,
) -> bool {
    let interval = config.checkpoint_interval;
    if interval > 0 && cursor.saturating_sub(last_checkpoint) >= interval as u64 {
        return true;
    }
    let millis = config.checkpoint_interval_millis;
    millis > 0 && last_checkpoint_instant.elapsed() >= Duration::from_millis(millis)
}
