//! Combinational equivalence checking (the `&cec` analog).
//!
//! Every sweep in the test-suite and the benchmark harness is verified with
//! this checker, mirroring the paper's "all results are verified by `&cec`".
//! The checker builds a miter of the two networks, filters with random
//! simulation and finishes with SAT.

use crate::patterns;
use bitsim::AigSimulator;
use netlist::{Aig, Lit};
use satsolver::{CircuitSat, EquivOutcome};

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CecResult {
    /// `true` if the two networks were proved equivalent.
    pub equivalent: bool,
    /// A distinguishing input assignment, when one was found.
    pub counterexample: Option<Vec<bool>>,
    /// `true` if the SAT budget ran out before a verdict.
    pub undetermined: bool,
}

/// Builds the miter of two networks: shared inputs, one output that is 1 iff
/// any pair of corresponding outputs differs.
///
/// # Panics
///
/// Panics if the networks have different input or output counts.
pub fn build_miter(a: &Aig, b: &Aig) -> Aig {
    assert_eq!(
        a.num_inputs(),
        b.num_inputs(),
        "miter requires equal input counts"
    );
    assert_eq!(
        a.num_outputs(),
        b.num_outputs(),
        "miter requires equal output counts"
    );
    let mut miter = Aig::new();
    let inputs: Vec<Lit> = (0..a.num_inputs())
        .map(|i| miter.add_input(a.input_name(i).to_string()))
        .collect();
    let outs_a = miter.append(a, &inputs);
    let outs_b = miter.append(b, &inputs);
    let diffs: Vec<Lit> = outs_a
        .iter()
        .zip(outs_b.iter())
        .map(|(&x, &y)| miter.xor(x, y))
        .collect();
    let any_diff = miter.or_many(&diffs);
    miter.add_output("miter", any_diff);
    miter
}

/// Checks whether two networks are combinationally equivalent.
///
/// Random simulation is used first (a cheap refutation filter); if no
/// difference shows up the miter output is proved constant-false with SAT
/// using the given conflict budget.
pub fn check_equivalence(a: &Aig, b: &Aig, conflict_limit: u64) -> CecResult {
    let miter = build_miter(a, b);
    // Simulation filter.
    let sim_patterns = patterns::random_patterns(&miter, 256, 0xCEC);
    let state = AigSimulator::new(&miter).run(&sim_patterns);
    let out_sig = state.output_signature(&miter, 0);
    if !out_sig.is_const0() {
        let pattern = (0..out_sig.len())
            .find(|&p| out_sig.get_bit(p))
            .expect("a set bit exists");
        return CecResult {
            equivalent: false,
            counterexample: Some(sim_patterns.assignment(pattern)),
            undetermined: false,
        };
    }
    // SAT proof.
    let miter_out = miter.outputs()[0].lit;
    let mut sat = CircuitSat::new(&miter);
    match sat.prove_constant(miter_out, false, conflict_limit) {
        EquivOutcome::Equivalent => CecResult {
            equivalent: true,
            counterexample: None,
            undetermined: false,
        },
        EquivOutcome::CounterExample(ce) => CecResult {
            equivalent: false,
            counterexample: Some(ce),
            undetermined: false,
        },
        EquivOutcome::Undetermined => CecResult {
            equivalent: false,
            counterexample: None,
            undetermined: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder(width: usize, structural_variant: bool) -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_inputs("a", width);
        let b = aig.add_inputs("b", width);
        let mut carry = Lit::FALSE;
        for i in 0..width {
            let (sum, cout) = if structural_variant {
                // Majority/XOR full adder.
                let s1 = aig.xor(a[i], b[i]);
                let sum = aig.xor(s1, carry);
                let cout = aig.maj(a[i], b[i], carry);
                (sum, cout)
            } else {
                // AND/OR full adder.
                let s1 = aig.xor(a[i], b[i]);
                let sum = aig.xor(s1, carry);
                let c1 = aig.and(a[i], b[i]);
                let c2 = aig.and(s1, carry);
                let cout = aig.or(c1, c2);
                (sum, cout)
            };
            aig.add_output(format!("s{i}"), sum);
            carry = cout;
        }
        aig.add_output("cout", carry);
        aig
    }

    #[test]
    fn equivalent_adders_are_proved() {
        let a = adder(4, false);
        let b = adder(4, true);
        let result = check_equivalence(&a, &b, 100_000);
        assert!(
            result.equivalent,
            "structural variants compute the same sum"
        );
        assert!(result.counterexample.is_none());
    }

    #[test]
    fn different_networks_yield_counterexample() {
        let a = adder(3, false);
        let mut b = adder(3, false);
        // Corrupt one output of b.
        let last = b.num_outputs() - 1;
        let flipped = !b.outputs()[last].lit;
        b.set_output_lit(last, flipped);
        let result = check_equivalence(&a, &b, 100_000);
        assert!(!result.equivalent);
        let ce = result.counterexample.expect("counter-example exists");
        assert_ne!(a.evaluate(&ce), b.evaluate(&ce));
    }

    #[test]
    fn identical_networks_trivially_equivalent() {
        let a = adder(2, true);
        let result = check_equivalence(&a, &a.clone(), 10_000);
        assert!(result.equivalent);
    }

    #[test]
    #[should_panic(expected = "equal input counts")]
    fn mismatched_interfaces_panic() {
        let a = adder(2, false);
        let b = adder(3, false);
        let _ = check_equivalence(&a, &b, 1_000);
    }

    #[test]
    fn miter_structure() {
        let a = adder(2, false);
        let b = adder(2, true);
        let miter = build_miter(&a, &b);
        assert_eq!(miter.num_inputs(), a.num_inputs());
        assert_eq!(miter.num_outputs(), 1);
    }
}
