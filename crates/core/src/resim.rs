//! Incremental counter-example resimulation.
//!
//! When a satisfiable SAT query produces a counter-example, the sweeping
//! engine needs the *new pattern's* value for every node that is still a
//! merge candidate — nothing else.  The original engines either re-simulated
//! the whole network over the whole grown pattern set (the baseline) or
//! re-derived targets through window cuts (the STP engine) without tracking
//! how much work was avoided.
//!
//! [`ResimEngine`] centralises the bookkeeping for both engines:
//!
//! * [`eval_pattern_targets`] evaluates a single input assignment over the
//!   transitive fanin of the target nodes only — an `O(|TFI(targets)|)`
//!   single-bit sweep instead of an `O(nodes × patterns)` full pass;
//! * the engine maintains a **dirty set** keyed by transitive fanout: an AND
//!   node becomes dirty the first time a resimulation event skips it (its
//!   cumulative signature history stops being extended).  Because targets
//!   are always the members of the current candidate classes, and classes
//!   only ever shrink, a node that went dirty is never needed again — the
//!   engine asserts this invariant on every event.
//!
//! The per-event counts (nodes resimulated vs. nodes a `simulate_all` pass
//! would have touched) feed [`crate::Observer::on_resimulation`] and the
//! resimulation fields of [`crate::SweepReport`].

use bitsim::Signature;
use netlist::{Aig, AigNode, NodeId};
use std::collections::HashMap;

/// Evaluates the single input `assignment` over the transitive fanin of
/// `targets` and returns each target's value as a one-pattern [`Signature`]
/// (the shape [`crate::equiv::EquivClasses::refine`] consumes), together
/// with the sorted list of AND nodes that were evaluated.
///
/// # Panics
///
/// Panics if the assignment length differs from the AIG's input count or a
/// target id is out of range.
pub fn eval_pattern_targets(
    aig: &Aig,
    assignment: &[bool],
    targets: &[NodeId],
) -> (HashMap<NodeId, Signature>, Vec<NodeId>) {
    assert_eq!(
        assignment.len(),
        aig.num_inputs(),
        "assignment length must equal the number of inputs"
    );
    let num_nodes = aig.num_nodes();
    let mut value = vec![false; num_nodes];
    let mut known = vec![false; num_nodes];
    let mut evaluated: Vec<NodeId> = Vec::new();
    // Iterative post-order walk restricted to the targets' transitive fanin.
    let mut stack: Vec<(NodeId, bool)> = targets.iter().rev().map(|&t| (t, false)).collect();
    while let Some((id, expanded)) = stack.pop() {
        if known[id] {
            continue;
        }
        match aig.node(id) {
            AigNode::Const0 => known[id] = true,
            AigNode::Input { position } => {
                value[id] = assignment[*position];
                known[id] = true;
            }
            AigNode::And { fanin0, fanin1 } => {
                if expanded {
                    let v0 = value[fanin0.node()] ^ fanin0.is_complemented();
                    let v1 = value[fanin1.node()] ^ fanin1.is_complemented();
                    value[id] = v0 && v1;
                    known[id] = true;
                    evaluated.push(id);
                } else {
                    stack.push((id, true));
                    if !known[fanin0.node()] {
                        stack.push((fanin0.node(), false));
                    }
                    if !known[fanin1.node()] {
                        stack.push((fanin1.node(), false));
                    }
                }
            }
        }
    }
    let map = targets
        .iter()
        .map(|&t| (t, Signature::from_bits(std::iter::once(value[t]))))
        .collect();
    evaluated.sort_unstable();
    (map, evaluated)
}

/// Counts of one incremental resimulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResimEvent {
    /// Nodes whose fresh value was requested (current class members and
    /// constant candidates).
    pub targets: usize,
    /// AND nodes actually evaluated for the new pattern.
    pub resimulated: usize,
    /// AND nodes a `simulate_all` pass would have evaluated on top of that
    /// (they went, or stayed, dirty instead).
    pub skipped: usize,
}

/// The dirty-set bookkeeper of incremental resimulation.
///
/// One engine instance accompanies one sweeping run; every counter-example
/// resimulation is recorded through [`ResimEngine::record_event`].
#[derive(Debug, Clone)]
pub struct ResimEngine {
    /// The event epoch each node was last evaluated in (0 = only the
    /// priming simulation).  Because target sets — and therefore evaluated
    /// sets — only ever shrink, a node is dirty exactly when it missed the
    /// *latest* event: `last_seen[id] != events`.  This keeps
    /// [`ResimEngine::record_event`] at one write per evaluated node
    /// instead of a full-network scan per counter-example.
    last_seen: Vec<u64>,
    is_and: Vec<bool>,
    num_and_nodes: usize,
    events: u64,
    resimulated: u64,
    skipped: u64,
}

impl ResimEngine {
    /// Creates the bookkeeper for a network; nothing is dirty initially
    /// (the priming simulation covers every node).
    pub fn new(aig: &Aig) -> Self {
        let is_and: Vec<bool> = aig
            .node_ids()
            .map(|id| matches!(aig.node(id), AigNode::And { .. }))
            .collect();
        ResimEngine {
            last_seen: vec![0; aig.num_nodes()],
            num_and_nodes: aig.num_ands(),
            is_and,
            events: 0,
            resimulated: 0,
            skipped: 0,
        }
    }

    /// Records one resimulation event: `evaluated` lists the AND nodes the
    /// kernel refreshed.  Every other AND node of the network counts as
    /// skipped and goes (or stays) dirty.  Returns the event's counts.
    ///
    /// # Panics
    ///
    /// Debug-asserts that no evaluated node was already dirty — a dirty node
    /// has an incomplete signature history and must never re-enter the
    /// target set (candidate classes only shrink).
    pub fn record_event(&mut self, targets: usize, evaluated: &[NodeId]) -> ResimEvent {
        debug_assert!(
            evaluated
                .iter()
                .all(|&id| self.last_seen[id] == self.events),
            "a dirty node re-entered the resimulation target set"
        );
        self.events += 1;
        for &id in evaluated {
            self.last_seen[id] = self.events;
        }
        let event = ResimEvent {
            targets,
            resimulated: evaluated.len(),
            skipped: self.num_and_nodes.saturating_sub(evaluated.len()),
        };
        self.resimulated += event.resimulated as u64;
        self.skipped += event.skipped as u64;
        event
    }

    /// Number of resimulation events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total AND nodes evaluated across all events.
    pub fn resimulated_nodes(&self) -> u64 {
        self.resimulated
    }

    /// Total AND nodes skipped across all events (work a `simulate_all`
    /// strategy would have done).
    pub fn skipped_nodes(&self) -> u64 {
        self.skipped
    }

    /// `true` if the node's cumulative signature history is incomplete.
    /// Inputs and the constant never go dirty — their values are free.
    pub fn is_dirty(&self, node: NodeId) -> bool {
        self.is_and[node] && self.last_seen[node] != self.events
    }

    /// Captures the dirty-set state for a checkpoint (the `is_and` map is a
    /// pure function of the network and is re-derived on restore).
    pub fn snapshot(&self) -> ResimSnapshot {
        ResimSnapshot {
            last_seen: self.last_seen.clone(),
            events: self.events,
            resimulated: self.resimulated,
            skipped: self.skipped,
        }
    }

    /// Rebuilds the bookkeeper for `aig` from a snapshot taken against the
    /// same network; a wrong-sized snapshot is rejected.
    pub fn from_snapshot(aig: &Aig, snap: &ResimSnapshot) -> Result<Self, &'static str> {
        if snap.last_seen.len() != aig.num_nodes() {
            return Err("resimulation snapshot was taken against a different network");
        }
        if snap.last_seen.iter().any(|&e| e > snap.events) {
            return Err("resimulation snapshot records an event from the future");
        }
        let mut engine = ResimEngine::new(aig);
        engine.last_seen = snap.last_seen.clone();
        engine.events = snap.events;
        engine.resimulated = snap.resimulated;
        engine.skipped = snap.skipped;
        Ok(engine)
    }
}

/// The serialisable state of a [`ResimEngine`] (see
/// [`ResimEngine::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResimSnapshot {
    /// The event epoch each node was last evaluated in.
    pub last_seen: Vec<u64>,
    /// Resimulation events recorded so far.
    pub events: u64,
    /// Total AND nodes evaluated across all events.
    pub resimulated: u64,
    /// Total AND nodes skipped across all events.
    pub skipped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitsim::{AigSimulator, PatternSet};

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 5);
        let g1 = aig.and(xs[0], xs[1]);
        let g2 = aig.xor(xs[2], xs[3]);
        let g3 = aig.maj(xs[2], xs[3], xs[4]);
        let g4 = aig.mux(g1, g2, g3);
        aig.add_output("y", g4);
        aig.add_output("z", !g2);
        aig
    }

    #[test]
    fn single_pattern_eval_matches_full_simulation() {
        let aig = sample_aig();
        let targets: Vec<NodeId> = aig.and_ids().collect();
        let patterns = PatternSet::random(5, 40, 77).unwrap();
        let full = AigSimulator::new(&aig).run(&patterns);
        for p in 0..patterns.num_patterns() {
            let assignment = patterns.assignment(p);
            let (values, evaluated) = eval_pattern_targets(&aig, &assignment, &targets);
            assert_eq!(evaluated.len(), aig.num_ands());
            for &t in &targets {
                assert_eq!(
                    values[&t].get_bit(0),
                    full.signature(t).get_bit(p),
                    "node {t}, pattern {p}"
                );
            }
        }
    }

    #[test]
    fn restricted_targets_visit_only_their_fanin() {
        let aig = sample_aig();
        // g1 = and(x0, x1) is the first AND node; its TFI holds no other AND.
        let first_and = aig.and_ids().next().unwrap();
        let (values, evaluated) =
            eval_pattern_targets(&aig, &[true, true, false, false, false], &[first_and]);
        assert_eq!(evaluated, vec![first_and]);
        assert!(values[&first_and].get_bit(0));
    }

    #[test]
    fn record_event_accumulates_and_marks_dirty() {
        let aig = sample_aig();
        let mut engine = ResimEngine::new(&aig);
        let all_ands: Vec<NodeId> = aig.and_ids().collect();
        let first = engine.record_event(all_ands.len(), &all_ands);
        assert_eq!(first.resimulated, aig.num_ands());
        assert_eq!(first.skipped, 0);

        let shrunk = &all_ands[..1];
        let second = engine.record_event(1, shrunk);
        assert_eq!(second.resimulated, 1);
        assert_eq!(second.skipped, aig.num_ands() - 1);
        assert_eq!(engine.events(), 2);
        assert_eq!(engine.resimulated_nodes(), (aig.num_ands() + 1) as u64);
        assert_eq!(engine.skipped_nodes(), (aig.num_ands() - 1) as u64);
        assert!(!engine.is_dirty(all_ands[0]));
        assert!(engine.is_dirty(all_ands[1]));
    }
}
