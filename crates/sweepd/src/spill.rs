//! Durable spilling of jobs and checkpoints — the daemon's crash-recovery
//! substrate.
//!
//! Each job owns up to two files in the spill directory, named by the
//! canonical fingerprint of its netlist:
//!
//! * `<fp:016x>.job` — submission metadata (priority, engine, preset,
//!   pass script) and the original AIGER bytes.  Written once at
//!   submission.
//! * `<fp:016x>.ckpt` — the latest encoded [`stp_sweep::SweepCheckpoint`].
//!   Rewritten at every suspension (and, when a wall-clock cadence is
//!   configured, periodically *within* a slice).
//!
//! Every write goes to a `.tmp` sibling first and is moved into place with
//! an atomic rename, and every file carries an FNV-1a checksum, so a crash
//! mid-write can never leave a half-written file that scans as valid.  On
//! restart, [`SpillDir::scan`] re-adopts every intact job; a corrupt
//! checkpoint degrades to re-running the job from scratch (correct, just
//! slower), and a corrupt metadata file is skipped entirely.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::job::{engine_from_u8, engine_to_u8, Priority};
use crate::protocol::Preset;
use stp_sweep::Engine;

/// Current `.job` format: v2 plus a trailing shard count.
const JOB_MAGIC: &[u8; 4] = b"SWJ3";
/// The pre-shard `.job` format, still accepted by [`SpillDir::read_job`]
/// (its jobs run unsharded).
const JOB_MAGIC_V2: &[u8; 4] = b"SWJ2";
/// The pre-pass-script `.job` format, still accepted by
/// [`SpillDir::read_job`] (its jobs carry an empty script and run
/// unsharded).
const JOB_MAGIC_V1: &[u8; 4] = b"SWJ1";
const CKPT_MAGIC: &[u8; 4] = b"SWC1";

/// FNV-1a, the workspace's stock integrity hash for sidecar files.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// What a `.job` file records about a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpilledJob {
    /// Scheduling priority at submission.
    pub priority: Priority,
    /// Engine the job runs under.
    pub engine: Engine,
    /// Configuration preset the job runs under.
    pub preset: Preset,
    /// The original AIGER bytes — resumes always run against this exact
    /// netlist, which is what makes spilled checkpoints byte-exact.
    pub aiger: Vec<u8>,
    /// Pass script of a scripted submission; empty for a plain sweep
    /// (and for every job recovered from a v1 `.job` file).
    pub passes: String,
    /// Shard count of the sweep ([`stp_sweep::SweepConfig::shards`]);
    /// `0` — unsharded — for every job recovered from a v1/v2 `.job`
    /// file.
    pub shards: u32,
}

/// One job recovered by [`SpillDir::scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJob {
    /// Canonical fingerprint the files were keyed by.
    pub canonical_fingerprint: u64,
    /// The submission metadata.
    pub job: SpilledJob,
    /// The latest intact checkpoint bytes, if any were spilled.
    pub checkpoint: Option<Vec<u8>>,
}

/// A directory the daemon spills to.
#[derive(Debug, Clone)]
pub struct SpillDir {
    dir: PathBuf,
}

impl SpillDir {
    /// Opens (creating if needed) a spill directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SpillDir { dir })
    }

    /// The directory being spilled to.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn job_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.job"))
    }

    fn ckpt_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.ckpt"))
    }

    /// Writes `payload` (with magic and checksum) atomically to `path`.
    fn write_atomic(path: &Path, magic: &[u8; 4], payload: &[u8]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(payload.len() + 12);
        bytes.extend_from_slice(magic);
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&fnv64(&bytes).to_be_bytes());
        // Keep the `.job` and `.ckpt` staging files apart: both live under
        // the same hex stem, and concurrent writes must not collide.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, path)
    }

    /// Reads a checksummed file back; `Ok(None)` when missing, an error
    /// when present but corrupt.
    fn read_verified(path: &Path, magic: &[u8; 4]) -> io::Result<Option<Vec<u8>>> {
        Ok(Self::read_verified_any(path, &[magic])?.map(|(_, body)| body))
    }

    /// Like [`Self::read_verified`], but accepting any of several format
    /// magics; returns the index of the one that matched alongside the
    /// payload, so callers can parse older layouts.
    fn read_verified_any(path: &Path, magics: &[&[u8; 4]]) -> io::Result<Option<(usize, Vec<u8>)>> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(err) => return Err(err),
        };
        let corrupt = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {what}", path.display()),
            )
        };
        let which = if bytes.len() >= 12 {
            magics.iter().position(|magic| &bytes[..4] == *magic)
        } else {
            None
        };
        let Some(which) = which else {
            return Err(corrupt("bad magic or truncated"));
        };
        let (body, sum) = bytes.split_at(bytes.len() - 8);
        if fnv64(body) != u64::from_be_bytes(sum.try_into().expect("8 bytes")) {
            return Err(corrupt("checksum mismatch"));
        }
        Ok(Some((which, body[4..].to_vec())))
    }

    /// Records a submission durably.
    pub fn write_job(&self, fp: u64, job: &SpilledJob) -> io::Result<()> {
        let mut payload = Vec::with_capacity(job.aiger.len() + job.passes.len() + 24);
        payload.push(job.priority.to_u8());
        payload.push(engine_to_u8(job.engine));
        payload.push(job.preset.to_u8());
        payload.extend_from_slice(&(job.aiger.len() as u64).to_be_bytes());
        payload.extend_from_slice(&job.aiger);
        payload.extend_from_slice(&(job.passes.len() as u32).to_be_bytes());
        payload.extend_from_slice(job.passes.as_bytes());
        payload.extend_from_slice(&job.shards.to_be_bytes());
        Self::write_atomic(&self.job_path(fp), JOB_MAGIC, &payload)
    }

    /// Reads a submission back; `Ok(None)` when no `.job` file exists.
    /// The current (`SWJ3`) and both older (`SWJ2`, `SWJ1`) layouts are
    /// accepted; v2 jobs come back unsharded, v1 jobs additionally with
    /// an empty pass script.
    pub fn read_job(&self, fp: u64) -> io::Result<Option<SpilledJob>> {
        let Some((which, payload)) =
            Self::read_verified_any(&self.job_path(fp), &[JOB_MAGIC, JOB_MAGIC_V2, JOB_MAGIC_V1])?
        else {
            return Ok(None);
        };
        let is_v1 = which == 2;
        let has_shards = which == 0;
        let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if payload.len() < 11 {
            return Err(corrupt("job record truncated"));
        }
        let priority = Priority::from_u8(payload[0]).ok_or_else(|| corrupt("bad priority"))?;
        let engine = engine_from_u8(payload[1]).ok_or_else(|| corrupt("bad engine"))?;
        let preset = Preset::from_u8(payload[2]).ok_or_else(|| corrupt("bad preset"))?;
        let len = u64::from_be_bytes(payload[3..11].try_into().expect("8 bytes")) as usize;
        let aiger_end = 11usize
            .checked_add(len)
            .filter(|&end| end <= payload.len())
            .ok_or_else(|| corrupt("job record length mismatch"))?;
        let (passes, shards) = if is_v1 {
            if payload.len() != aiger_end {
                return Err(corrupt("job record length mismatch"));
            }
            (String::new(), 0)
        } else {
            if payload.len() < aiger_end + 4 {
                return Err(corrupt("job record truncated"));
            }
            let passes_len = u32::from_be_bytes(
                payload[aiger_end..aiger_end + 4]
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            let passes_end = aiger_end
                .checked_add(4 + passes_len)
                .filter(|&end| end <= payload.len())
                .ok_or_else(|| corrupt("job record length mismatch"))?;
            let tail = if has_shards { 4 } else { 0 };
            if payload.len() != passes_end + tail {
                return Err(corrupt("job record length mismatch"));
            }
            let passes = String::from_utf8(payload[aiger_end + 4..passes_end].to_vec())
                .map_err(|_| corrupt("non-UTF-8 pass script"))?;
            let shards = if has_shards {
                u32::from_be_bytes(payload[passes_end..].try_into().expect("4 bytes"))
            } else {
                0
            };
            (passes, shards)
        };
        Ok(Some(SpilledJob {
            priority,
            engine,
            preset,
            aiger: payload[11..aiger_end].to_vec(),
            passes,
            shards,
        }))
    }

    /// Records the latest checkpoint durably, replacing any previous one.
    pub fn write_checkpoint(&self, fp: u64, encoded: &[u8]) -> io::Result<()> {
        Self::write_atomic(&self.ckpt_path(fp), CKPT_MAGIC, encoded)
    }

    /// Reads the latest checkpoint back; `Ok(None)` when none was spilled.
    pub fn read_checkpoint(&self, fp: u64) -> io::Result<Option<Vec<u8>>> {
        Self::read_verified(&self.ckpt_path(fp), CKPT_MAGIC)
    }

    /// Forgets a job: removes both of its files (missing files are fine).
    pub fn remove(&self, fp: u64) -> io::Result<()> {
        for path in [self.job_path(fp), self.ckpt_path(fp)] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(err) if err.kind() == io::ErrorKind::NotFound => {}
                Err(err) => return Err(err),
            }
        }
        Ok(())
    }

    /// Finds every intact spilled job, for re-adoption at daemon start.
    ///
    /// Corrupt or orphaned files are left in place and skipped; a corrupt
    /// checkpoint demotes its job to "recovered without checkpoint".
    pub fn scan(&self) -> io::Result<Vec<RecoveredJob>> {
        let mut recovered = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(stem) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".job"))
            else {
                continue;
            };
            let Ok(fp) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let Ok(Some(job)) = self.read_job(fp) else {
                continue;
            };
            let checkpoint = self.read_checkpoint(fp).unwrap_or(None);
            recovered.push(RecoveredJob {
                canonical_fingerprint: fp,
                job,
                checkpoint,
            });
        }
        recovered.sort_by_key(|job| job.canonical_fingerprint);
        Ok(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fresh_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sweepd-spill-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_job() -> SpilledJob {
        SpilledJob {
            priority: Priority::High,
            engine: Engine::Stp,
            preset: Preset::Fast,
            aiger: b"aag 1 1 0 1 0\n2\n2\n".to_vec(),
            passes: String::new(),
            shards: 0,
        }
    }

    #[test]
    fn scripted_jobs_round_trip_and_v1_files_still_read() {
        let spill = SpillDir::open(fresh_dir("script")).expect("open");
        let scripted = SpilledJob {
            passes: "strash;rewrite;sweep(stp);verify".into(),
            shards: 4,
            ..sample_job()
        };
        spill.write_job(0xC0, &scripted).expect("write");
        assert_eq!(spill.read_job(0xC0).expect("read"), Some(scripted));

        // A `.job` file spilled by a pre-script build: same payload, SWJ1
        // magic, no trailing script field.  It must read back with an
        // empty script, not an error.
        let v1 = sample_job();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOB_MAGIC_V1);
        bytes.push(v1.priority.to_u8());
        bytes.push(engine_to_u8(v1.engine));
        bytes.push(v1.preset.to_u8());
        bytes.extend_from_slice(&(v1.aiger.len() as u64).to_be_bytes());
        bytes.extend_from_slice(&v1.aiger);
        bytes.extend_from_slice(&fnv64(&bytes).to_be_bytes());
        fs::write(spill.path().join(format!("{:016x}.job", 0xC1u64)), &bytes).expect("write v1");
        assert_eq!(spill.read_job(0xC1).expect("read v1"), Some(v1));

        // A `.job` file spilled by a pre-shard build: SWJ2 magic, a pass
        // script, no trailing shard count.  It must read back unsharded.
        let v2 = SpilledJob {
            passes: "strash;sweep(stp)".into(),
            ..sample_job()
        };
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOB_MAGIC_V2);
        bytes.push(v2.priority.to_u8());
        bytes.push(engine_to_u8(v2.engine));
        bytes.push(v2.preset.to_u8());
        bytes.extend_from_slice(&(v2.aiger.len() as u64).to_be_bytes());
        bytes.extend_from_slice(&v2.aiger);
        bytes.extend_from_slice(&(v2.passes.len() as u32).to_be_bytes());
        bytes.extend_from_slice(v2.passes.as_bytes());
        bytes.extend_from_slice(&fnv64(&bytes).to_be_bytes());
        fs::write(spill.path().join(format!("{:016x}.job", 0xC2u64)), &bytes).expect("write v2");
        assert_eq!(spill.read_job(0xC2).expect("read v2"), Some(v2));
        assert_eq!(spill.scan().expect("scan").len(), 3);
        let _ = fs::remove_dir_all(spill.path());
    }

    #[test]
    fn job_and_checkpoint_round_trip() {
        let spill = SpillDir::open(fresh_dir("roundtrip")).expect("open");
        let job = sample_job();
        spill.write_job(0xAB, &job).expect("write job");
        spill
            .write_checkpoint(0xAB, b"checkpoint-bytes")
            .expect("write ckpt");
        assert_eq!(spill.read_job(0xAB).expect("read"), Some(job.clone()));
        assert_eq!(
            spill.read_checkpoint(0xAB).expect("read"),
            Some(b"checkpoint-bytes".to_vec())
        );

        let recovered = spill.scan().expect("scan");
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].canonical_fingerprint, 0xAB);
        assert_eq!(recovered[0].job, job);
        assert_eq!(
            recovered[0].checkpoint.as_deref(),
            Some(&b"checkpoint-bytes"[..])
        );

        spill.remove(0xAB).expect("remove");
        assert_eq!(spill.read_job(0xAB).expect("read"), None);
        assert!(spill.scan().expect("scan").is_empty());
        spill.remove(0xAB).expect("removing a missing job is fine");
        let _ = fs::remove_dir_all(spill.path());
    }

    #[test]
    fn rewriting_a_checkpoint_replaces_the_previous_one() {
        let spill = SpillDir::open(fresh_dir("rewrite")).expect("open");
        spill.write_checkpoint(7, b"first").expect("write");
        spill.write_checkpoint(7, b"second").expect("write");
        assert_eq!(
            spill.read_checkpoint(7).expect("read"),
            Some(b"second".to_vec())
        );
        let _ = fs::remove_dir_all(spill.path());
    }

    #[test]
    fn corruption_is_detected_and_scan_degrades_gracefully() {
        let spill = SpillDir::open(fresh_dir("corrupt")).expect("open");
        let job = sample_job();
        spill.write_job(1, &job).expect("write");
        spill
            .write_checkpoint(1, b"good-checkpoint")
            .expect("write");

        // Flip a byte inside the checkpoint body: the checksum must catch it
        // and scan must still recover the job, minus its checkpoint.
        let ckpt_path = spill.path().join(format!("{:016x}.ckpt", 1));
        let mut bytes = fs::read(&ckpt_path).expect("read raw");
        bytes[6] ^= 0xFF;
        fs::write(&ckpt_path, &bytes).expect("re-write");
        assert!(spill.read_checkpoint(1).is_err());
        let recovered = spill.scan().expect("scan");
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].checkpoint, None);

        // Corrupt metadata drops the whole job from the scan.
        let job_path = spill.path().join(format!("{:016x}.job", 1));
        let mut bytes = fs::read(&job_path).expect("read raw");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&job_path, &bytes).expect("re-write");
        assert!(spill.read_job(1).is_err());
        assert!(spill.scan().expect("scan").is_empty());
        let _ = fs::remove_dir_all(spill.path());
    }

    #[test]
    fn scan_ignores_stray_files() {
        let spill = SpillDir::open(fresh_dir("stray")).expect("open");
        fs::write(spill.path().join("notes.txt"), b"hi").expect("write");
        fs::write(spill.path().join("zzzz.job"), b"not hex, not valid").expect("write");
        fs::write(spill.path().join("00000000000000aa.tmp"), b"half a write").expect("write");
        assert!(spill.scan().expect("scan").is_empty());
        let _ = fs::remove_dir_all(spill.path());
    }
}
