//! The wire protocol shared by the daemon and `sweepctl`.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by the payload.  Payloads are a tag byte followed by
//! fixed-width big-endian integers and length-prefixed byte strings —
//! deliberately dependency-free and versioned by the leading
//! [`PROTOCOL_VERSION`] byte of every payload: known older versions
//! (from [`MIN_PROTOCOL_VERSION`]) decode with their missing fields
//! defaulted, and anything else fails with a clear error instead of a
//! decode panic.

use std::fmt;
use std::io::{self, Read, Write};

use crate::job::{engine_from_u8, engine_to_u8, JobCounters, JobId, JobInfo, JobState, Priority};
use stp_sweep::Engine;

/// Version byte leading every payload.  Bump on any incompatible change.
///
/// Version history:
///
/// * **1** — the original protocol.
/// * **2** — `Submit` carries a pass script (the
///   [`stp_sweep::PassManager::parse`] grammar); empty means "run the
///   engine's plain sweep", exactly what a v1 submission requests.
/// * **3** — `Submit` carries a shard count for the sweep
///   ([`stp_sweep::SweepConfig::shards`]); `0` means "unsharded", exactly
///   what every earlier submission requests.  Sharding never changes
///   committed results, so a defaulted field is purely a scheduling
///   preference, not a behaviour drift.
///
/// This build always *encodes* version 3 but *decodes* any version from
/// [`MIN_PROTOCOL_VERSION`] up, defaulting the fields an older peer could
/// not have sent — so old clients can still submit and drive jobs.
pub const PROTOCOL_VERSION: u8 = 3;

/// Oldest payload version this build still decodes.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame payload, protecting the daemon from a garbage
/// length prefix.  64 MiB comfortably covers the binary AIGER of the
/// largest EPFL-class benchmark plus framing.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Sweep configuration preset a job runs under (see
/// [`crate::effective_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preset {
    /// Small pattern set and window limits: lowest latency.
    #[default]
    Fast,
    /// The paper's Table I/II configuration.
    Paper,
    /// Larger windows and pattern budget: best reduction.
    Thorough,
}

impl Preset {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            Preset::Fast => 0,
            Preset::Paper => 1,
            Preset::Thorough => 2,
        }
    }

    pub(crate) fn from_u8(value: u8) -> Option<Self> {
        match value {
            0 => Some(Preset::Fast),
            1 => Some(Preset::Paper),
            2 => Some(Preset::Thorough),
            _ => None,
        }
    }

    /// Parses the human spelling used by `sweepctl --preset`.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "fast" => Some(Preset::Fast),
            "paper" => Some(Preset::Paper),
            "thorough" => Some(Preset::Thorough),
            _ => None,
        }
    }
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Preset::Fast => write!(f, "fast"),
            Preset::Paper => write!(f, "paper"),
            Preset::Thorough => write!(f, "thorough"),
        }
    }
}

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a netlist for sweeping.  `aiger` is the raw bytes of an
    /// ASCII or binary AIGER file.
    Submit {
        /// Scheduling priority.
        priority: Priority,
        /// Sweeping engine to run.
        engine: Engine,
        /// Configuration preset to run under.
        preset: Preset,
        /// AIGER bytes of the netlist to sweep.
        aiger: Vec<u8>,
        /// Optional pass script in the [`stp_sweep::PassManager::parse`]
        /// grammar (e.g. `"strash;rewrite;sweep(stp)"`).  Empty runs the
        /// engine's plain sweep — the only behaviour protocol v1 could
        /// request, and what v1 submissions decode to.
        passes: String,
        /// Shard count for the sweep ([`stp_sweep::SweepConfig::shards`]);
        /// `0` runs unsharded — the only behaviour protocols v1/v2 could
        /// request, and what their submissions decode to.
        shards: u32,
    },
    /// Ask for the state of one job.
    Status {
        /// Job to query.
        id: JobId,
    },
    /// Cancel one job (at its next candidate boundary if running).
    Cancel {
        /// Job to cancel.
        id: JobId,
    },
    /// List every job the daemon knows about.
    List,
    /// Fetch the swept AIGER and counters of a `Done` job.
    Fetch {
        /// Job whose output to fetch.
        id: JobId,
    },
    /// Ask the daemon to stop accepting connections and exit cleanly
    /// (suspended jobs stay spilled and are re-adopted on restart).
    Shutdown,
}

/// A daemon-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to `Submit`.
    Submitted {
        /// Id of the (possibly pre-existing) job.
        id: JobId,
        /// `true` when the netlist matched an existing job by canonical
        /// fingerprint and the submission was adopted into it.
        adopted: bool,
    },
    /// Reply to `Status`.
    Job(Box<JobInfo>),
    /// Reply to `List`.
    Jobs(Vec<JobInfo>),
    /// Reply to `Fetch`.
    Output {
        /// The job the output belongs to.
        id: JobId,
        /// Swept netlist, as ASCII AIGER bytes.
        aiger: Vec<u8>,
        /// Committed counters of the sweep.
        counters: JobCounters,
    },
    /// Acknowledges `Cancel` and `Shutdown`.
    Done,
    /// Any failure, with a human-readable reason.
    Error(String),
}

/// Why a frame or payload could not be read or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The payload did not parse as a known message.
    Malformed(String),
    /// The peer announced a frame larger than [`MAX_FRAME_LEN`].
    Oversized(u32),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(err) => write!(f, "socket error: {err}"),
            ProtocolError::Malformed(what) => write!(f, "malformed message: {what}"),
            ProtocolError::Oversized(len) => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(err: io::Error) -> Self {
        ProtocolError::Io(err)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    let len = u32::try_from(payload.len()).map_err(|_| ProtocolError::Oversized(u32::MAX))?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized(len));
    }
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.  Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer hung up between messages).
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    match reader.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(err) => return Err(err.into()),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Append-only payload builder.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.push(PROTOCOL_VERSION);
        buf.push(tag);
        Enc { buf }
    }

    fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn bytes(&mut self, value: &[u8]) {
        self.buf
            .extend_from_slice(&(value.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(value);
    }

    fn str(&mut self, value: &str) {
        self.bytes(value.as_bytes());
    }
}

/// Cursor over a received payload.
struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    /// Version byte the peer sent; fields newer than it decode to their
    /// defaults instead of being read.
    version: u8,
}

type DecResult<T> = Result<T, ProtocolError>;

fn malformed(what: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed(what.into())
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> DecResult<(u8, Self)> {
        let mut dec = Dec {
            data,
            pos: 0,
            version: PROTOCOL_VERSION,
        };
        let version = dec.u8()?;
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return Err(malformed(format!(
                "protocol version {version} (this build speaks \
                 {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
            )));
        }
        dec.version = version;
        let tag = dec.u8()?;
        Ok((tag, dec))
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| malformed("truncated payload"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes(&mut self) -> DecResult<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> DecResult<String> {
        String::from_utf8(self.bytes()?).map_err(|_| malformed("non-UTF-8 string"))
    }

    fn finish(self) -> DecResult<()> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after message",
                self.data.len() - self.pos
            )))
        }
    }
}

const REQ_SUBMIT: u8 = 1;
const REQ_STATUS: u8 = 2;
const REQ_CANCEL: u8 = 3;
const REQ_LIST: u8 = 4;
const REQ_FETCH: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;

const RESP_SUBMITTED: u8 = 1;
const RESP_JOB: u8 = 2;
const RESP_JOBS: u8 = 3;
const RESP_OUTPUT: u8 = 4;
const RESP_DONE: u8 = 5;
const RESP_ERROR: u8 = 6;

fn encode_job_info(enc: &mut Enc, info: &JobInfo) {
    enc.u64(info.id);
    enc.u64(info.canonical_fingerprint);
    enc.u8(info.state.to_u8());
    enc.u8(info.priority.to_u8());
    enc.u8(engine_to_u8(info.engine));
    enc.u8(info.preset.to_u8());
    enc.u64(info.slices);
    enc.u64(info.sat_calls);
    enc.u64(info.committed_candidates);
    enc.str(&info.error);
}

fn decode_job_info(dec: &mut Dec<'_>) -> DecResult<JobInfo> {
    Ok(JobInfo {
        id: dec.u64()?,
        canonical_fingerprint: dec.u64()?,
        state: JobState::from_u8(dec.u8()?).ok_or_else(|| malformed("unknown job state"))?,
        priority: Priority::from_u8(dec.u8()?).ok_or_else(|| malformed("unknown priority"))?,
        engine: engine_from_u8(dec.u8()?).ok_or_else(|| malformed("unknown engine"))?,
        preset: Preset::from_u8(dec.u8()?).ok_or_else(|| malformed("unknown preset"))?,
        slices: dec.u64()?,
        sat_calls: dec.u64()?,
        committed_candidates: dec.u64()?,
        error: dec.str()?,
    })
}

fn encode_counters(enc: &mut Enc, counters: &JobCounters) {
    enc.u64(counters.gates_before);
    enc.u64(counters.gates_after);
    enc.u64(counters.merges);
    enc.u64(counters.constants);
    enc.u64(counters.sat_calls_total);
}

fn decode_counters(dec: &mut Dec<'_>) -> DecResult<JobCounters> {
    Ok(JobCounters {
        gates_before: dec.u64()?,
        gates_after: dec.u64()?,
        merges: dec.u64()?,
        constants: dec.u64()?,
        sat_calls_total: dec.u64()?,
    })
}

impl Request {
    /// Serialises the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Submit {
                priority,
                engine,
                preset,
                aiger,
                passes,
                shards,
            } => {
                let mut enc = Enc::new(REQ_SUBMIT);
                enc.u8(priority.to_u8());
                enc.u8(engine_to_u8(*engine));
                enc.u8(preset.to_u8());
                enc.bytes(aiger);
                enc.str(passes);
                enc.u32(*shards);
                enc.buf
            }
            Request::Status { id } => {
                let mut enc = Enc::new(REQ_STATUS);
                enc.u64(*id);
                enc.buf
            }
            Request::Cancel { id } => {
                let mut enc = Enc::new(REQ_CANCEL);
                enc.u64(*id);
                enc.buf
            }
            Request::List => Enc::new(REQ_LIST).buf,
            Request::Fetch { id } => {
                let mut enc = Enc::new(REQ_FETCH);
                enc.u64(*id);
                enc.buf
            }
            Request::Shutdown => Enc::new(REQ_SHUTDOWN).buf,
        }
    }

    /// Parses a frame payload as a request.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (tag, mut dec) = Dec::new(payload)?;
        let request = match tag {
            REQ_SUBMIT => Request::Submit {
                priority: Priority::from_u8(dec.u8()?)
                    .ok_or_else(|| malformed("unknown priority"))?,
                engine: engine_from_u8(dec.u8()?).ok_or_else(|| malformed("unknown engine"))?,
                preset: Preset::from_u8(dec.u8()?).ok_or_else(|| malformed("unknown preset"))?,
                aiger: dec.bytes()?,
                // A v1 peer cannot ask for a pass script: plain sweep.
                passes: if dec.version >= 2 {
                    dec.str()?
                } else {
                    String::new()
                },
                // A v1/v2 peer cannot ask for sharding: unsharded.
                shards: if dec.version >= 3 { dec.u32()? } else { 0 },
            },
            REQ_STATUS => Request::Status { id: dec.u64()? },
            REQ_CANCEL => Request::Cancel { id: dec.u64()? },
            REQ_LIST => Request::List,
            REQ_FETCH => Request::Fetch { id: dec.u64()? },
            REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(malformed(format!("unknown request tag {other}"))),
        };
        dec.finish()?;
        Ok(request)
    }

    /// Writes the request as one frame.
    pub fn write_to(&self, writer: &mut impl Write) -> Result<(), ProtocolError> {
        write_frame(writer, &self.encode())
    }

    /// Reads one request frame; `Ok(None)` on clean EOF.
    pub fn read_from(reader: &mut impl Read) -> Result<Option<Self>, ProtocolError> {
        match read_frame(reader)? {
            Some(payload) => Ok(Some(Request::decode(&payload)?)),
            None => Ok(None),
        }
    }
}

impl Response {
    /// Serialises the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Submitted { id, adopted } => {
                let mut enc = Enc::new(RESP_SUBMITTED);
                enc.u64(*id);
                enc.u8(u8::from(*adopted));
                enc.buf
            }
            Response::Job(info) => {
                let mut enc = Enc::new(RESP_JOB);
                encode_job_info(&mut enc, info);
                enc.buf
            }
            Response::Jobs(jobs) => {
                let mut enc = Enc::new(RESP_JOBS);
                enc.u64(jobs.len() as u64);
                for info in jobs {
                    encode_job_info(&mut enc, info);
                }
                enc.buf
            }
            Response::Output {
                id,
                aiger,
                counters,
            } => {
                let mut enc = Enc::new(RESP_OUTPUT);
                enc.u64(*id);
                enc.bytes(aiger);
                encode_counters(&mut enc, counters);
                enc.buf
            }
            Response::Done => Enc::new(RESP_DONE).buf,
            Response::Error(reason) => {
                let mut enc = Enc::new(RESP_ERROR);
                enc.str(reason);
                enc.buf
            }
        }
    }

    /// Parses a frame payload as a response.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (tag, mut dec) = Dec::new(payload)?;
        let response = match tag {
            RESP_SUBMITTED => Response::Submitted {
                id: dec.u64()?,
                adopted: match dec.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(malformed(format!("bad boolean {other}"))),
                },
            },
            RESP_JOB => Response::Job(Box::new(decode_job_info(&mut dec)?)),
            RESP_JOBS => {
                let count = dec.u64()?;
                // A JobInfo is at least 40 bytes on the wire, so `count`
                // has a natural upper bound from the frame length; still,
                // check it before reserving.
                if count > MAX_FRAME_LEN as u64 {
                    return Err(malformed("job list length out of range"));
                }
                let mut jobs = Vec::with_capacity(count.min(1024) as usize);
                for _ in 0..count {
                    jobs.push(decode_job_info(&mut dec)?);
                }
                Response::Jobs(jobs)
            }
            RESP_OUTPUT => Response::Output {
                id: dec.u64()?,
                aiger: dec.bytes()?,
                counters: decode_counters(&mut dec)?,
            },
            RESP_DONE => Response::Done,
            RESP_ERROR => Response::Error(dec.str()?),
            other => return Err(malformed(format!("unknown response tag {other}"))),
        };
        dec.finish()?;
        Ok(response)
    }

    /// Writes the response as one frame.
    pub fn write_to(&self, writer: &mut impl Write) -> Result<(), ProtocolError> {
        write_frame(writer, &self.encode())
    }

    /// Reads one response frame; `Ok(None)` on clean EOF.
    pub fn read_from(reader: &mut impl Read) -> Result<Option<Self>, ProtocolError> {
        match read_frame(reader)? {
            Some(payload) => Ok(Some(Response::decode(&payload)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_info(id: JobId) -> JobInfo {
        JobInfo {
            id,
            canonical_fingerprint: 0xDEAD_BEEF_0123_4567,
            state: JobState::Suspended,
            priority: Priority::High,
            engine: Engine::Stp,
            preset: Preset::Paper,
            slices: 17,
            sat_calls: 423,
            committed_candidates: 96,
            error: String::new(),
        }
    }

    #[test]
    fn every_request_round_trips() {
        let requests = [
            Request::Submit {
                priority: Priority::Low,
                engine: Engine::Baseline,
                preset: Preset::Thorough,
                aiger: b"aag 0 0 0 0 0\n".to_vec(),
                passes: String::new(),
                shards: 0,
            },
            Request::Submit {
                priority: Priority::High,
                engine: Engine::Stp,
                preset: Preset::Paper,
                aiger: b"aag 0 0 0 0 0\n".to_vec(),
                passes: "strash;rewrite;sweep(stp);verify".into(),
                shards: 4,
            },
            Request::Status { id: 7 },
            Request::Cancel { id: u64::MAX },
            Request::List,
            Request::Fetch { id: 0 },
            Request::Shutdown,
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).expect("round trip");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = [
            Response::Submitted {
                id: 3,
                adopted: true,
            },
            Response::Job(Box::new(sample_info(1))),
            Response::Jobs(vec![sample_info(1), {
                let mut failed = sample_info(2);
                failed.state = JobState::Failed;
                failed.error = "resume fingerprint mismatch".into();
                failed
            }]),
            Response::Output {
                id: 5,
                aiger: b"aag 1 1 0 1 0\n2\n2\n".to_vec(),
                counters: JobCounters {
                    gates_before: 120,
                    gates_after: 64,
                    merges: 40,
                    constants: 16,
                    sat_calls_total: 333,
                },
            },
            Response::Done,
            Response::Error("no such job".into()),
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).expect("round trip");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut stream = Vec::new();
        Request::List.write_to(&mut stream).expect("write");
        Request::Status { id: 9 }
            .write_to(&mut stream)
            .expect("write");
        let mut reader = stream.as_slice();
        assert_eq!(
            Request::read_from(&mut reader).expect("read"),
            Some(Request::List)
        );
        assert_eq!(
            Request::read_from(&mut reader).expect("read"),
            Some(Request::Status { id: 9 })
        );
        assert_eq!(Request::read_from(&mut reader).expect("eof"), None);
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let payload = Request::List.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("write");
        // Truncate mid-payload: read_exact of the payload must fail loudly,
        // not report a clean EOF.
        let cut = framed.len() - 1;
        let err = read_frame(&mut &framed[..cut]).expect_err("truncated");
        assert!(matches!(err, ProtocolError::Io(_)), "got {err}");

        let huge = (MAX_FRAME_LEN + 1).to_be_bytes();
        let err = read_frame(&mut huge.as_slice()).expect_err("oversized");
        assert!(matches!(err, ProtocolError::Oversized(_)), "got {err}");
    }

    #[test]
    fn v1_payloads_still_decode() {
        // Requests without version-2 fields decode identically under
        // either version byte.
        let mut old_list = Request::List.encode();
        old_list[0] = 1;
        assert_eq!(Request::decode(&old_list).expect("v1 list"), Request::List);

        // A hand-built v1 Submit (no trailing pass script) decodes to an
        // empty script — the plain sweep it was asking for all along.
        let aiger = b"aag 0 0 0 0 0\n";
        let mut v1_submit: Vec<u8> = vec![
            1, // version
            super::REQ_SUBMIT,
            Priority::Normal.to_u8(),
            engine_to_u8(Engine::Stp),
            Preset::Fast.to_u8(),
        ];
        v1_submit.extend_from_slice(&(aiger.len() as u32).to_be_bytes());
        v1_submit.extend_from_slice(aiger);
        assert_eq!(
            Request::decode(&v1_submit).expect("v1 submit"),
            Request::Submit {
                priority: Priority::Normal,
                engine: Engine::Stp,
                preset: Preset::Fast,
                aiger: aiger.to_vec(),
                passes: String::new(),
                shards: 0,
            }
        );
    }

    #[test]
    fn v2_submits_decode_to_unsharded_jobs() {
        // A hand-built v2 Submit: pass script present, no trailing shard
        // count.  It decodes to shards = 0 — the unsharded sweep a v2 peer
        // was asking for all along.
        let aiger = b"aag 0 0 0 0 0\n";
        let passes = b"strash;sweep(stp)";
        let mut v2_submit: Vec<u8> = vec![
            2, // version
            super::REQ_SUBMIT,
            Priority::High.to_u8(),
            engine_to_u8(Engine::Baseline),
            Preset::Paper.to_u8(),
        ];
        v2_submit.extend_from_slice(&(aiger.len() as u32).to_be_bytes());
        v2_submit.extend_from_slice(aiger);
        v2_submit.extend_from_slice(&(passes.len() as u32).to_be_bytes());
        v2_submit.extend_from_slice(passes);
        assert_eq!(
            Request::decode(&v2_submit).expect("v2 submit"),
            Request::Submit {
                priority: Priority::High,
                engine: Engine::Baseline,
                preset: Preset::Paper,
                aiger: aiger.to_vec(),
                passes: "strash;sweep(stp)".into(),
                shards: 0,
            }
        );
    }

    #[test]
    fn unknown_versions_tags_and_trailing_bytes_are_rejected() {
        let mut wrong_version = Request::List.encode();
        wrong_version[0] = PROTOCOL_VERSION + 1;
        let err = Request::decode(&wrong_version).expect_err("version");
        assert!(err.to_string().contains("protocol version"), "got {err}");

        wrong_version[0] = MIN_PROTOCOL_VERSION - 1;
        let err = Request::decode(&wrong_version).expect_err("version zero");
        assert!(err.to_string().contains("protocol version"), "got {err}");

        let unknown_tag = [PROTOCOL_VERSION, 250];
        assert!(Request::decode(&unknown_tag).is_err());
        assert!(Response::decode(&unknown_tag).is_err());

        let mut trailing = Request::Status { id: 1 }.encode();
        trailing.push(0);
        let err = Request::decode(&trailing).expect_err("trailing");
        assert!(err.to_string().contains("trailing"), "got {err}");

        // A Submit whose inner byte-string length points past the payload.
        let mut lying = Request::Submit {
            priority: Priority::Normal,
            engine: Engine::Stp,
            preset: Preset::Fast,
            aiger: vec![0; 8],
            passes: String::new(),
            shards: 0,
        }
        .encode();
        // ... the AIGER length prefix sits before the 8 AIGER bytes, the
        // (empty) pass-script string's own 4-byte length, and the 4-byte
        // shard count.
        let len_at = lying.len() - 4 - 4 - 8 - 4;
        lying[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(Request::decode(&lying).is_err());
    }
}
