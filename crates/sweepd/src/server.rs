//! The socket front end: accepts connections on a Unix socket (the
//! default) or a TCP address and speaks the [`crate::protocol`] with each
//! client on its own thread.
//!
//! The server is a thin shell: every request maps onto one
//! [`SweepService`] method, and all scheduling lives in the service.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::protocol::{Request, Response};
use crate::scheduler::SweepService;

/// Where the daemon listens (and where a [`crate::SweepClient`] connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7171`.
    Tcp(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One accepted connection, Unix or TCP.
pub(crate) enum Stream {
    /// Over a Unix-domain socket.
    Unix(UnixStream),
    /// Over TCP.
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(stream) => stream.read(buf),
            Stream::Tcp(stream) => stream.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(stream) => stream.write(buf),
            Stream::Tcp(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(stream) => stream.flush(),
            Stream::Tcp(stream) => stream.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(listener) => listener.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// Maps one request onto the service.  The `Shutdown` acknowledgement is
/// produced here; actually stopping is the caller's job.
fn dispatch(service: &SweepService, request: &Request) -> Response {
    match request {
        Request::Submit {
            priority,
            engine,
            preset,
            aiger,
            passes,
            shards,
        } => match service.submit_with_options(*priority, *engine, *preset, passes, *shards, aiger)
        {
            Ok((id, adopted)) => Response::Submitted { id, adopted },
            Err(reason) => Response::Error(reason),
        },
        Request::Status { id } => match service.status(*id) {
            Some(info) => Response::Job(Box::new(info)),
            None => Response::Error(format!("no such job {id}")),
        },
        Request::Cancel { id } => match service.cancel(*id) {
            Ok(()) => Response::Done,
            Err(reason) => Response::Error(reason),
        },
        Request::List => Response::Jobs(service.list()),
        Request::Fetch { id } => match service.fetch(*id) {
            Ok((aiger, counters)) => Response::Output {
                id: *id,
                aiger,
                counters,
            },
            Err(reason) => Response::Error(reason),
        },
        Request::Shutdown => Response::Done,
    }
}

/// Serves one connection until the peer hangs up (or asks for shutdown).
fn handle_connection(service: &SweepService, mut stream: Stream, stop: &AtomicBool) {
    loop {
        let request = match Request::read_from(&mut stream) {
            Ok(Some(request)) => request,
            // Clean EOF, a hung-up peer, or garbage: this connection is
            // done either way; the daemon itself is unaffected.
            Ok(None) | Err(_) => return,
        };
        let response = dispatch(service, &request);
        if response.write_to(&mut stream).is_err() {
            return;
        }
        if matches!(request, Request::Shutdown) {
            stop.store(true, Ordering::Relaxed);
            return;
        }
    }
}

/// Binds `endpoint` and serves until a client sends `Shutdown` (or the
/// service itself was shut down).  Returns once every connection thread
/// has drained.  The caller still owns stopping the service afterwards.
pub fn serve(service: Arc<SweepService>, endpoint: &Endpoint) -> io::Result<()> {
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // A stale socket file from a crashed daemon would fail the
            // bind; this daemon is the path's owner, so reclaim it.
            let _ = fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Listener::Unix(listener)
        }
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            Listener::Tcp(listener)
        }
    };

    let stop = Arc::new(AtomicBool::new(false));
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) && !service.is_shut_down() {
        match listener.accept() {
            Ok(stream) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                let handle =
                    thread::Builder::new()
                        .name("sweepd-conn".into())
                        .spawn(move || {
                            // Frame reads on the accepted stream should block.
                            match &stream {
                                Stream::Unix(s) => {
                                    let _ = s.set_nonblocking(false);
                                }
                                Stream::Tcp(s) => {
                                    let _ = s.set_nonblocking(false);
                                }
                            }
                            handle_connection(&service, stream, &stop);
                        })?;
                connections.retain(|conn| !conn.is_finished());
                connections.push(handle);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(err) => return Err(err),
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
    if let Endpoint::Unix(path) = endpoint {
        let _ = fs::remove_file(path);
    }
    Ok(())
}
