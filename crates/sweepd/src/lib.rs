//! # sweepd — a multiplexing sweep service
//!
//! The long-running process that serves the workspace's SAT-sweeping
//! engine: clients submit jobs (an AIGER netlist plus a priority, a
//! configuration preset and optionally a pass script in the
//! [`stp_sweep::PassManager::parse`] grammar) and receive the swept AIGER
//! and its committed counters back.  Inside, a fair scheduler time-slices N concurrent
//! sweeps over a worker pool by running each job for a bounded quantum and
//! suspending it to an in-memory [`stp_sweep::SweepCheckpoint`] at a
//! candidate boundary — the engine's byte-exact checkpoint/resume
//! guarantee means a job sliced a thousand times produces output identical
//! to an uninterrupted run.
//!
//! * [`protocol`] — the length-prefixed wire format shared by daemon and
//!   client.
//! * [`job`] — job identities, states and progress counters.
//! * [`spill`] — durable checkpoint spilling and crash recovery.
//! * [`scheduler`] — the in-process service: fair time-slicing,
//!   priorities, preemption, cancellation.
//! * [`server`] — the socket front end (Unix socket or TCP).
//! * [`client`] — a blocking client used by `sweepctl` and the tests.
//!
//! Jobs are keyed by the *canonical* netlist fingerprint
//! ([`netlist::canonical_fingerprint`]), so a resubmitted job whose parser
//! renumbered the same circuit is adopted into the existing job — and
//! after a crash, spilled jobs are re-adopted from disk and resumed
//! byte-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod spill;

pub use client::{ClientError, SweepClient};
pub use job::{JobCounters, JobId, JobInfo, JobState, Priority};
pub use protocol::{Preset, Request, Response};
pub use scheduler::{ServiceConfig, SweepService};
pub use server::{serve, Endpoint};

/// The sweep configuration a preset resolves to, shared by the daemon and
/// by reference runs in tests: the determinism gate compares a sliced
/// daemon job against an uninterrupted in-process run *under the same
/// config*.  Checkpoint cadence is deliberately not part of this —
/// checkpoints never change the sweep, so the daemon layers its own
/// cadence on top without perturbing results.
pub fn effective_config(preset: Preset) -> stp_sweep::SweepConfig {
    match preset {
        Preset::Fast => stp_sweep::SweepConfig::fast(),
        Preset::Paper => stp_sweep::SweepConfig::paper(),
        Preset::Thorough => stp_sweep::SweepConfig::thorough(),
    }
}
