//! The in-process sweep service: a worker pool fair-slicing N concurrent
//! sweeps over checkpoints.
//!
//! ## Scheduling model
//!
//! Each job runs in *slices*: a worker claims the runnable job with the
//! highest priority (ties broken by fewest slices consumed, then lowest
//! id), runs it under a wall-clock deadline [`Budget`], and — when the
//! deadline trips at a candidate boundary — suspends it back to an
//! in-memory [`SweepCheckpoint`].  Because the engine's checkpoint/resume
//! is byte-exact, slicing is invisible in the output: a job sliced any
//! number of times produces the same swept AIGER and the same committed
//! counters as one uninterrupted run.
//!
//! A slice that makes no progress (resume overhead can exceed a tiny
//! quantum) doubles that job's private quantum for its next slice, so
//! pathological quanta degrade to longer slices instead of livelock; any
//! progress resets the boost.
//!
//! Submitting a job with a higher priority than a currently running one
//! preempts the victim when all workers are busy: its cancel token trips,
//! it suspends at the next candidate boundary, and the worker picks up the
//! newcomer.
//!
//! ## Scripted jobs
//!
//! A submission may carry a pass script (the
//! [`stp_sweep::PassManager::parse`] grammar) instead of a plain sweep —
//! see [`SweepService::submit_with_passes`].  Scripted jobs run their
//! whole pipeline inside one slice and are *not* mid-script resumable:
//! when the quantum trips partway through, the job is re-queued with a
//! doubled quantum (the same no-progress escalation as above) until one
//! slice fits the entire script, and no checkpoint is ever kept or
//! spilled for it.  Crash recovery re-runs a scripted job from scratch.
//!
//! ## Durability
//!
//! With a spill directory configured, submissions and suspension
//! checkpoints are written through to disk (plus periodic within-slice
//! checkpoints on the wall-clock cadence of
//! [`SweepConfig::checkpoint_every_secs`]).  On restart the daemon
//! re-adopts every spilled job by canonical netlist fingerprint and
//! resumes it byte-exactly — see [`crate::spill`].

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::effective_config;
use crate::job::{JobCounters, JobId, JobInfo, JobState, Priority};
use crate::protocol::Preset;
use crate::spill::{SpillDir, SpilledJob};
use netlist::{canonical_fingerprint, read_aiger_bytes, write_aiger_string, Aig};
use stp_sweep::{
    Budget, CancelToken, Engine, Observer, Pipeline, SweepCheckpoint, SweepError, Sweeper,
};

#[cfg(doc)]
use stp_sweep::SweepConfig;

/// Caps the zero-progress quantum doubling: `quantum << 12` of 1 ms is
/// already ~4 s, enough to resume and commit on any realistic netlist.
const MAX_BOOST: u32 = 12;

/// How the service is run.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads slicing jobs concurrently.
    pub workers: usize,
    /// Wall-clock time slice per job per turn.
    pub quantum: Duration,
    /// Directory for durable spilling; `None` keeps all state in memory
    /// (no crash recovery).
    pub spill_dir: Option<PathBuf>,
    /// Within-slice wall-clock checkpoint cadence in seconds (`0.0`
    /// disables).  Only meaningful with a spill directory: long slices
    /// then leave a resumable checkpoint on disk every so often even
    /// before their first suspension.
    pub checkpoint_every_secs: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            quantum: Duration::from_millis(50),
            spill_dir: None,
            checkpoint_every_secs: 0.0,
        }
    }
}

/// One job's full server-side record.
struct Job {
    id: JobId,
    fp: u64,
    priority: Priority,
    engine: Engine,
    preset: Preset,
    /// Pass script of a scripted job, empty for a plain sweep.  Scripted
    /// jobs run whole pipelines per slice and are never mid-script
    /// resumable, so they keep no checkpoint.
    passes: String,
    /// Shard count of the sweep; 0 runs unsharded.  Sharding never changes
    /// committed results, so it is a scheduling preference the dedup check
    /// still treats as a setting.
    shards: u32,
    aig: Arc<Aig>,
    state: JobState,
    /// Latest suspension checkpoint, encoded.
    checkpoint: Option<Vec<u8>>,
    /// Swept AIGER text and counters, once `Done`.
    output: Option<(String, JobCounters)>,
    error: String,
    slices: u64,
    sat_calls: u64,
    committed: u64,
    /// Zero-progress quantum doublings (see module docs).
    boost: u32,
    cancel_requested: bool,
    /// Token of the in-flight slice, for cancellation and preemption.
    running_token: Option<CancelToken>,
}

impl Job {
    fn info(&self) -> JobInfo {
        JobInfo {
            id: self.id,
            canonical_fingerprint: self.fp,
            state: self.state,
            priority: self.priority,
            engine: self.engine,
            preset: self.preset,
            slices: self.slices,
            sat_calls: self.sat_calls,
            committed_candidates: self.committed,
            error: self.error.clone(),
        }
    }
}

#[derive(Default)]
struct State {
    jobs: BTreeMap<JobId, Job>,
    by_fp: HashMap<u64, JobId>,
    next_id: JobId,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled when a job becomes runnable.
    work: Condvar,
    /// Signalled when a job reaches a terminal state.
    done: Condvar,
    quantum: Duration,
    checkpoint_every_secs: f64,
    workers: usize,
    spill: Option<SpillDir>,
    shutdown: AtomicBool,
    /// Test hook: when set, workers discard every write-back and stop
    /// touching the spill directory, simulating a hard crash whose
    /// in-memory state is lost (see [`SweepService::simulate_crash`]).
    crashed: AtomicBool,
}

/// Everything a worker needs to run one slice outside the state lock.
struct Claim {
    id: JobId,
    fp: u64,
    aig: Arc<Aig>,
    engine: Engine,
    preset: Preset,
    passes: String,
    shards: u32,
    checkpoint: Option<Vec<u8>>,
    token: CancelToken,
    quantum: Duration,
    cancel_requested: bool,
}

/// Spills within-slice wall-clock checkpoints straight to disk.
struct SpillSink<'a> {
    spill: Option<&'a SpillDir>,
    fp: u64,
    crashed: &'a AtomicBool,
}

impl Observer for SpillSink<'_> {
    fn on_checkpoint(&mut self, _checkpoint: &SweepCheckpoint, encoded: &[u8]) {
        if let Some(spill) = self.spill {
            if !self.crashed.load(Ordering::Relaxed) {
                // Best effort: a full disk must not fail the sweep itself.
                let _ = spill.write_checkpoint(self.fp, encoded);
            }
        }
    }
}

/// The multiplexing sweep service.  See the module docs for the model.
pub struct SweepService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SweepService {
    /// Starts the service: re-adopts any jobs spilled by a previous
    /// instance, then spawns the worker pool (which immediately resumes
    /// the re-adopted jobs).
    pub fn start(config: ServiceConfig) -> io::Result<SweepService> {
        let workers = config.workers.max(1);
        let quantum = config.quantum.max(Duration::from_millis(1));
        let spill = match &config.spill_dir {
            Some(dir) => Some(SpillDir::open(dir)?),
            None => None,
        };

        let mut state = State {
            next_id: 1,
            ..State::default()
        };
        if let Some(spill) = &spill {
            for recovered in spill.scan()? {
                let Ok(aig) = read_aiger_bytes(&recovered.job.aiger) else {
                    continue;
                };
                let fp = canonical_fingerprint(&aig);
                let id = state.next_id;
                state.next_id += 1;
                // Only an intact, decodable checkpoint counts; anything
                // else re-runs the job from scratch.  Scripted jobs are
                // never mid-script resumable, so any stray checkpoint of
                // theirs is ignored outright.
                let decoded = if recovered.job.passes.is_empty() {
                    recovered.checkpoint.and_then(|bytes| {
                        SweepCheckpoint::decode(&bytes)
                            .ok()
                            .map(|ckpt| (bytes, ckpt.sat_calls(), ckpt.committed_candidates()))
                    })
                } else {
                    None
                };
                let (checkpoint, sat_calls, committed) = match decoded {
                    Some((bytes, sat_calls, committed)) => (Some(bytes), sat_calls, committed),
                    None => (None, 0, 0),
                };
                let has_checkpoint = checkpoint.is_some();
                state.by_fp.insert(fp, id);
                state.jobs.insert(
                    id,
                    Job {
                        id,
                        fp,
                        priority: recovered.job.priority,
                        engine: recovered.job.engine,
                        preset: recovered.job.preset,
                        passes: recovered.job.passes,
                        shards: recovered.job.shards,
                        aig: Arc::new(aig),
                        state: if has_checkpoint {
                            JobState::Suspended
                        } else {
                            JobState::Queued
                        },
                        checkpoint,
                        output: None,
                        error: String::new(),
                        slices: 0,
                        sat_calls,
                        committed,
                        boost: 0,
                        cancel_requested: false,
                        running_token: None,
                    },
                );
            }
        }

        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work: Condvar::new(),
            done: Condvar::new(),
            quantum,
            checkpoint_every_secs: config.checkpoint_every_secs,
            workers,
            spill,
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sweepd-worker-{index}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(SweepService {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Submits a netlist for a plain sweep.  Returns the job id plus
    /// `adopted = true` when the canonical fingerprint matched an existing
    /// job (renumbered resubmissions land here); a cancelled or failed job
    /// is restarted by a matching resubmission.
    pub fn submit(
        &self,
        priority: Priority,
        engine: Engine,
        preset: Preset,
        aiger: &[u8],
    ) -> Result<(JobId, bool), String> {
        self.submit_with_options(priority, engine, preset, "", 0, aiger)
    }

    /// Submits a netlist with an optional pass script (the
    /// [`stp_sweep::PassManager::parse`] grammar; empty runs the engine's
    /// plain sweep).  The script is validated up-front, so a typo fails
    /// the submission instead of the job.  Scripted jobs run their whole
    /// pipeline per slice and carry no mid-script checkpoint: a slice
    /// whose quantum trips before the pipeline finishes is re-queued with
    /// a doubled quantum until one slice fits the entire script.
    pub fn submit_with_passes(
        &self,
        priority: Priority,
        engine: Engine,
        preset: Preset,
        passes: &str,
        aiger: &[u8],
    ) -> Result<(JobId, bool), String> {
        self.submit_with_options(priority, engine, preset, passes, 0, aiger)
    }

    /// Like [`SweepService::submit_with_passes`], plus a shard count for
    /// the sweep ([`stp_sweep::SweepConfig::shards`]; `0` runs unsharded).
    /// Sharding never changes committed results — the daemon battery pins
    /// sharded jobs byte-identical to unsharded ones — so the knob only
    /// trades peak memory against candidate-ordering locality.
    pub fn submit_with_options(
        &self,
        priority: Priority,
        engine: Engine,
        preset: Preset,
        passes: &str,
        shards: u32,
        aiger: &[u8],
    ) -> Result<(JobId, bool), String> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err("the service is shutting down".into());
        }
        if !passes.is_empty() {
            stp_sweep::passes::parse_script(passes)
                .map_err(|err| format!("invalid pass script: {err}"))?;
        }
        let aig = read_aiger_bytes(aiger).map_err(|err| format!("invalid AIGER: {err}"))?;
        let fp = canonical_fingerprint(&aig);
        let mut state = self.lock();
        if let Some(&id) = state.by_fp.get(&fp) {
            let job = state.jobs.get_mut(&id).expect("by_fp is consistent");
            if job.engine != engine
                || job.preset != preset
                || job.passes != passes
                || job.shards != shards
            {
                return Err(format!(
                    "job {id} already sweeps this netlist under {}/{}{}{}; \
                     cancel it first to change settings",
                    job.engine,
                    job.preset,
                    if job.passes.is_empty() {
                        String::new()
                    } else {
                        format!(" with passes \"{}\"", job.passes)
                    },
                    if job.shards == 0 {
                        String::new()
                    } else {
                        format!(" with {} shards", job.shards)
                    }
                ));
            }
            if matches!(job.state, JobState::Cancelled | JobState::Failed) {
                job.state = JobState::Queued;
                job.checkpoint = None;
                job.output = None;
                job.error.clear();
                job.slices = 0;
                job.sat_calls = 0;
                job.committed = 0;
                job.boost = 0;
                job.cancel_requested = false;
                self.spill_job(job);
                self.inner.work.notify_all();
            }
            return Ok((id, true));
        }

        let id = state.next_id;
        state.next_id += 1;
        let job = Job {
            id,
            fp,
            priority,
            engine,
            preset,
            passes: passes.to_string(),
            shards,
            aig: Arc::new(aig),
            state: JobState::Queued,
            checkpoint: None,
            output: None,
            error: String::new(),
            slices: 0,
            sat_calls: 0,
            committed: 0,
            boost: 0,
            cancel_requested: false,
            running_token: None,
        };
        self.spill_job(&job);
        state.by_fp.insert(fp, id);
        state.jobs.insert(id, job);
        self.preempt_for(&mut state, priority);
        self.inner.work.notify_all();
        Ok((id, false))
    }

    /// Trips the cancel token of one running lower-priority job when every
    /// worker is busy, freeing a worker for the newcomer at the victim's
    /// next candidate boundary.
    fn preempt_for(&self, state: &mut State, newcomer: Priority) {
        let running = state
            .jobs
            .values()
            .filter(|job| job.state == JobState::Running)
            .count();
        if running < self.inner.workers {
            return;
        }
        let victim = state
            .jobs
            .values()
            .filter(|job| job.state == JobState::Running && job.priority < newcomer)
            .min_by_key(|job| (job.priority, std::cmp::Reverse(job.id)));
        if let Some(victim) = victim {
            if let Some(token) = &victim.running_token {
                token.cancel();
            }
        }
    }

    fn spill_job(&self, job: &Job) {
        if let Some(spill) = &self.inner.spill {
            if !self.inner.crashed.load(Ordering::Relaxed) {
                let _ = spill.write_job(
                    job.fp,
                    &SpilledJob {
                        priority: job.priority,
                        engine: job.engine,
                        preset: job.preset,
                        aiger: write_aiger_string(&job.aig).into_bytes(),
                        passes: job.passes.clone(),
                        shards: job.shards,
                    },
                );
            }
        }
    }

    /// The state of one job.
    pub fn status(&self, id: JobId) -> Option<JobInfo> {
        self.lock().jobs.get(&id).map(Job::info)
    }

    /// Every job, in submission order.
    pub fn list(&self) -> Vec<JobInfo> {
        self.lock().jobs.values().map(Job::info).collect()
    }

    /// Cancels a job.  A running job stops at its next candidate
    /// boundary; cancelling a terminal job is a no-op.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        let mut state = self.lock();
        let job = state
            .jobs
            .get_mut(&id)
            .ok_or_else(|| format!("no such job {id}"))?;
        match job.state {
            JobState::Done | JobState::Failed | JobState::Cancelled => {}
            JobState::Running => {
                job.cancel_requested = true;
                if let Some(token) = &job.running_token {
                    token.cancel();
                }
            }
            JobState::Queued | JobState::Suspended => {
                job.state = JobState::Cancelled;
                job.checkpoint = None;
                self.remove_spill(job.fp);
                self.inner.done.notify_all();
            }
        }
        Ok(())
    }

    /// The swept AIGER bytes and counters of a `Done` job.
    pub fn fetch(&self, id: JobId) -> Result<(Vec<u8>, JobCounters), String> {
        let state = self.lock();
        let job = state
            .jobs
            .get(&id)
            .ok_or_else(|| format!("no such job {id}"))?;
        match (&job.output, job.state) {
            (Some((aiger, counters)), JobState::Done) => {
                Ok((aiger.clone().into_bytes(), *counters))
            }
            (_, JobState::Failed) => Err(format!("job {id} failed: {}", job.error)),
            (_, state) => Err(format!("job {id} is {state}, not done")),
        }
    }

    /// Blocks until `id` reaches a terminal state (or `timeout` passes —
    /// an error, with the job's last observed state in the message).
    pub fn wait(&self, id: JobId, timeout: Duration) -> Result<JobInfo, String> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            let info = state
                .jobs
                .get(&id)
                .map(Job::info)
                .ok_or_else(|| format!("no such job {id}"))?;
            if info.state.is_terminal() {
                return Ok(info);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(format!("timed out waiting for job {id} ({})", info.state));
            }
            let (guard, _) = self
                .inner
                .done
                .wait_timeout(state, deadline - now)
                .expect("service state poisoned");
            state = guard;
        }
    }

    /// Stops cleanly: running slices suspend at their next candidate
    /// boundary and spill, then the workers exit.  Suspended jobs are
    /// re-adopted by the next [`SweepService::start`] on the same spill
    /// directory.
    pub fn shutdown(&self) {
        self.stop(false);
    }

    /// Test hook simulating a hard crash: workers are stopped and every
    /// pending write-back is *discarded* — whatever the spill directory
    /// holds at this instant is all a restarted service gets, exactly as
    /// after a power loss.
    pub fn simulate_crash(&self) {
        self.stop(true);
    }

    fn stop(&self, crash: bool) {
        if crash {
            self.inner.crashed.store(true, Ordering::Relaxed);
        }
        self.inner.shutdown.store(true, Ordering::Relaxed);
        {
            let state = self.lock();
            for job in state.jobs.values() {
                if let Some(token) = &job.running_token {
                    token.cancel();
                }
            }
            self.inner.work.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Whether [`SweepService::shutdown`] (or a simulated crash) happened.
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Relaxed)
    }

    fn remove_spill(&self, fp: u64) {
        if let Some(spill) = &self.inner.spill {
            if !self.inner.crashed.load(Ordering::Relaxed) {
                let _ = spill.remove(fp);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().expect("service state poisoned")
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        if let Ok(state) = self.inner.state.lock() {
            for job in state.jobs.values() {
                if let Some(token) = &job.running_token {
                    token.cancel();
                }
            }
            self.inner.work.notify_all();
        }
        if let Ok(mut handles) = self.workers.lock() {
            for handle in std::mem::take(&mut *handles) {
                let _ = handle.join();
            }
        }
    }
}

/// Picks the runnable job a freed worker should take: highest priority,
/// then fewest slices consumed (fairness), then lowest id (determinism).
fn pick_runnable(state: &State) -> Option<JobId> {
    state
        .jobs
        .values()
        .filter(|job| matches!(job.state, JobState::Queued | JobState::Suspended))
        .min_by_key(|job| (std::cmp::Reverse(job.priority), job.slices, job.id))
        .map(|job| job.id)
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let claim = {
            let mut state = inner.state.lock().expect("service state poisoned");
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(id) = pick_runnable(&state) {
                    let job = state.jobs.get_mut(&id).expect("picked job exists");
                    job.state = JobState::Running;
                    let token = CancelToken::new();
                    job.running_token = Some(token.clone());
                    if job.cancel_requested {
                        // A cancel raced the claim: make the slice a no-op.
                        token.cancel();
                    }
                    break Claim {
                        id,
                        fp: job.fp,
                        aig: Arc::clone(&job.aig),
                        engine: job.engine,
                        preset: job.preset,
                        passes: job.passes.clone(),
                        shards: job.shards,
                        checkpoint: job.checkpoint.clone(),
                        token,
                        quantum: inner
                            .quantum
                            .saturating_mul(1u32 << job.boost.min(MAX_BOOST)),
                        cancel_requested: job.cancel_requested,
                    };
                }
                let (guard, _) = inner
                    .work
                    .wait_timeout(state, Duration::from_millis(20))
                    .expect("service state poisoned");
                state = guard;
            }
        };
        run_slice(inner, claim);
    }
}

/// Runs one time slice of one job and writes the outcome back.
fn run_slice(inner: &Arc<Inner>, claim: Claim) {
    let budget = Budget::unlimited()
        .with_deadline(claim.quantum)
        .with_cancel_token(claim.token.clone());
    let scripted = !claim.passes.is_empty();
    let mut config = effective_config(claim.preset).shards(claim.shards as usize);
    if !scripted && inner.spill.is_some() && inner.checkpoint_every_secs > 0.0 {
        config = config.checkpoint_every_secs(inner.checkpoint_every_secs);
    }
    let mut sink = SpillSink {
        spill: inner.spill.as_ref(),
        fp: claim.fp,
        crashed: &inner.crashed,
    };

    // A checkpoint that no longer decodes (e.g. spilled by an older build)
    // degrades to a fresh start — correct, just slower.  Scripted jobs
    // shed any stray checkpoint outright: a sweep checkpoint cannot
    // restart a pipeline at the right pass.
    let (decoded, drop_checkpoint) = if scripted {
        (None, claim.checkpoint.is_some())
    } else {
        match &claim.checkpoint {
            Some(bytes) => match SweepCheckpoint::decode(bytes) {
                Ok(checkpoint) => (Some(checkpoint), false),
                Err(_) => (None, true),
            },
            None => (None, false),
        }
    };
    let result = if scripted {
        // The script was validated at submission; a parse failure here
        // means the spill directory handed us something newer than this
        // build understands, which fails the job instead of looping.
        match Pipeline::new(config).with_script(&claim.passes) {
            Ok(pipeline) => pipeline
                .budget(budget)
                .run(&claim.aig)
                .map(|finished| finished.into_sweep_result())
                .map_err(|err| match err {
                    // Mid-script budget trips requeue the whole script:
                    // drop the inner sweep's checkpoint so the write-back
                    // takes the no-checkpoint (boost + requeue) path.
                    SweepError::BudgetExhausted { cause, partial, .. } => {
                        SweepError::BudgetExhausted {
                            cause,
                            partial,
                            checkpoint: None,
                        }
                    }
                    other => other,
                }),
            Err(err) => Err(SweepError::Inconsistent(format!(
                "pass script no longer parses: {err}"
            ))),
        }
    } else {
        let sweeper = Sweeper::new(claim.engine)
            .config(config)
            .budget(budget)
            .observer(&mut sink);
        match &decoded {
            Some(checkpoint) => sweeper
                .resume_from(&claim.aig, checkpoint)
                .and_then(|session| session.run()),
            None => sweeper.begin(&claim.aig).and_then(|session| session.run()),
        }
    };

    // Write-back under the lock; a simulated crash discards everything.
    let mut state = inner.state.lock().expect("service state poisoned");
    if inner.crashed.load(Ordering::Relaxed) {
        return;
    }
    let Some(job) = state.jobs.get_mut(&claim.id) else {
        return;
    };
    job.running_token = None;
    job.slices += 1;
    if drop_checkpoint {
        job.checkpoint = None;
    }
    match result {
        Ok(result) => {
            job.state = JobState::Done;
            job.sat_calls = result.report.sat_calls_total;
            job.committed = (result.report.merges + result.report.constants) as u64;
            job.output = Some((
                write_aiger_string(&result.aig),
                JobCounters::from_report(&result.report),
            ));
            job.checkpoint = None;
            if let Some(spill) = &inner.spill {
                let _ = spill.remove(job.fp);
            }
            inner.done.notify_all();
        }
        Err(SweepError::BudgetExhausted { checkpoint, .. }) => {
            if job.cancel_requested || claim.cancel_requested {
                job.state = JobState::Cancelled;
                job.checkpoint = None;
                if let Some(spill) = &inner.spill {
                    let _ = spill.remove(job.fp);
                }
                inner.done.notify_all();
            } else {
                match checkpoint {
                    Some(checkpoint) => {
                        let progressed = checkpoint.committed_candidates() > job.committed
                            || checkpoint.sat_calls() > job.sat_calls;
                        job.boost = if progressed {
                            0
                        } else {
                            (job.boost + 1).min(MAX_BOOST)
                        };
                        job.sat_calls = checkpoint.sat_calls();
                        job.committed = checkpoint.committed_candidates();
                        let encoded = checkpoint.encode();
                        if let Some(spill) = &inner.spill {
                            let _ = spill.write_checkpoint(job.fp, &encoded);
                        }
                        job.checkpoint = Some(encoded);
                        job.state = JobState::Suspended;
                    }
                    None => {
                        // The deadline tripped before the session was even
                        // primed: keep the previous checkpoint (if any) and
                        // try again with a doubled quantum.
                        job.boost = (job.boost + 1).min(MAX_BOOST);
                        job.state = if job.checkpoint.is_some() {
                            JobState::Suspended
                        } else {
                            JobState::Queued
                        };
                    }
                }
                inner.work.notify_all();
            }
        }
        Err(err) => {
            job.state = JobState::Failed;
            job.error = err.to_string();
            job.checkpoint = None;
            if let Some(spill) = &inner.spill {
                let _ = spill.remove(job.fp);
            }
            inner.done.notify_all();
        }
    }
}
