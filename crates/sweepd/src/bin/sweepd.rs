//! The sweep-service daemon.
//!
//! ```text
//! sweepd [--socket PATH | --tcp ADDR] [--workers N] [--quantum-ms N]
//!        [--spill-dir DIR] [--checkpoint-secs F]
//! ```
//!
//! Listens on a Unix socket (default `/tmp/sweepd.sock`) or a TCP address
//! and serves sweep jobs until a client sends `shutdown`.  With a spill
//! directory, suspended jobs survive restarts: start the daemon again on
//! the same directory and they resume byte-exactly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sweepd::server::Endpoint;
use sweepd::{serve, ServiceConfig, SweepService};

const USAGE: &str = "usage: sweepd [--socket PATH | --tcp ADDR] [--workers N] \
                     [--quantum-ms N] [--spill-dir DIR] [--checkpoint-secs F]";

struct Args {
    endpoint: Endpoint,
    config: ServiceConfig,
}

fn parse_args(mut args: std::env::Args) -> Result<Args, String> {
    let _ = args.next();
    let mut endpoint = Endpoint::Unix(PathBuf::from("/tmp/sweepd.sock"));
    let mut config = ServiceConfig::default();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--socket" => endpoint = Endpoint::Unix(PathBuf::from(value("--socket")?)),
            "--tcp" => endpoint = Endpoint::Tcp(value("--tcp")?),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_string())?
            }
            "--quantum-ms" => {
                let millis: u64 = value("--quantum-ms")?
                    .parse()
                    .map_err(|_| "--quantum-ms needs a positive integer".to_string())?;
                config.quantum = Duration::from_millis(millis.max(1));
            }
            "--spill-dir" => config.spill_dir = Some(PathBuf::from(value("--spill-dir")?)),
            "--checkpoint-secs" => {
                config.checkpoint_every_secs = value("--checkpoint-secs")?
                    .parse()
                    .map_err(|_| "--checkpoint-secs needs a number".to_string())?
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if config.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    if !(config.checkpoint_every_secs >= 0.0 && config.checkpoint_every_secs.is_finite()) {
        return Err("--checkpoint-secs must be a finite non-negative number".to_string());
    }
    Ok(Args { endpoint, config })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let spill_note = match &args.config.spill_dir {
        Some(dir) => format!(", spilling to {}", dir.display()),
        None => ", in-memory only".to_string(),
    };
    let service = match SweepService::start(args.config.clone()) {
        Ok(service) => Arc::new(service),
        Err(err) => {
            eprintln!("sweepd: failed to start: {err}");
            return ExitCode::FAILURE;
        }
    };
    let adopted = service.list().len();
    println!(
        "sweepd: listening on {} ({} workers, {} ms quantum{spill_note})",
        args.endpoint,
        args.config.workers,
        args.config.quantum.as_millis()
    );
    if adopted > 0 {
        println!("sweepd: re-adopted {adopted} spilled job(s)");
    }
    let served = serve(Arc::clone(&service), &args.endpoint);
    // Suspend whatever is still running (spilling it if configured) before
    // reporting how the listener ended.
    service.shutdown();
    match served {
        Ok(()) => {
            println!("sweepd: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("sweepd: listener failed: {err}");
            ExitCode::FAILURE
        }
    }
}
