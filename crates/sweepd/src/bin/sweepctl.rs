//! Command-line client for `sweepd`.
//!
//! ```text
//! sweepctl [--socket PATH | --tcp ADDR] <command>
//!
//! commands:
//!   submit FILE [--priority low|normal|high] [--engine baseline|stp]
//!               [--preset fast|paper|thorough] [--passes SCRIPT]
//!               [--shards K] [--wait] [-o OUT]
//!   status ID
//!   cancel ID
//!   list
//!   result ID [-o OUT]
//!   shutdown
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use sweepd::job::parse_engine;
use sweepd::server::Endpoint;
use sweepd::{JobCounters, JobInfo, Preset, Priority, SweepClient};

const USAGE: &str = "usage: sweepctl [--socket PATH | --tcp ADDR] \
                     submit|status|cancel|list|result|shutdown ...";

/// How long `submit --wait` and `result` are willing to wait.
const WAIT_TIMEOUT: Duration = Duration::from_secs(600);

fn print_info(info: &JobInfo) {
    print!(
        "job {:>3}  {:9}  prio {:6}  {}/{}  slices {:>4}  sat {:>6}  committed {:>6}  fp {:016x}",
        info.id,
        info.state.to_string(),
        info.priority.to_string(),
        info.engine,
        info.preset,
        info.slices,
        info.sat_calls,
        info.committed_candidates,
        info.canonical_fingerprint,
    );
    if info.error.is_empty() {
        println!();
    } else {
        println!("  ({})", info.error);
    }
}

fn write_output(out: Option<&PathBuf>, aiger: &[u8], counters: &JobCounters) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, aiger)
                .map_err(|err| format!("writing {}: {err}", path.display()))?;
            eprintln!("swept: {counters} -> {}", path.display());
        }
        None => {
            // AIGER on stdout, counters on stderr, so output can be piped.
            print!("{}", String::from_utf8_lossy(aiger));
            eprintln!("swept: {counters}");
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoint = Endpoint::Unix(PathBuf::from("/tmp/sweepd.sock"));

    // Global endpoint flags may precede the command.
    while let Some(first) = args.first().cloned() {
        match first.as_str() {
            "--socket" | "--tcp" => {
                if args.len() < 2 {
                    return Err(format!("{first} needs a value"));
                }
                let value = args.remove(1);
                args.remove(0);
                endpoint = if first == "--socket" {
                    Endpoint::Unix(PathBuf::from(value))
                } else {
                    Endpoint::Tcp(value)
                };
            }
            _ => break,
        }
    }
    let client = SweepClient::connect_to(endpoint);
    let command = args.first().cloned().ok_or(USAGE.to_string())?;
    let err = |what: &str| format!("{what}\n{USAGE}");

    let parse_id = |args: &[String]| -> Result<u64, String> {
        args.get(1)
            .and_then(|id| id.parse().ok())
            .ok_or_else(|| err("expected a numeric job id"))
    };

    match command.as_str() {
        "submit" => {
            let mut file = None;
            let mut priority = Priority::Normal;
            let mut engine = stp_sweep::Engine::Stp;
            let mut preset = Preset::Fast;
            let mut passes = String::new();
            let mut shards = 0u32;
            let mut wait = false;
            let mut out = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                let mut value =
                    |flag: &str| rest.next().cloned().ok_or(format!("{flag} needs a value"));
                match arg.as_str() {
                    "--priority" => {
                        priority = Priority::parse(&value("--priority")?)
                            .ok_or_else(|| err("--priority is low|normal|high"))?
                    }
                    "--engine" => {
                        engine = parse_engine(&value("--engine")?)
                            .ok_or_else(|| err("--engine is baseline|stp"))?
                    }
                    "--preset" => {
                        preset = Preset::parse(&value("--preset")?)
                            .ok_or_else(|| err("--preset is fast|paper|thorough"))?
                    }
                    "--passes" => passes = value("--passes")?,
                    "--shards" => {
                        shards = value("--shards")?
                            .parse()
                            .map_err(|_| err("--shards is a shard count (0 = unsharded)"))?
                    }
                    "--wait" => wait = true,
                    "-o" => out = Some(PathBuf::from(value("-o")?)),
                    other if file.is_none() && !other.starts_with('-') => {
                        file = Some(PathBuf::from(other))
                    }
                    other => return Err(err(&format!("unknown submit argument {other}"))),
                }
            }
            let file = file.ok_or_else(|| err("submit needs an AIGER file"))?;
            let aiger =
                std::fs::read(&file).map_err(|e| format!("reading {}: {e}", file.display()))?;
            let (id, adopted) = client
                .submit_with_options(priority, engine, preset, &passes, shards, &aiger)
                .map_err(|e| e.to_string())?;
            if adopted {
                println!("job {id} (adopted an existing job for this netlist)");
            } else {
                println!("job {id}");
            }
            if wait {
                let (aiger, counters) = client
                    .wait_result(id, WAIT_TIMEOUT)
                    .map_err(|e| e.to_string())?;
                write_output(out.as_ref(), &aiger, &counters)?;
            }
            Ok(())
        }
        "status" => {
            let info = client.status(parse_id(&args)?).map_err(|e| e.to_string())?;
            print_info(&info);
            Ok(())
        }
        "cancel" => {
            let id = parse_id(&args)?;
            client.cancel(id).map_err(|e| e.to_string())?;
            println!("cancelled job {id}");
            Ok(())
        }
        "list" => {
            let jobs = client.list().map_err(|e| e.to_string())?;
            if jobs.is_empty() {
                println!("no jobs");
            }
            for info in &jobs {
                print_info(info);
            }
            Ok(())
        }
        "result" => {
            let id = parse_id(&args)?;
            let out = match args.get(2).map(String::as_str) {
                Some("-o") => Some(PathBuf::from(
                    args.get(3).ok_or_else(|| err("-o needs a value"))?,
                )),
                Some(other) => return Err(err(&format!("unknown result argument {other}"))),
                None => None,
            };
            let (aiger, counters) = client
                .wait_result(id, WAIT_TIMEOUT)
                .map_err(|e| e.to_string())?;
            write_output(out.as_ref(), &aiger, &counters)
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("daemon is shutting down");
            Ok(())
        }
        other => Err(err(&format!("unknown command {other}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
