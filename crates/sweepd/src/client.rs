//! A blocking client for the daemon, used by `sweepctl` and the tests.
//!
//! The client opens one connection per request — the protocol is strictly
//! request/response, so this keeps every call independent and makes the
//! client trivially usable from multiple threads.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use crate::job::{JobCounters, JobId, JobInfo, JobState, Priority};
use crate::protocol::{Preset, ProtocolError, Request, Response};
use crate::server::{Endpoint, Stream};
use stp_sweep::Engine;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or the socket failed mid-call.
    Io(io::Error),
    /// The daemon sent something this client cannot parse.
    Protocol(ProtocolError),
    /// The daemon answered with an error (unknown job, invalid AIGER, a
    /// failed sweep, ...).
    Server(String),
    /// The daemon answered with the wrong message kind, or the wait
    /// timed out.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection failed: {err}"),
            ClientError::Protocol(err) => write!(f, "{err}"),
            ClientError::Server(reason) => write!(f, "daemon error: {reason}"),
            ClientError::Unexpected(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(err: ProtocolError) -> Self {
        match err {
            ProtocolError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other),
        }
    }
}

/// A handle on one daemon endpoint.
pub struct SweepClient {
    endpoint: Endpoint,
}

impl SweepClient {
    /// A client for a daemon on a Unix socket.
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        SweepClient {
            endpoint: Endpoint::Unix(path.into()),
        }
    }

    /// A client for a daemon on a TCP address like `127.0.0.1:7171`.
    pub fn tcp(addr: impl Into<String>) -> Self {
        SweepClient {
            endpoint: Endpoint::Tcp(addr.into()),
        }
    }

    /// A client for an already-parsed endpoint.
    pub fn connect_to(endpoint: Endpoint) -> Self {
        SweepClient { endpoint }
    }

    fn roundtrip(&self, request: &Request) -> Result<Response, ClientError> {
        let mut stream = match &self.endpoint {
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        };
        request.write_to(&mut stream)?;
        match Response::read_from(&mut stream)? {
            Some(Response::Error(reason)) => Err(ClientError::Server(reason)),
            Some(response) => Ok(response),
            None => Err(ClientError::Unexpected(
                "the daemon closed the connection without answering".into(),
            )),
        }
    }

    /// Submits AIGER bytes for a plain sweep; returns the job id and
    /// whether the submission was adopted into an existing job.
    pub fn submit(
        &self,
        priority: Priority,
        engine: Engine,
        preset: Preset,
        aiger: &[u8],
    ) -> Result<(JobId, bool), ClientError> {
        self.submit_with_passes(priority, engine, preset, "", aiger)
    }

    /// Submits AIGER bytes with an optional pass script (the
    /// [`stp_sweep::PassManager::parse`] grammar; empty runs the engine's
    /// plain sweep).  The daemon validates the script at submission and
    /// rejects typos as a server error.
    pub fn submit_with_passes(
        &self,
        priority: Priority,
        engine: Engine,
        preset: Preset,
        passes: &str,
        aiger: &[u8],
    ) -> Result<(JobId, bool), ClientError> {
        self.submit_with_options(priority, engine, preset, passes, 0, aiger)
    }

    /// Like [`SweepClient::submit_with_passes`], plus a shard count for
    /// the sweep ([`stp_sweep::SweepConfig::shards`]; `0` runs unsharded).
    /// Sharding never changes committed results, only which sub-worker
    /// runs each speculative SAT query.
    pub fn submit_with_options(
        &self,
        priority: Priority,
        engine: Engine,
        preset: Preset,
        passes: &str,
        shards: u32,
        aiger: &[u8],
    ) -> Result<(JobId, bool), ClientError> {
        match self.roundtrip(&Request::Submit {
            priority,
            engine,
            preset,
            aiger: aiger.to_vec(),
            passes: passes.to_string(),
            shards,
        })? {
            Response::Submitted { id, adopted } => Ok((id, adopted)),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// The state of one job.
    pub fn status(&self, id: JobId) -> Result<JobInfo, ClientError> {
        match self.roundtrip(&Request::Status { id })? {
            Response::Job(info) => Ok(*info),
            other => Err(unexpected("Job", &other)),
        }
    }

    /// Every job the daemon knows about.
    pub fn list(&self) -> Result<Vec<JobInfo>, ClientError> {
        match self.roundtrip(&Request::List)? {
            Response::Jobs(jobs) => Ok(jobs),
            other => Err(unexpected("Jobs", &other)),
        }
    }

    /// Cancels a job.
    pub fn cancel(&self, id: JobId) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Cancel { id })? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Fetches the swept AIGER and counters of a `Done` job.
    pub fn fetch(&self, id: JobId) -> Result<(Vec<u8>, JobCounters), ClientError> {
        match self.roundtrip(&Request::Fetch { id })? {
            Response::Output {
                aiger, counters, ..
            } => Ok((aiger, counters)),
            other => Err(unexpected("Output", &other)),
        }
    }

    /// Polls until the job finishes, then fetches its output.  A job that
    /// ends `Failed` or `Cancelled` is reported as a server error.
    pub fn wait_result(
        &self,
        id: JobId,
        timeout: Duration,
    ) -> Result<(Vec<u8>, JobCounters), ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let info = self.status(id)?;
            match info.state {
                JobState::Done => return self.fetch(id),
                JobState::Failed => {
                    return Err(ClientError::Server(format!(
                        "job {id} failed: {}",
                        info.error
                    )))
                }
                JobState::Cancelled => {
                    return Err(ClientError::Server(format!("job {id} was cancelled")))
                }
                _ if Instant::now() >= deadline => {
                    return Err(ClientError::Unexpected(format!(
                        "timed out waiting for job {id} ({})",
                        info.state
                    )))
                }
                _ => thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Asks the daemon to exit cleanly.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    let kind = match got {
        Response::Submitted { .. } => "Submitted",
        Response::Job(_) => "Job",
        Response::Jobs(_) => "Jobs",
        Response::Output { .. } => "Output",
        Response::Done => "Done",
        Response::Error(_) => "Error",
    };
    ClientError::Unexpected(format!(
        "the daemon answered {kind} where {wanted} was expected"
    ))
}
