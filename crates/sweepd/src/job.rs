//! Job identities, states and progress counters.
//!
//! A *job* is one sweep of one netlist.  The daemon keys jobs by the
//! canonical fingerprint of their netlist, so the same circuit submitted
//! twice — even renumbered — maps to the same job.

use std::fmt;

use crate::protocol::Preset;
use stp_sweep::{Engine, SweepReport};

/// Identifies a job for the lifetime of one daemon instance.
///
/// Ids are assigned in submission order and are *not* stable across a
/// daemon restart; the stable identity of a job is the canonical
/// fingerprint of its netlist ([`JobInfo::canonical_fingerprint`]).
pub type JobId = u64;

/// Scheduling priority of a job.  The scheduler always runs the
/// highest-priority runnable job first and preempts lower-priority
/// running jobs (at their next candidate boundary) when a higher-priority
/// job arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Batch work: runs when nothing more urgent is queued.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Interactive work: preempts running `Low`/`Normal` jobs.
    High,
}

impl Priority {
    /// Wire encoding of the priority.
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Decodes a wire priority.
    pub(crate) fn from_u8(value: u8) -> Option<Self> {
        match value {
            0 => Some(Priority::Low),
            1 => Some(Priority::Normal),
            2 => Some(Priority::High),
            _ => None,
        }
    }

    /// Parses the human spelling used by `sweepctl --priority`.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::Normal => write!(f, "normal"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Waiting for its first time slice.
    Queued,
    /// Currently holding a worker.
    Running,
    /// Preempted at a candidate boundary; its checkpoint is held in memory
    /// (and spilled to disk when a spill directory is configured).
    Suspended,
    /// Finished; the swept AIGER and counters are available.
    Done,
    /// The sweep itself failed (e.g. the netlist was malformed on resume).
    Failed,
    /// Cancelled by a client before completion.
    Cancelled,
}

impl JobState {
    /// `true` once the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    pub(crate) fn to_u8(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Suspended => 2,
            JobState::Done => 3,
            JobState::Failed => 4,
            JobState::Cancelled => 5,
        }
    }

    pub(crate) fn from_u8(value: u8) -> Option<Self> {
        match value {
            0 => Some(JobState::Queued),
            1 => Some(JobState::Running),
            2 => Some(JobState::Suspended),
            3 => Some(JobState::Done),
            4 => Some(JobState::Failed),
            5 => Some(JobState::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobState::Queued => write!(f, "queued"),
            JobState::Running => write!(f, "running"),
            JobState::Suspended => write!(f, "suspended"),
            JobState::Done => write!(f, "done"),
            JobState::Failed => write!(f, "failed"),
            JobState::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// The committed counters of a finished sweep — the exact values the
/// determinism gate pins against an uninterrupted in-process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobCounters {
    /// AND gates in the submitted netlist.
    pub gates_before: u64,
    /// AND gates in the swept netlist.
    pub gates_after: u64,
    /// Nodes merged into an equivalent representative.
    pub merges: u64,
    /// Nodes proved constant and substituted.
    pub constants: u64,
    /// Sweeping SAT queries across all time slices.
    pub sat_calls_total: u64,
}

impl JobCounters {
    /// Extracts the committed counters from a finished sweep's report.
    pub fn from_report(report: &SweepReport) -> Self {
        JobCounters {
            gates_before: report.gates_before as u64,
            gates_after: report.gates_after as u64,
            merges: report.merges as u64,
            constants: report.constants as u64,
            sat_calls_total: report.sat_calls_total,
        }
    }
}

impl fmt::Display for JobCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} gates ({} merges, {} constants, {} SAT calls)",
            self.gates_before, self.gates_after, self.merges, self.constants, self.sat_calls_total
        )
    }
}

/// A snapshot of one job as reported over the wire by `Status`/`List`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInfo {
    /// Daemon-local job id.
    pub id: JobId,
    /// Canonical fingerprint of the submitted netlist — the stable
    /// cross-restart identity of the job.
    pub canonical_fingerprint: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Scheduling priority.
    pub priority: Priority,
    /// Sweeping engine the job runs under.
    pub engine: Engine,
    /// Configuration preset the job runs under.
    pub preset: Preset,
    /// Time slices the job has consumed so far.
    pub slices: u64,
    /// Sweeping SAT calls committed so far.
    pub sat_calls: u64,
    /// Candidates committed so far.
    pub committed_candidates: u64,
    /// Error message for `Failed` jobs, empty otherwise.
    pub error: String,
}

pub(crate) fn engine_to_u8(engine: Engine) -> u8 {
    match engine {
        Engine::Baseline => 0,
        Engine::Stp => 1,
    }
}

pub(crate) fn engine_from_u8(value: u8) -> Option<Engine> {
    match value {
        0 => Some(Engine::Baseline),
        1 => Some(Engine::Stp),
        _ => None,
    }
}

/// Parses the human spelling used by `sweepctl --engine`.
pub fn parse_engine(text: &str) -> Option<Engine> {
    match text {
        "baseline" => Some(Engine::Baseline),
        "stp" => Some(Engine::Stp),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }

    #[test]
    fn wire_round_trips_cover_every_variant() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::from_u8(p.to_u8()), Some(p));
            assert_eq!(Priority::parse(&p.to_string()), Some(p));
        }
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Suspended,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_u8(s.to_u8()), Some(s));
        }
        for e in [Engine::Baseline, Engine::Stp] {
            assert_eq!(engine_from_u8(engine_to_u8(e)), Some(e));
        }
        assert_eq!(Priority::from_u8(9), None);
        assert_eq!(JobState::from_u8(9), None);
        assert_eq!(engine_from_u8(9), None);
    }

    #[test]
    fn terminal_states_are_exactly_done_failed_cancelled() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Suspended.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}
