//! The daemon determinism battery — the PR's acceptance gate.
//!
//! For any slice quantum, priority mix, and daemon restart, each job's
//! swept AIGER and committed counters must be *byte-identical* to the same
//! job run uninterrupted in-process.  The engine's checkpoint/resume is
//! byte-exact, so the daemon's time-slicing, preemption and crash recovery
//! must all be invisible in the output; these tests pin that end to end.

mod common;

use std::time::{Duration, Instant};

use common::{aiger_bytes, fresh_dir, reference, renumbered_copy, spill_files};
use netlist::canonical_fingerprint;
use stp_sweep::{Engine, Pipeline};
use sweepd::spill::{SpillDir, SpilledJob};
use sweepd::{
    effective_config, JobCounters, JobState, Preset, Priority, ServiceConfig, SweepService,
};
use workloads::{generators, inject_redundancy};

const WAIT: Duration = Duration::from_secs(300);

#[test]
fn sliced_mixed_priority_jobs_match_uninterrupted_runs() {
    // Six distinct circuits across all three priorities, time-sliced on a
    // quantum small enough that every job is suspended and resumed.
    let circuits = [
        (
            Priority::High,
            inject_redundancy(&generators::barrel_shifter(8), 0.5, 1),
        ),
        (
            Priority::Low,
            inject_redundancy(&generators::ripple_carry_adder(12), 0.4, 2),
        ),
        (
            Priority::Normal,
            inject_redundancy(&generators::priority_encoder(12), 0.5, 3),
        ),
        (
            Priority::Normal,
            inject_redundancy(&generators::max_unit(8), 0.3, 4),
        ),
        (
            Priority::High,
            inject_redundancy(&generators::decoder(5), 0.5, 5),
        ),
        (
            Priority::Low,
            inject_redundancy(&generators::majority_voter(9), 0.5, 6),
        ),
    ];
    let spill = fresh_dir("battery");
    let service = SweepService::start(ServiceConfig {
        workers: 3,
        quantum: Duration::from_millis(2),
        spill_dir: Some(spill.clone()),
        checkpoint_every_secs: 0.05,
    })
    .expect("service starts");

    let mut ids = Vec::new();
    for (priority, aig) in &circuits {
        let (id, adopted) = service
            .submit(*priority, Engine::Stp, Preset::Fast, &aiger_bytes(aig))
            .expect("submit succeeds");
        assert!(!adopted, "all six circuits are distinct");
        ids.push(id);
    }

    let mut total_slices = 0;
    for (id, (_, aig)) in ids.iter().zip(&circuits) {
        let info = service.wait(*id, WAIT).expect("job finishes");
        assert_eq!(info.state, JobState::Done);
        total_slices += info.slices;
        let (aiger, counters) = service.fetch(*id).expect("done job has output");
        let (want_aiger, want_counters) = reference(Engine::Stp, Preset::Fast, aig);
        assert_eq!(
            String::from_utf8(aiger).expect("AIGER is text"),
            want_aiger,
            "job {id}: sliced output differs from the uninterrupted run"
        );
        assert_eq!(
            counters, want_counters,
            "job {id}: sliced counters differ from the uninterrupted run"
        );
    }
    // The gate is vacuous unless slicing actually happened.
    assert!(
        total_slices > ids.len() as u64,
        "a 2 ms quantum must slice: only {total_slices} slices over {} jobs",
        ids.len()
    );

    // Completed jobs must leave nothing behind in the spill directory.
    service.shutdown();
    assert_eq!(
        spill_files(&spill, "job"),
        0,
        "done jobs keep no spill files"
    );
    assert_eq!(
        spill_files(&spill, "ckpt"),
        0,
        "done jobs keep no checkpoints"
    );
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn crash_recovery_resumes_spilled_jobs_byte_exactly() {
    let circuits = [
        (
            Priority::High,
            inject_redundancy(&generators::barrel_shifter(16), 0.5, 7),
        ),
        (
            Priority::Normal,
            inject_redundancy(&generators::array_multiplier(6), 0.4, 8),
        ),
    ];
    let spill = fresh_dir("crash");
    let config = ServiceConfig {
        workers: 2,
        quantum: Duration::from_millis(3),
        spill_dir: Some(spill.clone()),
        checkpoint_every_secs: 0.0,
    };
    let service = SweepService::start(config.clone()).expect("service starts");
    let mut expected = Vec::new();
    for (priority, aig) in &circuits {
        service
            .submit(*priority, Engine::Stp, Preset::Fast, &aiger_bytes(aig))
            .expect("submit succeeds");
        expected.push((canonical_fingerprint(aig), aig));
    }

    // Crash as soon as the first suspension checkpoint hits the disk —
    // well before either job can finish.
    let deadline = Instant::now() + WAIT;
    while spill_files(&spill, "ckpt") == 0 {
        assert!(
            Instant::now() < deadline,
            "no checkpoint was spilled within the deadline"
        );
        assert!(
            service.list().iter().any(|job| !job.state.is_terminal()),
            "both jobs finished before any checkpoint was spilled; \
             the crash test needs a longer workload"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    service.simulate_crash();
    drop(service);

    // What survived the crash is exactly what's on disk: both submissions
    // and at least one genuinely resumable (primed or not, but decodable)
    // checkpoint.
    let on_disk = sweepd::spill::SpillDir::open(&spill)
        .expect("spill dir opens")
        .scan()
        .expect("spill dir scans");
    assert_eq!(on_disk.len(), 2, "both submissions survived the crash");
    let resumable = on_disk
        .iter()
        .filter_map(|rec| rec.checkpoint.as_deref())
        .filter(|bytes| stp_sweep::SweepCheckpoint::decode(bytes).is_ok())
        .count();
    assert!(resumable >= 1, "a spilled checkpoint survived and decodes");

    // A fresh instance on the same directory re-adopts the spilled jobs
    // (fresh ids, same canonical fingerprints) and resumes them.
    let service = SweepService::start(config).expect("service restarts");
    let recovered = service.list();
    assert_eq!(recovered.len(), 2, "both spilled jobs were re-adopted");
    for job in &recovered {
        let (fp, aig) = expected
            .iter()
            .find(|(fp, _)| *fp == job.canonical_fingerprint)
            .expect("re-adopted job matches a submitted circuit");
        assert_eq!(job.canonical_fingerprint, *fp);

        // Resubmitting the same netlist adopts the recovered job instead
        // of creating a duplicate.
        let (id, adopted) = service
            .submit(job.priority, Engine::Stp, Preset::Fast, &aiger_bytes(aig))
            .expect("resubmit succeeds");
        assert_eq!(id, job.id);
        assert!(adopted);

        let info = service.wait(job.id, WAIT).expect("recovered job finishes");
        assert_eq!(info.state, JobState::Done);
        let (aiger, counters) = service.fetch(job.id).expect("output available");
        let (want_aiger, want_counters) = reference(Engine::Stp, Preset::Fast, aig);
        assert_eq!(
            String::from_utf8(aiger).expect("AIGER is text"),
            want_aiger,
            "crash-recovered output differs from the uninterrupted run"
        );
        assert_eq!(counters, want_counters);
    }
    service.shutdown();
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn renumbered_resubmission_adopts_the_existing_job() {
    let aig = inject_redundancy(&generators::priority_encoder(10), 0.5, 9);
    let shuffled = renumbered_copy(&aig);
    assert_ne!(
        aiger_bytes(&aig),
        aiger_bytes(&shuffled),
        "the copy must genuinely renumber"
    );

    let service = SweepService::start(ServiceConfig {
        workers: 1,
        quantum: Duration::from_millis(5),
        spill_dir: None,
        checkpoint_every_secs: 0.0,
    })
    .expect("service starts");
    let (id, adopted) = service
        .submit(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&aig),
        )
        .expect("submit succeeds");
    assert!(!adopted);

    // Same circuit, different node numbering: canonically identical, so
    // the submission lands on the existing job.
    let (id2, adopted2) = service
        .submit(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&shuffled),
        )
        .expect("resubmit succeeds");
    assert_eq!(id2, id);
    assert!(adopted2);

    // Adoption refuses to silently change the sweep settings.
    let err = service
        .submit(
            Priority::Normal,
            Engine::Baseline,
            Preset::Fast,
            &aiger_bytes(&aig),
        )
        .expect_err("conflicting engine is refused");
    assert!(err.contains("already sweeps"), "got: {err}");

    let info = service.wait(id, WAIT).expect("job finishes");
    assert_eq!(info.state, JobState::Done);
    service.shutdown();
}

#[test]
fn cancelled_jobs_stop_and_resubmission_restarts_them() {
    let long = inject_redundancy(&generators::barrel_shifter(8), 0.5, 10);
    let target = inject_redundancy(&generators::decoder(5), 0.5, 11);
    let service = SweepService::start(ServiceConfig {
        workers: 1,
        quantum: Duration::from_millis(5),
        spill_dir: None,
        checkpoint_every_secs: 0.0,
    })
    .expect("service starts");

    // The long job occupies the only worker, so the target is still
    // queued when the cancel lands — deterministic immediate cancellation.
    let (long_id, _) = service
        .submit(
            Priority::High,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&long),
        )
        .expect("submit succeeds");
    let (target_id, _) = service
        .submit(
            Priority::Low,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&target),
        )
        .expect("submit succeeds");
    service.cancel(target_id).expect("cancel succeeds");
    let info = service.wait(target_id, WAIT).expect("terminal");
    assert_eq!(info.state, JobState::Cancelled);
    assert!(
        service.fetch(target_id).is_err(),
        "a cancelled job has no output"
    );

    // Resubmission revives the cancelled job under the same id.
    let (revived, adopted) = service
        .submit(
            Priority::High,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&target),
        )
        .expect("resubmit succeeds");
    assert_eq!(revived, target_id);
    assert!(adopted);
    let info = service.wait(target_id, WAIT).expect("job finishes");
    assert_eq!(info.state, JobState::Done);
    let (aiger, counters) = service.fetch(target_id).expect("output available");
    let (want_aiger, want_counters) = reference(Engine::Stp, Preset::Fast, &target);
    assert_eq!(String::from_utf8(aiger).expect("AIGER is text"), want_aiger);
    assert_eq!(counters, want_counters);

    // Cancelling a running job stops it at the next candidate boundary.
    service.cancel(long_id).expect("cancel succeeds");
    let info = service.wait(long_id, WAIT).expect("terminal");
    assert!(
        matches!(info.state, JobState::Cancelled | JobState::Done),
        "cancel raced completion at worst: {}",
        info.state
    );
    service.shutdown();
}

#[test]
fn scripted_jobs_match_in_process_pipelines_and_recover_from_spill() {
    let script = "strash;rewrite;sweep(stp);verify";
    let aig = inject_redundancy(&generators::barrel_shifter(8), 0.5, 14);

    // The oracle: the same pipeline run uninterrupted, in-process, under
    // the daemon's effective configuration.
    let want = Pipeline::new(effective_config(Preset::Fast))
        .with_script(script)
        .expect("script parses")
        .run(&aig)
        .expect("uninterrupted pipeline finishes");
    let want_aiger = netlist::write_aiger_string(&want.aig);
    let want_counters = JobCounters::from_report(&want.report);

    let spill = fresh_dir("scripted");
    let config = ServiceConfig {
        workers: 1,
        quantum: Duration::from_millis(2),
        spill_dir: Some(spill.clone()),
        checkpoint_every_secs: 0.0,
    };
    let service = SweepService::start(config.clone()).expect("service starts");

    // A typo fails the submission, not the job.
    let err = service
        .submit_with_passes(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            "strash;typo",
            &aiger_bytes(&aig),
        )
        .expect_err("an invalid script is refused");
    assert!(err.contains("invalid pass script"), "got: {err}");

    let (id, adopted) = service
        .submit_with_passes(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            script,
            &aiger_bytes(&aig),
        )
        .expect("submit succeeds");
    assert!(!adopted);

    // Adoption refuses to silently change the pass script.
    let err = service
        .submit(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&aig),
        )
        .expect_err("a conflicting script is refused");
    assert!(err.contains("already sweeps"), "got: {err}");
    assert!(err.contains(script), "the error names the script: {err}");

    // A 2 ms quantum trips mid-pipeline; scripted jobs are requeued with
    // a growing quantum (never checkpointed) until one slice fits the
    // whole script, so the output is an uninterrupted pipeline's by
    // construction.
    let info = service.wait(id, WAIT).expect("job finishes");
    assert_eq!(info.state, JobState::Done);
    let (aiger, counters) = service.fetch(id).expect("done job has output");
    assert_eq!(
        String::from_utf8(aiger).expect("AIGER is text"),
        want_aiger,
        "scripted daemon output differs from the in-process pipeline"
    );
    assert_eq!(counters, want_counters);
    service.shutdown();
    assert_eq!(spill_files(&spill, "job"), 0, "done jobs leave no spill");
    drop(service);

    // Crash recovery: spill a scripted submission directly — as a crashed
    // daemon would have left it — plus a stray sweep checkpoint, which a
    // scripted job must ignore (it cannot restart a pipeline mid-script).
    let other = inject_redundancy(&generators::priority_encoder(10), 0.5, 15);
    let fp = canonical_fingerprint(&other);
    let dir = SpillDir::open(&spill).expect("spill dir opens");
    dir.write_job(
        fp,
        &SpilledJob {
            priority: Priority::Normal,
            engine: Engine::Stp,
            preset: Preset::Fast,
            aiger: aiger_bytes(&other),
            passes: script.to_string(),
            shards: 0,
        },
    )
    .expect("job spills");
    dir.write_checkpoint(fp, b"stale sweep checkpoint")
        .expect("checkpoint spills");

    let want = Pipeline::new(effective_config(Preset::Fast))
        .with_script(script)
        .expect("script parses")
        .run(&other)
        .expect("uninterrupted pipeline finishes");
    let service = SweepService::start(config).expect("service restarts");
    let recovered = service.list();
    assert_eq!(recovered.len(), 1, "the spilled scripted job is re-adopted");
    assert_eq!(recovered[0].canonical_fingerprint, fp);
    let info = service.wait(recovered[0].id, WAIT).expect("job finishes");
    assert_eq!(info.state, JobState::Done);
    let (aiger, counters) = service.fetch(recovered[0].id).expect("output");
    assert_eq!(
        String::from_utf8(aiger).expect("AIGER is text"),
        netlist::write_aiger_string(&want.aig),
        "crash-recovered scripted output differs from the in-process pipeline"
    );
    assert_eq!(counters, JobCounters::from_report(&want.report));
    service.shutdown();
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn a_sharded_job_matches_the_unsharded_reference() {
    // Sharding is a scheduling preference, not a behaviour: a job swept
    // over 3 shards — sliced on a tiny quantum, with within-slice
    // checkpoints spilled and resumed — must produce the same AIGER bytes
    // and committed counters as the unsharded, uninterrupted reference.
    let aig = inject_redundancy(&generators::barrel_shifter(16), 0.5, 21);
    let spill = fresh_dir("sharded");
    let service = SweepService::start(ServiceConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        spill_dir: Some(spill.clone()),
        checkpoint_every_secs: 0.05,
    })
    .expect("service starts");
    let (id, adopted) = service
        .submit_with_options(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            "",
            3,
            &aiger_bytes(&aig),
        )
        .expect("submit succeeds");
    assert!(!adopted);

    // A resubmission under a different shard count is a settings conflict,
    // same as changing the engine or the script.
    let err = service
        .submit_with_options(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            "",
            2,
            &aiger_bytes(&aig),
        )
        .expect_err("a conflicting shard count is refused");
    assert!(
        err.contains("3 shards"),
        "the error names the shards: {err}"
    );

    let info = service.wait(id, WAIT).expect("job finishes");
    assert_eq!(info.state, JobState::Done);
    let (aiger, counters) = service.fetch(id).expect("done job has output");
    let (want_aiger, want_counters) = reference(Engine::Stp, Preset::Fast, &aig);
    assert_eq!(
        String::from_utf8(aiger).expect("AIGER is text"),
        want_aiger,
        "sharded daemon output differs from the unsharded reference"
    );
    assert_eq!(counters, want_counters);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn a_high_priority_job_preempts_a_running_low_one() {
    let low = inject_redundancy(&generators::barrel_shifter(16), 0.5, 12);
    let high = inject_redundancy(&generators::decoder(4), 0.5, 13);
    // One worker and a quantum far longer than the whole test: without
    // preemption the high job could not start until the low job finished.
    let service = SweepService::start(ServiceConfig {
        workers: 1,
        quantum: Duration::from_secs(3600),
        spill_dir: None,
        checkpoint_every_secs: 0.0,
    })
    .expect("service starts");
    let (low_id, _) = service
        .submit(Priority::Low, Engine::Stp, Preset::Fast, &aiger_bytes(&low))
        .expect("submit succeeds");
    // Give the low job its slice before the rival shows up.
    let deadline = Instant::now() + WAIT;
    while service.status(low_id).expect("known job").state != JobState::Running {
        assert!(Instant::now() < deadline, "low job never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    let (high_id, _) = service
        .submit(
            Priority::High,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&high),
        )
        .expect("submit succeeds");

    let info = service.wait(high_id, WAIT).expect("high job finishes");
    assert_eq!(info.state, JobState::Done);
    let low_state = service.status(low_id).expect("known job").state;
    assert_ne!(
        low_state,
        JobState::Done,
        "the high-priority job finished while the preempted low job was still pending"
    );

    // Preemption is just another suspension: the low job's eventual output
    // is still byte-identical to an uninterrupted run.
    let info = service.wait(low_id, WAIT).expect("low job finishes");
    assert_eq!(info.state, JobState::Done);
    let (aiger, counters) = service.fetch(low_id).expect("output available");
    let (want_aiger, want_counters) = reference(Engine::Stp, Preset::Fast, &low);
    assert_eq!(String::from_utf8(aiger).expect("AIGER is text"), want_aiger);
    assert_eq!(counters, want_counters);
    service.shutdown();
}
