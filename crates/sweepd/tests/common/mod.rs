//! Shared helpers for the daemon integration tests.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use netlist::{write_aiger_string, Aig, Lit, NodeId};
use stp_sweep::{Engine, Sweeper};
use sweepd::{effective_config, JobCounters, Preset};

/// A unique, initially-absent temp directory per call.
pub fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sweepd-test-{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The wire form of a netlist.
pub fn aiger_bytes(aig: &Aig) -> Vec<u8> {
    write_aiger_string(aig).into_bytes()
}

/// The determinism gate's oracle: the same job run uninterrupted,
/// in-process, under the daemon's effective configuration.
pub fn reference(engine: Engine, preset: Preset, aig: &Aig) -> (String, JobCounters) {
    let result = Sweeper::new(engine)
        .config(effective_config(preset))
        .run(aig)
        .expect("uninterrupted reference run finishes");
    (
        write_aiger_string(&result.aig),
        JobCounters::from_report(&result.report),
    )
}

/// Rebuilds `aig` with a different (but still topological) node order, so
/// the strict per-node fingerprint changes while the canonical one
/// doesn't.  Mirrors the engine's own renumbering test.
pub fn renumbered_copy(aig: &Aig) -> Aig {
    let mut out = Aig::new();
    let mut map = vec![Lit::positive(0); aig.num_nodes()];
    for (position, &id) in aig.inputs().iter().enumerate() {
        map[id] = out.add_input(aig.input_name(position).to_string());
    }
    let mut remaining: Vec<NodeId> = aig.and_ids().collect();
    let mut placed: Vec<bool> = aig.node_ids().map(|id| !aig.node(id).is_and()).collect();
    while !remaining.is_empty() {
        let pos = (0..remaining.len())
            .rev()
            .find(|&i| {
                aig.node(remaining[i])
                    .fanins()
                    .iter()
                    .all(|f| placed[f.node()])
            })
            .expect("an AIG is acyclic");
        let id = remaining.remove(pos);
        let fanins = aig.node(id).fanins();
        let a = map[fanins[0].node()].complement_if(fanins[0].is_complemented());
        let b = map[fanins[1].node()].complement_if(fanins[1].is_complemented());
        map[id] = out.and(a, b);
        placed[id] = true;
    }
    for output in aig.outputs() {
        let lit = map[output.lit.node()].complement_if(output.lit.is_complemented());
        out.add_output(output.name.clone(), lit);
    }
    out
}

/// Counts spill files with the given extension in `dir` (0 for a missing
/// directory).
pub fn spill_files(dir: &PathBuf, extension: &str) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|ext| ext == extension))
                .count()
        })
        .unwrap_or(0)
}
