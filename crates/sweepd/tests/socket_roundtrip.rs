//! End-to-end over a real Unix socket: daemon thread on one side, the
//! blocking client on the other, full submit → wait → fetch → shutdown
//! lifecycle, with the same byte-identity gate as the in-process battery.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{aiger_bytes, fresh_dir, reference};
use stp_sweep::Engine;
use sweepd::server::Endpoint;
use sweepd::{serve, JobState, Preset, Priority, ServiceConfig, SweepClient, SweepService};
use workloads::{generators, inject_redundancy};

#[test]
fn socket_end_to_end_lifecycle() {
    let dir = fresh_dir("socket");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let socket = dir.join("sweepd.sock");
    let service = Arc::new(
        SweepService::start(ServiceConfig {
            workers: 2,
            quantum: Duration::from_millis(5),
            spill_dir: None,
            checkpoint_every_secs: 0.0,
        })
        .expect("service starts"),
    );
    let server = {
        let service = Arc::clone(&service);
        let endpoint = Endpoint::Unix(socket.clone());
        std::thread::spawn(move || serve(service, &endpoint))
    };

    // The server binds asynchronously; poll until it answers.
    let client = SweepClient::unix(&socket);
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.list().is_err() {
        assert!(Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(5));
    }

    let aig = inject_redundancy(&generators::barrel_shifter(8), 0.5, 21);
    let (id, adopted) = client
        .submit(
            Priority::High,
            Engine::Stp,
            Preset::Fast,
            &aiger_bytes(&aig),
        )
        .expect("submit over the socket");
    assert!(!adopted);

    let (aiger, counters) = client
        .wait_result(id, Duration::from_secs(300))
        .expect("job finishes");
    let (want_aiger, want_counters) = reference(Engine::Stp, Preset::Fast, &aig);
    assert_eq!(
        String::from_utf8(aiger).expect("AIGER is text"),
        want_aiger,
        "output served over the socket differs from the uninterrupted run"
    );
    assert_eq!(counters, want_counters);

    let info = client.status(id).expect("status over the socket");
    assert_eq!(info.state, JobState::Done);
    let jobs = client.list().expect("list over the socket");
    assert!(jobs
        .iter()
        .any(|job| job.id == id && job.state == JobState::Done));

    // A scripted submission rides the same wire: the v2 `passes` field
    // reaches the scheduler and the result matches the in-process
    // pipeline run uninterrupted.
    let script = "strash;rewrite;sweep(stp)";
    let scripted = inject_redundancy(&generators::priority_encoder(10), 0.5, 22);
    let (scripted_id, _) = client
        .submit_with_passes(
            Priority::Normal,
            Engine::Stp,
            Preset::Fast,
            script,
            &aiger_bytes(&scripted),
        )
        .expect("scripted submit over the socket");
    let (aiger, counters) = client
        .wait_result(scripted_id, Duration::from_secs(300))
        .expect("scripted job finishes");
    let want = stp_sweep::Pipeline::new(sweepd::effective_config(Preset::Fast))
        .with_script(script)
        .expect("script parses")
        .run(&scripted)
        .expect("uninterrupted pipeline finishes");
    assert_eq!(
        String::from_utf8(aiger).expect("AIGER is text"),
        netlist::write_aiger_string(&want.aig),
        "scripted output served over the socket differs from the in-process pipeline"
    );
    assert_eq!(counters, sweepd::JobCounters::from_report(&want.report));

    // Server-side failures arrive as clean errors, not broken frames.
    assert!(client.status(9999).is_err(), "unknown jobs are an error");
    assert!(
        client
            .submit_with_passes(
                Priority::Low,
                Engine::Stp,
                Preset::Fast,
                "strash;typo",
                &aiger_bytes(&scripted),
            )
            .is_err(),
        "an invalid pass script is an error"
    );
    assert!(
        client
            .submit(
                Priority::Low,
                Engine::Stp,
                Preset::Fast,
                b"not an aiger file"
            )
            .is_err(),
        "invalid AIGER is an error"
    );

    client.shutdown().expect("shutdown over the socket");
    server
        .join()
        .expect("server thread exits")
        .expect("server exits cleanly");
    assert!(!socket.exists(), "the socket file is cleaned up");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
