//! # workloads — synthetic benchmark circuits for the evaluation harness
//!
//! The paper evaluates on the EPFL combinational suite (Table I) and on
//! HWMCC'15 / IWLS'05 designs (Table II).  Those artefacts cannot be bundled
//! here, so this crate generates *structural analogs*: circuits of the same
//! families (arithmetic data paths, shifters, dividers, comparators,
//! arbiters, decoders, seeded random control logic) whose DAG shape drives
//! the simulators and sweepers through the same code paths.  See the
//! repository `README.md` for the substitution rationale.
//!
//! * [`generators`] — parametric circuit generators (adders, multipliers,
//!   barrel shifters, dividers, square roots, comparators, voters, decoders,
//!   priority encoders, arbiters, crossbars, random control logic).
//! * [`epfl`] — the 20-circuit EPFL-analog suite used by the Table I
//!   harness.
//! * [`redundant`] — functional-redundancy injection: re-expresses selected
//!   cones through their truth tables with a different decomposition and
//!   rewires part of the fanout, creating the provably-mergeable node pairs
//!   SAT-sweeping is measured on.
//! * [`hwmcc`] — the 15-circuit HWMCC/IWLS-analog suite (base circuits plus
//!   injected redundancy) used by the Table II harness.
//! * [`sequential`] — sequential machines with planted latch equivalences
//!   (duplicate and complemented-duplicate latches, reachable constants,
//!   product-machine miters) plus the seeded single-gate mutation the
//!   BMC-oracle differential battery uses as its negative control.
//!
//! ```
//! use workloads::generators;
//!
//! let adder = generators::ripple_carry_adder(8);
//! assert_eq!(adder.num_inputs(), 16);
//! assert_eq!(adder.num_outputs(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epfl;
pub mod generators;
pub mod hwmcc;
pub mod redundant;
pub mod sequential;

pub use epfl::{epfl_suite, EpflBenchmark};
pub use hwmcc::{hwmcc_suite, SweepBenchmark};
pub use redundant::inject_redundancy;
pub use sequential::{
    flip_and_input, random_sequential_aig, sequential_miter, with_duplicate_latches,
    SequentialWorkload,
};

/// The size class of a generated suite.
///
/// `Tiny` keeps unit tests fast, `Small` is the default for `cargo bench`,
/// `Large` approaches (but does not reach) the paper's circuit sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Very small circuits for unit tests.
    Tiny,
    /// Default benchmark size (seconds per table).
    #[default]
    Small,
    /// Larger circuits for longer, more faithful runs.
    Large,
}

impl Scale {
    /// A multiplier applied to the base bit-widths of the generators.
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 2,
            Scale::Large => 4,
        }
    }
}
