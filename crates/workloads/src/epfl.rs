//! The EPFL-analog benchmark suite used by the Table I harness.
//!
//! The EPFL combinational benchmark suite contains ten arithmetic circuits
//! (`adder`, `bar`, `div`, `hyp`, `log2`, `max`, `multiplier`, `sin`,
//! `sqrt`, `square`) and ten random/control circuits (`arbiter`, `cavlc`,
//! `ctrl`, `dec`, `i2c`, `int2float`, `mem_ctrl`, `priority`, `router`,
//! `voter`).  This module generates one structural analog per original
//! circuit, scaled by [`Scale`] so the whole table runs in seconds by
//! default.

use crate::generators as gen;
use crate::Scale;
use netlist::Aig;

/// One named benchmark circuit.
#[derive(Debug, Clone)]
pub struct EpflBenchmark {
    /// The EPFL circuit this analog stands in for.
    pub name: &'static str,
    /// Whether the original belongs to the arithmetic half of the suite.
    pub arithmetic: bool,
    /// The generated network.
    pub aig: Aig,
}

/// Generates the full 20-circuit suite at the given scale.
pub fn epfl_suite(scale: Scale) -> Vec<EpflBenchmark> {
    let f = scale.factor();
    let make = |name, arithmetic, aig| EpflBenchmark {
        name,
        arithmetic,
        aig,
    };
    vec![
        make("adder", true, gen::ripple_carry_adder(16 * f)),
        make("bar", true, gen::barrel_shifter(16 * f)),
        make("div", true, gen::restoring_divider(6 * f)),
        make("hyp", true, gen::hypotenuse(5 * f)),
        make("log2", true, gen::polynomial_datapath(5 * f, 3)),
        make("max", true, gen::max_unit(16 * f)),
        make("multiplier", true, gen::array_multiplier(5 * f)),
        make("sin", true, gen::polynomial_datapath(4 * f, 4)),
        make("sqrt", true, gen::restoring_sqrt(5 * f)),
        make("square", true, gen::squarer(6 * f)),
        make("arbiter", false, gen::round_robin_arbiter(8 * f.min(2))),
        make(
            "cavlc",
            false,
            gen::random_control(10, 160 * f, 11, 0xCA71C),
        ),
        make("ctrl", false, gen::random_control(7, 40 * f, 25, 0xC721)),
        make("dec", false, gen::decoder(5 + scale_steps(scale))),
        make("i2c", false, gen::random_control(16, 300 * f, 15, 0x12C)),
        make(
            "int2float",
            false,
            gen::random_control(11, 60 * f, 7, 0x1F10A7),
        ),
        make(
            "mem_ctrl",
            false,
            gen::random_control(24, 900 * f, 22, 0xE3C7),
        ),
        make("priority", false, gen::priority_encoder(32 * f)),
        make("router", false, gen::crossbar_router(4, 4 * f)),
        make("voter", false, gen::majority_voter(8 * f + 1)),
    ]
}

fn scale_steps(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Large => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_named_circuits() {
        let suite = epfl_suite(Scale::Tiny);
        assert_eq!(suite.len(), 20);
        let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        for expected in [
            "adder",
            "bar",
            "div",
            "hyp",
            "log2",
            "max",
            "multiplier",
            "sin",
            "sqrt",
            "square",
            "arbiter",
            "cavlc",
            "ctrl",
            "dec",
            "i2c",
            "int2float",
            "mem_ctrl",
            "priority",
            "router",
            "voter",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
        assert_eq!(suite.iter().filter(|b| b.arithmetic).count(), 10);
    }

    #[test]
    fn circuits_are_nontrivial_and_valid() {
        for bench in epfl_suite(Scale::Tiny) {
            assert!(bench.aig.num_ands() > 0, "{} is empty", bench.name);
            assert!(bench.aig.num_outputs() > 0, "{} has no outputs", bench.name);
            // Evaluate on one pattern to exercise the structure.
            let zeros = vec![false; bench.aig.num_inputs()];
            let _ = bench.aig.evaluate(&zeros);
        }
    }

    #[test]
    fn scaling_grows_circuits() {
        let small = epfl_suite(Scale::Tiny);
        let larger = epfl_suite(Scale::Small);
        let sum =
            |suite: &[EpflBenchmark]| -> usize { suite.iter().map(|b| b.aig.num_ands()).sum() };
        assert!(sum(&larger) > sum(&small));
    }
}
