//! Parametric circuit generators.
//!
//! Each generator produces a self-contained [`Aig`] whose function is easy
//! to check against a software reference (the unit tests do exactly that).
//! The generators cover the circuit families of the EPFL suite: arithmetic
//! data paths (adder, multiplier, divider, square root, squarer,
//! hypotenuse), shifters, comparators, and random/control logic (decoder,
//! priority encoder, arbiter, crossbar router, voter, seeded random
//! control).

use netlist::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-bit full adder; returns `(sum, carry_out)`.
fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let cout = aig.maj(a, b, cin);
    (sum, cout)
}

/// Adds two `width`-bit vectors inside an existing AIG; returns `width + 1`
/// sum bits (LSB first).
fn add_vectors(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    assert_eq!(a.len(), b.len());
    let mut carry = Lit::FALSE;
    let mut sums = Vec::with_capacity(a.len() + 1);
    for i in 0..a.len() {
        let (s, c) = full_adder(aig, a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    sums.push(carry);
    sums
}

/// Subtracts `b` from `a` (two's complement) inside an existing AIG; returns
/// `width` difference bits plus the final borrow-free flag (carry out, which
/// is 1 when `a >= b`).
fn sub_vectors(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len());
    let mut carry = Lit::TRUE;
    let mut diffs = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let nb = !b[i];
        let (s, c) = full_adder(aig, a[i], nb, carry);
        diffs.push(s);
        carry = c;
    }
    (diffs, carry)
}

/// A ripple-carry adder of two `width`-bit operands (`adder` analog).
///
/// Inputs: `a0..a{w-1}`, `b0..b{w-1}`; outputs: `s0..s{w-1}`, `cout`.
pub fn ripple_carry_adder(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let sums = add_vectors(&mut aig, &a, &b);
    for (i, s) in sums[..width].iter().enumerate() {
        aig.add_output(format!("s{i}"), *s);
    }
    aig.add_output("cout", sums[width]);
    aig
}

/// A logarithmic barrel shifter (`bar` analog): shifts a `width`-bit word
/// left by a `log2(width)`-bit amount, filling with zeros.
///
/// # Panics
///
/// Panics if `width` is not a power of two.
pub fn barrel_shifter(width: usize) -> Aig {
    assert!(width.is_power_of_two(), "width must be a power of two");
    let stages = width.trailing_zeros() as usize;
    let mut aig = Aig::new();
    let data = aig.add_inputs("d", width);
    let shift = aig.add_inputs("s", stages);
    let mut current = data;
    for (stage, &sel) in shift.iter().enumerate() {
        let amount = 1usize << stage;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let shifted = if i >= amount {
                current[i - amount]
            } else {
                Lit::FALSE
            };
            next.push(aig.mux(sel, shifted, current[i]));
        }
        current = next;
    }
    for (i, bit) in current.iter().enumerate() {
        aig.add_output(format!("q{i}"), *bit);
    }
    aig
}

/// An array multiplier of two `width`-bit operands (`multiplier` analog).
pub fn array_multiplier(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let product = multiply_vectors(&mut aig, &a, &b);
    for (i, bit) in product.iter().enumerate() {
        aig.add_output(format!("p{i}"), *bit);
    }
    aig
}

fn multiply_vectors(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let width = a.len();
    let out_width = 2 * width;
    let mut acc = vec![Lit::FALSE; out_width];
    for (i, &bi) in b.iter().enumerate() {
        // Partial product row shifted by i.
        let mut row = vec![Lit::FALSE; out_width];
        for (j, &aj) in a.iter().enumerate() {
            row[i + j] = aig.and(aj, bi);
        }
        let summed = add_vectors(aig, &acc, &row);
        acc = summed[..out_width].to_vec();
    }
    acc
}

/// A squarer (`square` analog): the product of one operand with itself.
pub fn squarer(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs("a", width);
    let product = multiply_vectors(&mut aig, &a.clone(), &a);
    for (i, bit) in product.iter().enumerate() {
        aig.add_output(format!("p{i}"), *bit);
    }
    aig
}

/// A hypotenuse-style datapath (`hyp` analog): `a*a + b*b` of two
/// `width`-bit operands.
pub fn hypotenuse(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let aa = multiply_vectors(&mut aig, &a.clone(), &a);
    let bb = multiply_vectors(&mut aig, &b.clone(), &b);
    let sum = add_vectors(&mut aig, &aa, &bb);
    for (i, bit) in sum.iter().enumerate() {
        aig.add_output(format!("h{i}"), *bit);
    }
    aig
}

/// A restoring divider (`div` analog): divides a `width`-bit dividend by a
/// `width`-bit divisor, producing quotient and remainder.
pub fn restoring_divider(width: usize) -> Aig {
    let mut aig = Aig::new();
    let dividend = aig.add_inputs("n", width);
    let divisor = aig.add_inputs("d", width);
    // Remainder register, processed from the MSB of the dividend down.
    let mut remainder = vec![Lit::FALSE; width];
    let mut quotient = vec![Lit::FALSE; width];
    for step in (0..width).rev() {
        // Shift the remainder left by one and bring in dividend bit `step`.
        let mut shifted = Vec::with_capacity(width);
        shifted.push(dividend[step]);
        shifted.extend_from_slice(&remainder[..width - 1]);
        // Trial subtraction.
        let (diff, no_borrow) = sub_vectors(&mut aig, &shifted, &divisor);
        quotient[step] = no_borrow;
        remainder = (0..width)
            .map(|i| aig.mux(no_borrow, diff[i], shifted[i]))
            .collect();
    }
    for (i, q) in quotient.iter().enumerate() {
        aig.add_output(format!("q{i}"), *q);
    }
    for (i, r) in remainder.iter().enumerate() {
        aig.add_output(format!("r{i}"), *r);
    }
    aig
}

/// A restoring square root (`sqrt` analog) of a `2*width`-bit radicand,
/// producing a `width`-bit root.
pub fn restoring_sqrt(width: usize) -> Aig {
    let mut aig = Aig::new();
    let radicand = aig.add_inputs("x", 2 * width);
    let mut root = vec![Lit::FALSE; width];
    // Remainder wide enough to hold the partial radicand and trial value.
    let rem_width = width + 2;
    let mut remainder = vec![Lit::FALSE; rem_width];
    for step in (0..width).rev() {
        // Bring down the next two radicand bits.
        let mut shifted = Vec::with_capacity(rem_width);
        shifted.push(radicand[2 * step]);
        shifted.push(radicand[2 * step + 1]);
        shifted.extend_from_slice(&remainder[..rem_width - 2]);
        // Trial value: (root << 2) | 01  == 4*root + 1.
        let mut trial = vec![Lit::FALSE; rem_width];
        trial[0] = Lit::TRUE;
        for (i, &r) in root.iter().enumerate() {
            if i + 2 < rem_width {
                trial[i + 2] = r;
            }
        }
        let (diff, no_borrow) = sub_vectors(&mut aig, &shifted, &trial);
        remainder = (0..rem_width)
            .map(|i| aig.mux(no_borrow, diff[i], shifted[i]))
            .collect();
        // Shift the root and set the new bit.
        for i in (1..width).rev() {
            root[i] = root[i - 1];
        }
        root[0] = no_borrow;
    }
    for (i, r) in root.iter().enumerate() {
        aig.add_output(format!("root{i}"), *r);
    }
    aig
}

/// An unsigned maximum of two `width`-bit operands (`max` analog).
pub fn max_unit(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let (_, a_ge_b) = sub_vectors(&mut aig, &a, &b);
    for i in 0..width {
        let out = aig.mux(a_ge_b, a[i], b[i]);
        aig.add_output(format!("m{i}"), out);
    }
    aig.add_output("a_ge_b", a_ge_b);
    aig
}

/// A majority voter over `n` single-bit inputs (`voter` analog): the output
/// is 1 iff more than half of the inputs are 1.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn majority_voter(n: usize) -> Aig {
    assert!(n % 2 == 1 && n > 0, "voter needs an odd number of inputs");
    let mut aig = Aig::new();
    let xs = aig.add_inputs("v", n);
    // Count the ones with a chain of small adders, then compare against n/2.
    let bits = usize::BITS as usize - n.leading_zeros() as usize;
    let mut count = vec![Lit::FALSE; bits];
    for &x in &xs {
        // count = count + x (ripple increment).
        let mut carry = x;
        for c in count.iter_mut() {
            let sum = aig.xor(*c, carry);
            carry = aig.and(*c, carry);
            *c = sum;
        }
    }
    // majority iff count > n/2, i.e. count >= n/2 + 1.
    let threshold = n / 2 + 1;
    let threshold_bits: Vec<Lit> = (0..bits)
        .map(|i| {
            if (threshold >> i) & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect();
    let (_, count_ge_threshold) = sub_vectors(&mut aig, &count, &threshold_bits);
    aig.add_output("majority", count_ge_threshold);
    aig
}

/// A binary decoder (`dec` analog): `bits` select inputs, `2^bits` one-hot
/// outputs.
pub fn decoder(bits: usize) -> Aig {
    let mut aig = Aig::new();
    let sel = aig.add_inputs("s", bits);
    for value in 0..(1usize << bits) {
        let terms: Vec<Lit> = sel
            .iter()
            .enumerate()
            .map(|(i, &s)| if (value >> i) & 1 == 1 { s } else { !s })
            .collect();
        let out = aig.and_many(&terms);
        aig.add_output(format!("o{value}"), out);
    }
    aig
}

/// A priority encoder (`priority` analog): outputs the index of the highest
/// set request plus a `valid` flag.
pub fn priority_encoder(width: usize) -> Aig {
    let mut aig = Aig::new();
    let req = aig.add_inputs("r", width);
    let bits = (usize::BITS as usize - (width - 1).leading_zeros() as usize).max(1);
    // For every input i (from the highest priority, which is the highest
    // index, down), grant[i] = req[i] & !any_higher.
    let mut any_higher = Lit::FALSE;
    let mut grants = vec![Lit::FALSE; width];
    for i in (0..width).rev() {
        grants[i] = aig.and(req[i], !any_higher);
        any_higher = aig.or(any_higher, req[i]);
    }
    // Encode the one-hot grant vector.
    for b in 0..bits {
        let selected: Vec<Lit> = (0..width)
            .filter(|i| (i >> b) & 1 == 1)
            .map(|i| grants[i])
            .collect();
        let out = aig.or_many(&selected);
        aig.add_output(format!("idx{b}"), out);
    }
    aig.add_output("valid", any_higher);
    aig
}

/// A combinational round-robin arbiter (`arbiter` analog): `n` request
/// lines, a `log2(n)`-bit priority pointer, and `n` one-hot grant outputs.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn round_robin_arbiter(n: usize) -> Aig {
    assert!(n.is_power_of_two(), "arbiter size must be a power of two");
    let bits = n.trailing_zeros() as usize;
    let mut aig = Aig::new();
    let req = aig.add_inputs("r", n);
    let ptr = aig.add_inputs("p", bits);
    // ptr_is[k] = (pointer == k)
    let ptr_is: Vec<Lit> = (0..n)
        .map(|k| {
            let terms: Vec<Lit> = ptr
                .iter()
                .enumerate()
                .map(|(i, &p)| if (k >> i) & 1 == 1 { p } else { !p })
                .collect();
            aig.and_many(&terms)
        })
        .collect();
    // grant[i] = OR over start positions k of:
    //   ptr==k AND req[i] AND no request in the window k..i (circular).
    let mut grants = Vec::with_capacity(n);
    for i in 0..n {
        let mut cases = Vec::with_capacity(n);
        for (k, &ptr_k) in ptr_is.iter().enumerate() {
            // Requests strictly between k (inclusive) and i (exclusive),
            // walking circularly, must all be 0.
            let mut blockers = Vec::new();
            let mut j = k;
            while j != i {
                blockers.push(!req[j]);
                j = (j + 1) % n;
            }
            let free = aig.and_many(&blockers);
            let t = aig.and(ptr_k, req[i]);
            cases.push(aig.and(t, free));
        }
        grants.push(aig.or_many(&cases));
    }
    for (i, g) in grants.iter().enumerate() {
        aig.add_output(format!("g{i}"), *g);
    }
    aig
}

/// A crossbar router (`router` analog): `n` data inputs of `width` bits and
/// `n` select fields route data to `n` outputs.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn crossbar_router(n: usize, width: usize) -> Aig {
    assert!(n.is_power_of_two(), "router size must be a power of two");
    let sel_bits = n.trailing_zeros() as usize;
    let mut aig = Aig::new();
    let data: Vec<Vec<Lit>> = (0..n)
        .map(|i| aig.add_inputs(&format!("d{i}_"), width))
        .collect();
    let selects: Vec<Vec<Lit>> = (0..n)
        .map(|o| aig.add_inputs(&format!("sel{o}_"), sel_bits))
        .collect();
    for (o, select) in selects.iter().enumerate() {
        for b in 0..width {
            // Output o bit b = data[sel[o]][b].
            let mut cases = Vec::with_capacity(n);
            for (i, data_word) in data.iter().enumerate() {
                let match_terms: Vec<Lit> = select
                    .iter()
                    .enumerate()
                    .map(|(k, &s)| if (i >> k) & 1 == 1 { s } else { !s })
                    .collect();
                let is_sel = aig.and_many(&match_terms);
                cases.push(aig.and(is_sel, data_word[b]));
            }
            let out = aig.or_many(&cases);
            aig.add_output(format!("o{o}_{b}"), out);
        }
    }
    aig
}

/// Seeded random control logic (analog of `cavlc`, `ctrl`, `i2c`,
/// `int2float`, `mem_ctrl`, …): a layered random DAG of AND/OR/XOR/MUX
/// gates.
pub fn random_control(num_inputs: usize, num_gates: usize, num_outputs: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let inputs = aig.add_inputs("x", num_inputs);
    let mut pool: Vec<Lit> = inputs;
    for _ in 0..num_gates {
        let pick = |rng: &mut StdRng, pool: &[Lit]| {
            let lit = pool[rng.gen_range(0..pool.len())];
            if rng.gen_bool(0.3) {
                !lit
            } else {
                lit
            }
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let gate = match rng.gen_range(0..4) {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            2 => aig.xor(a, b),
            _ => {
                let c = pick(&mut rng, &pool);
                aig.mux(a, b, c)
            }
        };
        pool.push(gate);
    }
    for i in 0..num_outputs {
        // Prefer recently created gates as outputs so the logic is observable.
        let idx = pool.len() - 1 - (i % pool.len().min(num_gates.max(1)));
        aig.add_output(format!("y{i}"), pool[idx]);
    }
    aig
}

/// An iterated non-linear datapath standing in for `log2` / `sin`:
/// alternating multiply-and-add stages over a `width`-bit operand.
pub fn polynomial_datapath(width: usize, stages: usize) -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_inputs("x", width);
    let c = aig.add_inputs("c", width);
    let mut acc = x.clone();
    for _ in 0..stages {
        let prod = multiply_vectors(&mut aig, &acc, &x);
        let truncated: Vec<Lit> = prod[..width].to_vec();
        let sum = add_vectors(&mut aig, &truncated, &c);
        acc = sum[..width].to_vec();
    }
    for (i, bit) in acc.iter().enumerate() {
        aig.add_output(format!("y{i}"), *bit);
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(value: usize, width: usize) -> Vec<bool> {
        (0..width).map(|i| (value >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> usize {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | ((b as usize) << i))
    }

    #[test]
    fn adder_computes_sums() {
        let aig = ripple_carry_adder(4);
        for a in [0usize, 3, 9, 15] {
            for b in [0usize, 1, 7, 15] {
                let mut inputs = to_bits(a, 4);
                inputs.extend(to_bits(b, 4));
                let out = aig.evaluate(&inputs);
                assert_eq!(from_bits(&out), a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let aig = barrel_shifter(8);
        for value in [0b1011_0010usize, 0b0000_0001] {
            for shift in 0..8usize {
                let mut inputs = to_bits(value, 8);
                inputs.extend(to_bits(shift, 3));
                let out = aig.evaluate(&inputs);
                assert_eq!(
                    from_bits(&out),
                    (value << shift) & 0xFF,
                    "{value} << {shift}"
                );
            }
        }
    }

    #[test]
    fn multiplier_and_squarer() {
        let mult = array_multiplier(3);
        let sq = squarer(3);
        for a in 0..8usize {
            for b in 0..8usize {
                let mut inputs = to_bits(a, 3);
                inputs.extend(to_bits(b, 3));
                assert_eq!(from_bits(&mult.evaluate(&inputs)), a * b);
            }
            assert_eq!(from_bits(&sq.evaluate(&to_bits(a, 3))), a * a);
        }
    }

    #[test]
    fn hypotenuse_adds_squares() {
        let aig = hypotenuse(3);
        for a in 0..8usize {
            for b in 0..8usize {
                let mut inputs = to_bits(a, 3);
                inputs.extend(to_bits(b, 3));
                assert_eq!(from_bits(&aig.evaluate(&inputs)), a * a + b * b);
            }
        }
    }

    #[test]
    fn divider_quotient_and_remainder() {
        let aig = restoring_divider(4);
        for n in 0..16usize {
            for d in 1..16usize {
                let mut inputs = to_bits(n, 4);
                inputs.extend(to_bits(d, 4));
                let out = aig.evaluate(&inputs);
                let q = from_bits(&out[..4]);
                let r = from_bits(&out[4..]);
                assert_eq!(q, n / d, "{n} / {d}");
                assert_eq!(r, n % d, "{n} % {d}");
            }
        }
    }

    #[test]
    fn sqrt_is_integer_square_root() {
        let aig = restoring_sqrt(3);
        for x in 0..64usize {
            let out = aig.evaluate(&to_bits(x, 6));
            let root = from_bits(&out);
            assert!(
                root * root <= x && (root + 1) * (root + 1) > x,
                "sqrt({x}) = {root}"
            );
        }
    }

    #[test]
    fn max_selects_larger_operand() {
        let aig = max_unit(4);
        for a in [0usize, 5, 9, 15] {
            for b in [0usize, 2, 9, 14] {
                let mut inputs = to_bits(a, 4);
                inputs.extend(to_bits(b, 4));
                let out = aig.evaluate(&inputs);
                assert_eq!(from_bits(&out[..4]), a.max(b));
                assert_eq!(out[4], a >= b);
            }
        }
    }

    #[test]
    fn voter_majority() {
        let aig = majority_voter(5);
        for bits in 0..32usize {
            let inputs = to_bits(bits, 5);
            let ones = inputs.iter().filter(|&&b| b).count();
            assert_eq!(aig.evaluate(&inputs)[0], ones >= 3, "bits {bits:05b}");
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let aig = decoder(3);
        for v in 0..8usize {
            let out = aig.evaluate(&to_bits(v, 3));
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == v);
            }
        }
    }

    #[test]
    fn priority_encoder_picks_highest() {
        let aig = priority_encoder(8);
        for req in 0..256usize {
            let out = aig.evaluate(&to_bits(req, 8));
            let valid = *out.last().unwrap();
            assert_eq!(valid, req != 0);
            if req != 0 {
                let expected = 63 - (req as u64).leading_zeros() as usize;
                let idx = from_bits(&out[..3]);
                assert_eq!(idx, expected, "req {req:08b}");
            }
        }
    }

    #[test]
    fn arbiter_grants_one_requester() {
        let aig = round_robin_arbiter(4);
        for req in 0..16usize {
            for ptr in 0..4usize {
                let mut inputs = to_bits(req, 4);
                inputs.extend(to_bits(ptr, 2));
                let out = aig.evaluate(&inputs);
                let granted: Vec<usize> = out
                    .iter()
                    .enumerate()
                    .filter(|(_, &g)| g)
                    .map(|(i, _)| i)
                    .collect();
                if req == 0 {
                    assert!(granted.is_empty());
                } else {
                    assert_eq!(granted.len(), 1, "req {req:04b} ptr {ptr}");
                    let g = granted[0];
                    assert!((req >> g) & 1 == 1, "granted line must be requesting");
                    // No requester strictly between ptr and g (circularly).
                    let mut j = ptr;
                    while j != g {
                        assert_eq!((req >> j) & 1, 0, "requester {j} was skipped");
                        j = (j + 1) % 4;
                    }
                }
            }
        }
    }

    #[test]
    fn router_routes_selected_input() {
        let aig = crossbar_router(2, 3);
        // Inputs: d0 (3 bits), d1 (3 bits), sel0 (1 bit), sel1 (1 bit).
        for d0 in [0b101usize, 0b010] {
            for d1 in [0b111usize, 0b001] {
                for sel0 in 0..2usize {
                    for sel1 in 0..2usize {
                        let mut inputs = to_bits(d0, 3);
                        inputs.extend(to_bits(d1, 3));
                        inputs.push(sel0 == 1);
                        inputs.push(sel1 == 1);
                        let out = aig.evaluate(&inputs);
                        let o0 = from_bits(&out[..3]);
                        let o1 = from_bits(&out[3..]);
                        assert_eq!(o0, if sel0 == 0 { d0 } else { d1 });
                        assert_eq!(o1, if sel1 == 0 { d0 } else { d1 });
                    }
                }
            }
        }
    }

    #[test]
    fn random_control_is_deterministic() {
        let a = random_control(8, 50, 4, 7);
        let b = random_control(8, 50, 4, 7);
        assert_eq!(a.num_ands(), b.num_ands());
        assert_eq!(a.num_outputs(), 4);
        let c = random_control(8, 50, 4, 8);
        // Different seeds almost surely give different structure.
        assert!(a.num_ands() != c.num_ands() || a.evaluate(&[true; 8]) != c.evaluate(&[true; 8]));
    }

    #[test]
    fn polynomial_datapath_has_expected_interface() {
        let aig = polynomial_datapath(4, 2);
        assert_eq!(aig.num_inputs(), 8);
        assert_eq!(aig.num_outputs(), 4);
        // Reference check: y = ((x*x + c)*x + c) mod 16.
        for x in 0..16usize {
            for c in [0usize, 3, 7] {
                let mut inputs = to_bits(x, 4);
                inputs.extend(to_bits(c, 4));
                let out = aig.evaluate(&inputs);
                let stage1 = (x * x + c) & 0xF;
                let stage2 = (stage1 * x + c) & 0xF;
                assert_eq!(from_bits(&out), stage2);
            }
        }
    }
}
