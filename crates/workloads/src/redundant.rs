//! Functional-redundancy injection.
//!
//! SAT-sweeping only has work to do when a network contains functionally
//! equivalent but structurally different nodes.  Freshly generated,
//! structurally hashed AIGs contain very few of those, so the Table II
//! harness plants them deliberately: selected cones are re-expressed through
//! their cut truth table using a Shannon (multiplexer) decomposition — a
//! different structure computing the same function — and a share of the
//! original fanout is rewired to the duplicate.  Sweeping the result back to
//! the original size is exactly the task the HWMCC/IWLS benchmarks pose to
//! the paper's engine.

use netlist::cuts::{cut_truth_table, enumerate_cuts, CutParams};
use netlist::{Aig, AigNode, Lit, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use truthtable::TruthTable;

/// Rebuilds `aig` with functional redundancy injected.
///
/// Roughly `fraction` of the AND nodes (chosen pseudo-randomly from `seed`)
/// are duplicated as Shannon-decomposed re-implementations over one of their
/// cuts, and each fanout edge of a duplicated node is redirected to the
/// duplicate with probability one half.  The returned network is
/// functionally equivalent to the input (the crate's tests verify this by
/// exhaustive/random simulation) but strictly larger, and contains pairs of
/// provably equivalent nodes for a SAT sweeper to merge.
pub fn inject_redundancy(aig: &Aig, fraction: f64, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let cut_sets = enumerate_cuts(
        aig,
        CutParams {
            max_leaves: 6,
            max_cuts: 6,
        },
    );

    let mut out = Aig::new();
    // Map from original node to the literal to use for "original" references
    // and optionally an alternative (duplicate) literal.
    let mut primary: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    let mut duplicate: Vec<Option<Lit>> = vec![None; aig.num_nodes()];

    for (pos, &input) in aig.inputs().iter().enumerate() {
        primary[input] = out.add_input(aig.input_name(pos).to_string());
    }

    let resolve = |node: NodeId,
                   complemented: bool,
                   rng: &mut StdRng,
                   duplicate: &[Option<Lit>],
                   primary: &[Lit]| {
        let base = match duplicate[node] {
            Some(dup) if rng.gen_bool(0.5) => dup,
            _ => primary[node],
        };
        base.complement_if(complemented)
    };

    for id in aig.node_ids() {
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            let f0 = resolve(
                fanin0.node(),
                fanin0.is_complemented(),
                &mut rng,
                &duplicate,
                &primary,
            );
            let f1 = resolve(
                fanin1.node(),
                fanin1.is_complemented(),
                &mut rng,
                &duplicate,
                &primary,
            );
            let lit = out.and(f0, f1);
            primary[id] = lit;

            // Decide whether to plant a duplicate of this node.
            if !rng.gen_bool(fraction) {
                continue;
            }
            // Pick the largest cut with at least three leaves, if any.
            let Some(cut) = cut_sets[id]
                .cuts()
                .iter()
                .filter(|c| c.size() >= 3)
                .max_by_key(|c| c.size())
            else {
                continue;
            };
            let table = cut_truth_table(aig, id, cut);
            let leaf_lits: Vec<Lit> = cut.leaves().iter().map(|&leaf| primary[leaf]).collect();
            let dup = synthesize_shannon(&mut out, &table, &leaf_lits);
            // Only keep duplicates that are structurally distinct (hashing
            // may collapse trivial cases back onto the original).
            if dup.node() != lit.node() {
                duplicate[id] = Some(dup);
            }
        }
    }

    for output in aig.outputs() {
        let lit = resolve(
            output.lit.node(),
            output.lit.is_complemented(),
            &mut rng,
            &duplicate,
            &primary,
        );
        out.add_output(output.name.clone(), lit);
    }
    out
}

/// Synthesises a truth table as a Shannon (multiplexer) tree over the given
/// leaf literals: structurally very different from the AND/OR form the
/// generators produce, but functionally identical.
pub fn synthesize_shannon(aig: &mut Aig, table: &TruthTable, leaves: &[Lit]) -> Lit {
    assert_eq!(
        table.num_vars(),
        leaves.len(),
        "one leaf literal per truth table variable"
    );
    shannon_rec(aig, table, leaves, table.num_vars())
}

fn shannon_rec(aig: &mut Aig, table: &TruthTable, leaves: &[Lit], vars_left: usize) -> Lit {
    if table.is_const0() {
        return Lit::FALSE;
    }
    if table.is_const1() {
        return Lit::TRUE;
    }
    // Split on the highest remaining variable.
    let var = vars_left - 1;
    let hi = table.cofactor1(var);
    let lo = table.cofactor0(var);
    let hi_lit = shannon_rec(aig, &hi, leaves, vars_left - 1);
    let lo_lit = shannon_rec(aig, &lo, leaves, vars_left - 1);
    aig.mux(leaves[var], hi_lit, lo_lit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use bitsim::{AigSimulator, PatternSet};

    fn assert_equivalent_by_simulation(a: &Aig, b: &Aig, patterns: usize, seed: u64) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_outputs(), b.num_outputs());
        let p = PatternSet::random(a.num_inputs(), patterns, seed).unwrap();
        let sa = AigSimulator::new(a).run(&p);
        let sb = AigSimulator::new(b).run(&p);
        for o in 0..a.num_outputs() {
            assert_eq!(
                sa.output_signature(a, o),
                sb.output_signature(b, o),
                "output {o} differs"
            );
        }
    }

    #[test]
    fn shannon_synthesis_matches_table() {
        let mut aig = Aig::new();
        let leaves = aig.add_inputs("x", 4);
        let table = TruthTable::from_hex(4, "ca53").unwrap();
        let lit = synthesize_shannon(&mut aig, &table, &leaves);
        aig.add_output("f", lit);
        for i in 0..16usize {
            let assignment: Vec<bool> = (0..4).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(
                aig.evaluate(&assignment)[0],
                table.get_bit(i),
                "minterm {i}"
            );
        }
    }

    #[test]
    fn injection_preserves_function_and_adds_gates() {
        let base = generators::ripple_carry_adder(6);
        let redundant = inject_redundancy(&base, 0.4, 11);
        assert!(redundant.num_ands() > base.num_ands());
        assert_equivalent_by_simulation(&base, &redundant, 512, 1);
    }

    #[test]
    fn injection_is_deterministic() {
        let base = generators::array_multiplier(3);
        let a = inject_redundancy(&base, 0.3, 5);
        let b = inject_redundancy(&base, 0.3, 5);
        assert_eq!(a.num_ands(), b.num_ands());
    }

    #[test]
    fn zero_fraction_changes_nothing_functionally() {
        let base = generators::priority_encoder(8);
        let same = inject_redundancy(&base, 0.0, 3);
        assert_eq!(same.num_ands(), base.num_ands());
        assert_equivalent_by_simulation(&base, &same, 256, 2);
    }

    #[test]
    fn injection_on_control_logic() {
        let base = generators::random_control(10, 80, 6, 23);
        let redundant = inject_redundancy(&base, 0.5, 23);
        assert_equivalent_by_simulation(&base, &redundant, 512, 3);
    }
}
