//! The HWMCC'15 / IWLS'05-analog suite used by the Table II harness.
//!
//! Table II of the paper runs the SAT sweepers on a selection of
//! model-checking (HWMCC'15 `6s*`, `beem*`, `oski*`) and synthesis
//! (IWLS'05 `b18`, `b19`, `leon2`) designs.  The sweepers only see the
//! combinational logic of those designs, and the property that matters for
//! the experiment is the presence of functionally equivalent, structurally
//! distinct internal nodes.  Each analog here therefore combines a base
//! circuit of the matching family (control-dominated, arithmetic, or mixed)
//! with [`inject_redundancy`], so that sweeping has a realistic amount of
//! provable merges and disprovable candidates.

use crate::generators as gen;
use crate::redundant::inject_redundancy;
use crate::Scale;
use netlist::Aig;

/// One named sweeping benchmark.
#[derive(Debug, Clone)]
pub struct SweepBenchmark {
    /// The Table II design this analog stands in for.
    pub name: &'static str,
    /// The generated network, with redundancy already injected.
    pub aig: Aig,
    /// The same network before redundancy injection (the size a perfect
    /// sweeper would recover).
    pub baseline_gates: usize,
}

fn build(name: &'static str, base: Aig, fraction: f64, seed: u64) -> SweepBenchmark {
    let baseline_gates = base.num_ands();
    let aig = inject_redundancy(&base, fraction, seed);
    SweepBenchmark {
        name,
        aig,
        baseline_gates,
    }
}

/// Generates the 15-circuit Table II analog suite at the given scale.
pub fn hwmcc_suite(scale: Scale) -> Vec<SweepBenchmark> {
    let f = scale.factor();
    vec![
        build(
            "6s100",
            gen::random_control(24, 500 * f, 40, 0x6100),
            0.25,
            1,
        ),
        build("6s20", gen::polynomial_datapath(4 * f, 3), 0.30, 2),
        build(
            "6s203b41",
            gen::random_control(32, 420 * f, 32, 0x6203),
            0.25,
            3,
        ),
        build("6s281b35", gen::hypotenuse(4 * f), 0.35, 4),
        build(
            "6s342rb122",
            gen::random_control(20, 300 * f, 24, 0x6342),
            0.20,
            5,
        ),
        build(
            "6s350rb46",
            gen::random_control(28, 550 * f, 36, 0x6350),
            0.20,
            6,
        ),
        build("6s382r", gen::restoring_divider(5 * f), 0.30, 7),
        build("6s392r", gen::array_multiplier(4 * f), 0.30, 8),
        build("beemfwt4b1", gen::barrel_shifter(8 * f), 0.40, 9),
        build("beemfwt5b3", gen::max_unit(12 * f), 0.40, 10),
        build("oski15a07b0s", gen::priority_encoder(24 * f), 0.45, 11),
        build("oski2b1i", gen::restoring_sqrt(4 * f), 0.45, 12),
        build("b18", gen::random_control(18, 350 * f, 20, 0xB18), 0.30, 13),
        build("b19", gen::random_control(22, 700 * f, 24, 0xB19), 0.30, 14),
        build("leon2", gen::ripple_carry_adder(24 * f), 0.35, 15),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitsim::{AigSimulator, PatternSet};

    #[test]
    fn suite_has_fifteen_benchmarks_with_planted_redundancy() {
        let suite = hwmcc_suite(Scale::Tiny);
        assert_eq!(suite.len(), 15);
        let mut grew = 0;
        for bench in &suite {
            assert!(bench.aig.num_ands() > 0, "{} is empty", bench.name);
            if bench.aig.num_ands() > bench.baseline_gates {
                grew += 1;
            }
        }
        // The vast majority of the circuits must actually contain extra
        // (redundant) gates for sweeping to remove.
        assert!(grew >= 12, "only {grew} circuits grew after injection");
    }

    #[test]
    fn names_match_table2_rows() {
        let suite = hwmcc_suite(Scale::Tiny);
        let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        for expected in [
            "6s100",
            "6s281b35",
            "beemfwt5b3",
            "oski2b1i",
            "b19",
            "leon2",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn redundant_circuits_keep_their_function() {
        // Spot-check a few entries against their base generators by random
        // simulation (full CEC is exercised in the integration tests).
        let scale = Scale::Tiny;
        let f = scale.factor();
        let pairs: Vec<(Aig, Aig)> = vec![
            (
                gen::polynomial_datapath(4 * f, 3),
                hwmcc_suite(scale)[1].aig.clone(),
            ),
            (
                gen::barrel_shifter(8 * f),
                hwmcc_suite(scale)[8].aig.clone(),
            ),
        ];
        for (base, redundant) in pairs {
            let patterns = PatternSet::random(base.num_inputs(), 256, 99).unwrap();
            let a = AigSimulator::new(&base).run(&patterns);
            let b = AigSimulator::new(&redundant).run(&patterns);
            for o in 0..base.num_outputs() {
                assert_eq!(
                    a.output_signature(&base, o),
                    b.output_signature(&redundant, o)
                );
            }
        }
    }
}
