//! Sequential workloads with planted latch equivalences.
//!
//! The sequential sweeping engine is measured and differentially tested on
//! circuits whose redundancy is *known by construction*:
//!
//! * [`random_sequential_aig`] — a seeded random machine whose latches have
//!   **independent** next-state cones (each cone reads only the primary
//!   inputs and that latch's own state).  Independence matters: a planted
//!   duplicate of such a latch is provable by k-step induction *on its
//!   own*, without assuming any other pair equal — which is exactly the
//!   per-candidate proof obligation the engine discharges.
//! * [`with_duplicate_latches`] — plants duplicate latches (every other one
//!   complemented, with flipped initial value and negated next-state cone)
//!   plus one reachable-constant latch, and records the expected merges.
//! * [`sequential_miter`] — the product machine of two networks over shared
//!   primary inputs; for two copies of the same machine every latch pair
//!   `(l, n + l)` is a planted equivalence.
//! * [`flip_and_input`] — the differential battery's seeded mutation: one
//!   AND gate's input polarity flipped.  A sound oracle must reject the
//!   mutant against the original.

use netlist::{Aig, AigNode, LatchInit, Lit, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A sequential netlist together with its planted redundancy.
#[derive(Debug, Clone)]
pub struct SequentialWorkload {
    /// The netlist.
    pub aig: Aig,
    /// Planted equivalent latch pairs `(duplicate, original, complemented)`
    /// — latch indices into [`Aig::latches`].
    pub equivalent_pairs: Vec<(usize, usize, bool)>,
    /// Latches that hold a constant value in every reachable state.
    pub constant_latches: Vec<usize>,
}

/// A seeded random sequential machine: `num_latches` latches whose
/// next-state cones each read only the primary inputs and the latch's own
/// state (`gates_per_latch` random AND/OR/XOR gates per cone), plus two
/// observability outputs — the parity of all latch states and a random mix
/// of states and inputs — so every latch is visible to an output-based
/// equivalence oracle.
///
/// With `allow_x_init` the initial values are drawn from {0, 1, X},
/// otherwise from {0, 1}.
///
/// # Panics
///
/// Panics if `num_inputs` or `num_latches` is zero.
pub fn random_sequential_aig(
    num_inputs: usize,
    num_latches: usize,
    gates_per_latch: usize,
    allow_x_init: bool,
    seed: u64,
) -> Aig {
    assert!(num_inputs > 0, "at least one primary input");
    assert!(num_latches > 0, "at least one latch");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let pis = aig.add_inputs("x", num_inputs);
    let states: Vec<Lit> = (0..num_latches)
        .map(|l| {
            let init = match rng.gen_range(0..if allow_x_init { 4 } else { 3 }) {
                0 | 1 => LatchInit::Zero,
                2 => LatchInit::One,
                _ => LatchInit::X,
            };
            aig.add_latch(format!("q{l}"), init)
        })
        .collect();
    for (l, &state) in states.iter().enumerate() {
        let mut pool: Vec<Lit> = pis.clone();
        pool.push(state);
        for _ in 0..gates_per_latch {
            let pick = |rng: &mut StdRng, pool: &[Lit]| {
                let lit = pool[rng.gen_range(0..pool.len())];
                if rng.gen_bool(0.3) {
                    !lit
                } else {
                    lit
                }
            };
            let a = pick(&mut rng, &pool);
            let b = pick(&mut rng, &pool);
            let gate = match rng.gen_range(0..3) {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            pool.push(gate);
        }
        let next = *pool.last().expect("pool is never empty");
        aig.set_latch_next(l, next);
    }
    // Observability: any state divergence reaches a real primary output.
    let parity = states.iter().fold(Lit::FALSE, |acc, &s| aig.xor(acc, s));
    aig.add_output("parity", parity);
    let mut mix = Lit::TRUE;
    for &s in &states {
        let x = pis[rng.gen_range(0..pis.len())];
        let t = aig.or(s, x);
        mix = aig.and(mix, t);
    }
    aig.add_output("mix", mix);
    aig
}

/// Copies the cone of `root` inside `aig`, substituting the node
/// `substitute.0` by the literal `substitute.1` (memoised; inputs and
/// constants map to themselves).
fn copy_cone(aig: &mut Aig, root: Lit, substitute: (NodeId, Lit)) -> Lit {
    fn go(
        aig: &mut Aig,
        node: NodeId,
        substitute: (NodeId, Lit),
        memo: &mut HashMap<NodeId, Lit>,
    ) -> Lit {
        if node == substitute.0 {
            return substitute.1;
        }
        if let Some(&lit) = memo.get(&node) {
            return lit;
        }
        let lit = match aig.node(node).clone() {
            AigNode::Const0 => Lit::FALSE,
            AigNode::Input { .. } => Lit::positive(node),
            AigNode::And { fanin0, fanin1 } => {
                let f0 = go(aig, fanin0.node(), substitute, memo)
                    .complement_if(fanin0.is_complemented());
                let f1 = go(aig, fanin1.node(), substitute, memo)
                    .complement_if(fanin1.is_complemented());
                aig.and(f0, f1)
            }
        };
        memo.insert(node, lit);
        lit
    }
    let mut memo = HashMap::new();
    go(aig, root.node(), substitute, &mut memo).complement_if(root.is_complemented())
}

fn flipped_init(init: LatchInit) -> LatchInit {
    match init {
        LatchInit::Zero => LatchInit::One,
        LatchInit::One => LatchInit::Zero,
        LatchInit::X => LatchInit::X,
    }
}

/// Plants duplicates of the first `num_dups` concretely-initialised latches
/// of `base` — every other duplicate complemented (flipped initial value,
/// next-state cone rebuilt over the negated duplicate state and negated) —
/// plus one latch that provably holds 0 in every reachable state.  A parity
/// output over the planted latches keeps them observable.
///
/// Returns the workload with the expected latch merges: each duplicate pair
/// individually provable by 1-step induction (the duplicate's cone differs
/// from the original's only in the substituted state variable), and the
/// constant latch discoverable by ternary fixpoint analysis alone.
pub fn with_duplicate_latches(base: &Aig, num_dups: usize) -> SequentialWorkload {
    let mut aig = base.clone();
    let mut equivalent_pairs = Vec::new();
    let mut planted_states = Vec::new();
    let originals: Vec<usize> = (0..base.num_latches())
        .filter(|&l| base.latches()[l].init != LatchInit::X)
        .take(num_dups)
        .collect();
    for (i, &r) in originals.iter().enumerate() {
        let complemented = i % 2 == 1;
        let latch = aig.latches()[r];
        let init = if complemented {
            flipped_init(latch.init)
        } else {
            latch.init
        };
        let r_state = aig.latch_state_lit(r);
        let r_next = aig.outputs()[latch.next_output].lit;
        let name = format!("{}_dup", aig.input_name(latch.state_input));
        let t_state = aig.add_latch(name, init);
        let t_index = aig.num_latches() - 1;
        // Invariant `t == r ^ complemented`, so references to `r`'s state
        // inside the copied cone become `t ^ complemented`, and the whole
        // next-state function is complemented back.
        let substitute = (r_state.node(), t_state.complement_if(complemented));
        let copied = copy_cone(&mut aig, r_next, substitute);
        aig.set_latch_next(t_index, copied.complement_if(complemented));
        equivalent_pairs.push((t_index, r, complemented));
        planted_states.push(t_state);
    }
    // A latch that never leaves its 0 initial value: next = state AND pi0.
    let k_state = aig.add_latch("kconst", LatchInit::Zero);
    let k_index = aig.num_latches() - 1;
    let pi0 = Lit::positive(aig.inputs()[0]);
    let k_next = aig.and(k_state, pi0);
    aig.set_latch_next(k_index, k_next);
    planted_states.push(k_state);
    // Observability for every planted latch.
    let parity = planted_states
        .iter()
        .fold(Lit::FALSE, |acc, &s| aig.xor(acc, s));
    aig.add_output("planted_parity", parity);
    SequentialWorkload {
        aig,
        equivalent_pairs,
        constant_latches: vec![k_index],
    }
}

/// The product machine of `a` and `b` over shared primary inputs (matched
/// by position among the non-latch inputs): one netlist holding both
/// networks' latches and real outputs.  For `b` equal to `a` up to
/// renaming, every latch pair `(l, a.num_latches() + l)` is a planted
/// equivalence.
///
/// # Panics
///
/// Panics if the networks disagree in their number of real primary inputs.
pub fn sequential_miter(a: &Aig, b: &Aig) -> Aig {
    let real_pis = |net: &Aig| -> Vec<usize> {
        (0..net.num_inputs())
            .filter(|&p| net.latch_of_input(p).is_none())
            .collect()
    };
    let a_pis = real_pis(a);
    let b_pis = real_pis(b);
    assert_eq!(
        a_pis.len(),
        b_pis.len(),
        "the networks disagree in their number of real primary inputs"
    );
    let mut miter = Aig::new();
    let shared: Vec<Lit> = a_pis
        .iter()
        .map(|&p| miter.add_input(a.input_name(p)))
        .collect();
    let append_net = |miter: &mut Aig, net: &Aig, pis: &[usize], tag: &str| {
        // Latch states become fresh inputs, everything else maps to the
        // shared primary inputs.
        let mut input_map = vec![Lit::FALSE; net.num_inputs()];
        for (&p, &lit) in pis.iter().zip(&shared) {
            input_map[p] = lit;
        }
        let mut state_positions = Vec::with_capacity(net.num_latches());
        for latch in net.latches() {
            let name = format!("{}{tag}", net.input_name(latch.state_input));
            state_positions.push(miter.num_inputs());
            input_map[latch.state_input] = miter.add_input(name);
        }
        let outs = miter.append(net, &input_map);
        let next_of_output: HashMap<usize, usize> = net
            .latches()
            .iter()
            .enumerate()
            .map(|(l, latch)| (latch.next_output, l))
            .collect();
        let mut latch_defs = Vec::with_capacity(net.num_latches());
        for (i, out) in net.outputs().iter().enumerate() {
            let position = miter.num_outputs();
            miter.add_output(format!("{}{tag}", out.name), outs[i]);
            if let Some(&l) = next_of_output.get(&i) {
                latch_defs.push((l, position));
            }
        }
        for (l, output_position) in latch_defs {
            miter.define_latch(state_positions[l], output_position, net.latches()[l].init);
        }
    };
    append_net(&mut miter, a, &a_pis, "");
    append_net(&mut miter, b, &b_pis, "_b");
    miter
}

/// Rebuilds `aig` with the first-input polarity of one AND gate flipped —
/// the gate is the `seed % num_ands`-th AND in topological order.  Input,
/// output and latch positions are preserved.  Returns `None` when the
/// network has no AND gates.
pub fn flip_and_input(aig: &Aig, seed: u64) -> Option<Aig> {
    let ands: Vec<NodeId> = aig.and_ids().collect();
    if ands.is_empty() {
        return None;
    }
    let victim = ands[(seed % ands.len() as u64) as usize];
    let mut mutant = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (position, &node) in aig.inputs().iter().enumerate() {
        map[node] = mutant.add_input(aig.input_name(position));
    }
    for id in aig.node_ids() {
        let AigNode::And { fanin0, fanin1 } = aig.node(id).clone() else {
            continue;
        };
        let mut f0 = map[fanin0.node()].complement_if(fanin0.is_complemented());
        let f1 = map[fanin1.node()].complement_if(fanin1.is_complemented());
        if id == victim {
            f0 = !f0;
        }
        map[id] = mutant.and(f0, f1);
    }
    for out in aig.outputs() {
        let lit = map[out.lit.node()].complement_if(out.lit.is_complemented());
        mutant.add_output(out.name.clone(), lit);
    }
    for latch in aig.latches() {
        mutant.define_latch(latch.state_input, latch.next_output, latch.init);
    }
    Some(mutant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sequential_is_deterministic_and_observable() {
        let a = random_sequential_aig(4, 6, 5, false, 11);
        let b = random_sequential_aig(4, 6, 5, false, 11);
        assert_eq!(a.num_ands(), b.num_ands());
        assert_eq!(a.num_latches(), 6);
        // 4 PIs + 6 latch states; 2 observability outputs + 6 next-states.
        assert_eq!(a.num_inputs(), 10);
        assert_eq!(a.num_outputs(), 8);
        assert!(a.latches().iter().all(|l| l.init != LatchInit::X));
        let c = random_sequential_aig(4, 6, 5, true, 13);
        assert_eq!(c.num_latches(), 6);
    }

    #[test]
    fn duplicates_simulate_in_lockstep_with_their_originals() {
        let base = random_sequential_aig(3, 4, 4, false, 5);
        let workload = with_duplicate_latches(&base, 3);
        let aig = &workload.aig;
        assert_eq!(workload.equivalent_pairs.len(), 3);
        assert_eq!(aig.num_latches(), base.num_latches() + 3 + 1);
        // Walk a few concrete steps: the duplicate state must track the
        // original (complemented as planted) and the constant latch must
        // stay 0.
        let latches = aig.latches();
        let mut state: Vec<bool> = latches.iter().map(|l| l.init == LatchInit::One).collect();
        let mut inputs = vec![false; aig.num_inputs()];
        for step in 0..8 {
            for (p, v) in inputs.iter_mut().enumerate() {
                if aig.latch_of_input(p).is_none() {
                    *v = (step * 31 + p * 7) % 3 == 0;
                }
            }
            for (l, latch) in latches.iter().enumerate() {
                inputs[latch.state_input] = state[l];
            }
            let outputs = aig.evaluate(&inputs);
            for &(dup, orig, complemented) in &workload.equivalent_pairs {
                assert_eq!(
                    state[dup],
                    state[orig] ^ complemented,
                    "step {step}: duplicate {dup} diverged from {orig}"
                );
            }
            for &k in &workload.constant_latches {
                assert!(!state[k], "step {step}: constant latch {k} left 0");
            }
            state = latches
                .iter()
                .map(|latch| outputs[latch.next_output])
                .collect();
        }
    }

    #[test]
    fn miter_of_a_machine_with_itself_pairs_every_latch() {
        let base = random_sequential_aig(3, 4, 4, false, 9);
        let miter = sequential_miter(&base, &base);
        assert_eq!(miter.num_latches(), 2 * base.num_latches());
        let real_pis = (0..miter.num_inputs())
            .filter(|&p| miter.latch_of_input(p).is_none())
            .count();
        assert_eq!(real_pis, 3);
        // Both copies' initial values agree pairwise.
        for l in 0..base.num_latches() {
            assert_eq!(
                miter.latches()[l].init,
                miter.latches()[base.num_latches() + l].init
            );
        }
    }

    #[test]
    fn flipping_an_and_input_changes_the_function() {
        let base = random_sequential_aig(3, 4, 4, false, 21);
        let mutant = flip_and_input(&base, 0).expect("the machine has AND gates");
        assert_eq!(mutant.num_inputs(), base.num_inputs());
        assert_eq!(mutant.num_outputs(), base.num_outputs());
        assert_eq!(mutant.num_latches(), base.num_latches());
        // Same latch positions and initial values.
        assert_eq!(mutant.latches(), base.latches());
    }
}
