//! Criterion bench for the ablation study: how the STP sweeper's runtime
//! responds to disabling the paper's individual design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stp_sweep::{Engine, SweepConfig, Sweeper};
use workloads::{hwmcc_suite, Scale};

fn ablation_benches(c: &mut Criterion) {
    let suite = hwmcc_suite(Scale::Tiny);
    let bench_circuit = suite
        .iter()
        .find(|b| b.name == "oski15a07b0s")
        .expect("benchmark exists");
    let base = SweepConfig {
        num_initial_patterns: 128,
        ..SweepConfig::default()
    };
    let variants = [
        ("full", base),
        (
            "no_window_refinement",
            SweepConfig {
                window_refinement: false,
                ..base
            },
        ),
        (
            "no_sat_guided_patterns",
            SweepConfig {
                sat_guided_patterns: false,
                ..base
            },
        ),
        (
            "window_limit_6",
            SweepConfig {
                window_limit: 6,
                ..base
            },
        ),
    ];

    let mut group = c.benchmark_group("ablation_sweeper");
    for (name, config) in variants {
        group.bench_with_input(
            BenchmarkId::new(name, bench_circuit.name),
            &bench_circuit.aig,
            |b, aig| {
                b.iter(|| {
                    Sweeper::new(Engine::Stp)
                        .config(config)
                        .run(aig)
                        .expect("valid config")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_benches
}
criterion_main!(benches);
