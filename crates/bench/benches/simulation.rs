//! Criterion bench for Table I: bitwise baseline vs. STP simulation of AIGs
//! and 6-LUT networks on a fixed subset of the EPFL-analog suite.

use bitsim::{AigSimulator, LutSimulator, PatternSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netlist::lutmap;
use stp_sweep::stp_sim::StpSimulator;
use workloads::{epfl_suite, Scale};

const NUM_PATTERNS: usize = 1024;
const SELECTED: &[&str] = &["adder", "bar", "max", "multiplier", "priority", "voter"];

fn simulation_benches(c: &mut Criterion) {
    let suite = epfl_suite(Scale::Tiny);
    let mut group = c.benchmark_group("table1_simulation");
    for bench in suite.iter().filter(|b| SELECTED.contains(&b.name)) {
        let aig = &bench.aig;
        let patterns = PatternSet::random(aig.num_inputs(), NUM_PATTERNS, 0xEB5).unwrap();
        let lut6 = lutmap::map_to_luts(aig, 6);
        let lut2 = lutmap::map_to_luts(aig, 2);

        group.bench_with_input(
            BenchmarkId::new("TA_bitwise", bench.name),
            &patterns,
            |b, p| {
                let sim = AigSimulator::new(aig);
                b.iter(|| sim.run(p));
            },
        );
        group.bench_with_input(BenchmarkId::new("TA_stp", bench.name), &patterns, |b, p| {
            let sim = StpSimulator::new(&lut2);
            b.iter(|| sim.simulate_all(p));
        });
        group.bench_with_input(
            BenchmarkId::new("TL_bitwise", bench.name),
            &patterns,
            |b, p| {
                let sim = LutSimulator::new(&lut6);
                b.iter(|| sim.run(p));
            },
        );
        group.bench_with_input(BenchmarkId::new("TL_stp", bench.name), &patterns, |b, p| {
            let sim = StpSimulator::new(&lut6);
            b.iter(|| sim.simulate_all(p));
        });
    }
    group.finish();

    // Level-scheduled parallel evaluation vs. sequential, on the largest
    // selected benchmarks with a wider pattern set (more words per level).
    let mut group = c.benchmark_group("table1_parallel_simulation");
    for bench in suite
        .iter()
        .filter(|b| b.name == "multiplier" || b.name == "voter")
    {
        let aig = &bench.aig;
        let patterns = PatternSet::random(aig.num_inputs(), 16 * NUM_PATTERNS, 0xEB5).unwrap();
        let lut6 = lutmap::map_to_luts(aig, 6);
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("TA_bitwise_t{threads}"), bench.name),
                &patterns,
                |b, p| {
                    let sim = AigSimulator::new(aig);
                    b.iter(|| sim.run_parallel(p, threads));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("TL_stp_t{threads}"), bench.name),
                &patterns,
                |b, p| {
                    let sim = StpSimulator::new(&lut6);
                    b.iter(|| sim.simulate_all_parallel(p, threads));
                },
            );
        }
    }
    group.finish();

    // Specified-node simulation (the cut algorithm) vs. simulating everything.
    let mut group = c.benchmark_group("table1_specified_nodes");
    for bench in suite
        .iter()
        .filter(|b| b.name == "multiplier" || b.name == "voter")
    {
        let lut6 = lutmap::map_to_luts(&bench.aig, 6);
        let patterns = PatternSet::random(bench.aig.num_inputs(), 256, 0x51).unwrap();
        let sim = StpSimulator::new(&lut6);
        let targets: Vec<_> = lut6.lut_ids().take(4).collect();
        group.bench_with_input(
            BenchmarkId::new("all_nodes", bench.name),
            &patterns,
            |b, p| {
                b.iter(|| sim.simulate_all(p));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("specified_nodes", bench.name),
            &patterns,
            |b, p| {
                b.iter(|| sim.simulate_nodes(p, &targets));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = simulation_benches
}
criterion_main!(benches);
