//! Criterion bench for Table II: the baseline FRAIG-style sweeper vs. the
//! STP sweeper on a fixed subset of the HWMCC/IWLS-analog suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stp_sweep::{Engine, SweepConfig, Sweeper};
use workloads::{hwmcc_suite, Scale};

const SELECTED: &[&str] = &["6s20", "beemfwt4b1", "oski15a07b0s", "b18"];

fn sweeping_benches(c: &mut Criterion) {
    let suite = hwmcc_suite(Scale::Tiny);
    let baseline_config = SweepConfig {
        num_initial_patterns: 128,
        ..SweepConfig::baseline()
    };
    let stp_config = SweepConfig {
        num_initial_patterns: 128,
        ..SweepConfig::default()
    };

    let mut group = c.benchmark_group("table2_sweeping");
    for bench in suite.iter().filter(|b| SELECTED.contains(&b.name)) {
        group.bench_with_input(
            BenchmarkId::new("fraig_baseline", bench.name),
            &bench.aig,
            |b, aig| {
                b.iter(|| {
                    Sweeper::new(Engine::Baseline)
                        .config(baseline_config)
                        .run(aig)
                        .expect("valid config")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stp_sweeper", bench.name),
            &bench.aig,
            |b, aig| {
                b.iter(|| {
                    Sweeper::new(Engine::Stp)
                        .config(stp_config)
                        .run(aig)
                        .expect("valid config")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sweeping_benches
}
criterion_main!(benches);
