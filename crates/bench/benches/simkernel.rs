//! Microbench for the locality-first simulation core: the struct-of-arrays
//! [`SignatureArena`] with blocked kernels and cost-modeled work stealing
//! against the previous layout (one heap `Vec<u64>` per node, words-outer /
//! minterm-inner evaluation).
//!
//! The `pernode_old` benches reimplement the pre-arena level evaluator
//! faithfully — per-node output buffers allocated per level via
//! [`parallel::evaluate_level`], fanins read through owned [`Signature`]s,
//! minterms expanded in the innermost loop — so the `arena_steal` /
//! `pernode_old` ratio measures exactly what the refactor bought.  The
//! kernel flavour baked into this build (scalar autovectorized or the
//! `simd` feature's lane-widened path) is part of the benchmark name, so
//! runs of both feature legs can be compared side by side.

use bitsim::{kernels, parallel, PatternSet, Signature, SignatureArena};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use truthtable::TruthTable;

const KERNEL_FLAVOUR: &str = if cfg!(feature = "simd") {
    "simd"
} else {
    "scalar"
};

/// Words processed per stack block, mirroring the simulator's narrow path.
const BLOCK_WORDS: usize = 64;

/// A synthetic one-level skewed-LUT workload: `num_narrow` 2-input LUTs and
/// `num_wide` 6-input LUTs, all reading from `num_pis` shared inputs.  The
/// 16× per-word cost gap between the two LUT kinds is the skew that even
/// word-range splitting balances poorly and the cost model targets.
struct SkewedLevel {
    fanins: Vec<Vec<usize>>,
    functions: Vec<TruthTable>,
    costs: Vec<u64>,
}

fn skewed_level(num_pis: usize, num_narrow: usize, num_wide: usize, seed: u64) -> SkewedLevel {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut fanins = Vec::new();
    let mut functions = Vec::new();
    let mut costs = Vec::new();
    for i in 0..num_narrow + num_wide {
        let k = if i < num_narrow { 2 } else { 6 };
        fanins.push((0..k).map(|_| next() as usize % num_pis).collect());
        let words: Vec<u64> = (0..(1usize << k).div_ceil(64).max(1))
            .map(|_| next())
            .collect();
        functions.push(TruthTable::from_words(k, &words));
        costs.push(1u64 << k);
    }
    SkewedLevel {
        fanins,
        functions,
        costs,
    }
}

/// The pre-arena kernel: words-outer, minterm-inner, one fanin word load
/// per (word, minterm, fanin) triple.
fn old_kernel_eval(
    fanins: &[usize],
    function: &TruthTable,
    inputs: &[Signature],
    word_lo: usize,
    out: &mut [u64],
) {
    for (o, w) in out.iter_mut().zip(word_lo..) {
        let mut acc = 0u64;
        for m in 0..function.num_bits() {
            if !function.get_bit(m) {
                continue;
            }
            let mut term = u64::MAX;
            for (j, &f) in fanins.iter().enumerate() {
                let word = inputs[f].words()[w];
                term &= if (m >> j) & 1 == 1 { word } else { !word };
            }
            acc |= term;
        }
        *o = acc;
    }
}

/// The arena kernel: minterm-outer, fanin-middle, words-inner over stack
/// blocks, built from the shared `bitsim::kernels` primitives — the shape
/// the simulators use on arena rows.
fn blocked_kernel_eval(
    fanins: &[usize],
    function: &TruthTable,
    input_rows: &[&[u64]],
    word_lo: usize,
    out: &mut [u64],
) {
    let mut done = 0usize;
    while done < out.len() {
        let n = (out.len() - done).min(BLOCK_WORDS);
        let lo = word_lo + done;
        let mut acc = [0u64; BLOCK_WORDS];
        let mut term = [0u64; BLOCK_WORDS];
        for m in 0..function.num_bits() {
            if !function.get_bit(m) {
                continue;
            }
            let first = input_rows[fanins[0]];
            kernels::copy_polarity(&mut term[..n], &first[lo..lo + n], (m & 1) == 0);
            for (j, &f) in fanins.iter().enumerate().skip(1) {
                let row = &input_rows[f][lo..lo + n];
                if (m >> j) & 1 == 1 {
                    kernels::and_assign(&mut term[..n], row);
                } else {
                    kernels::andnot_assign(&mut term[..n], row);
                }
            }
            kernels::or_assign(&mut acc[..n], &term[..n]);
        }
        out[done..done + n].copy_from_slice(&acc[..n]);
        done += n;
    }
}

fn level_eval_benches(c: &mut Criterion) {
    const NUM_PIS: usize = 16;
    const NUM_NARROW: usize = 224;
    const NUM_WIDE: usize = 32;
    const NUM_PATTERNS: usize = 64 * 64; // 64 words per signature

    let level = skewed_level(NUM_PIS, NUM_NARROW, NUM_WIDE, 0x5EED);
    let num_nodes = level.fanins.len();
    let patterns = PatternSet::random(NUM_PIS, NUM_PATTERNS, 0xEB5).unwrap();
    let num_words = NUM_PATTERNS / 64;

    // Per-node layout: fanin signatures live in individually owned heap
    // allocations, exactly like the pre-arena simulator state.
    let input_sigs: Vec<Signature> = (0..NUM_PIS)
        .map(|i| patterns.input_signature(i).clone())
        .collect();

    // Arena layout: inputs first, then one row per LUT of the level.
    let mut arena = SignatureArena::new(NUM_PIS + num_nodes, NUM_PATTERNS);
    for i in 0..NUM_PIS {
        arena
            .row_mut(i)
            .copy_from_slice(patterns.input_signature(i).words());
        arena.mark_written(i);
    }
    let group_rows: Vec<usize> = (NUM_PIS..NUM_PIS + num_nodes).collect();
    let nodes: Vec<usize> = (0..num_nodes).collect();

    let mut group = c.benchmark_group("simkernel_level_eval");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("pernode_old", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let buffers = parallel::evaluate_level(
                        &nodes,
                        num_words,
                        t,
                        &|node: usize, word_lo: usize, out: &mut [u64]| {
                            old_kernel_eval(
                                &level.fanins[node],
                                &level.functions[node],
                                &input_sigs,
                                word_lo,
                                out,
                            );
                        },
                    );
                    black_box(buffers)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("arena_steal_{KERNEL_FLAVOUR}"), threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let (rows, reader) = arena.split_rows(&group_rows);
                    let steals = parallel::evaluate_level_stealing(
                        rows,
                        &nodes,
                        &level.costs,
                        t,
                        &|node: usize, word_lo: usize, out: &mut [u64]| {
                            let input_rows: Vec<&[u64]> =
                                (0..NUM_PIS).map(|i| reader.row(i)).collect();
                            blocked_kernel_eval(
                                &level.fanins[node],
                                &level.functions[node],
                                &input_rows,
                                word_lo,
                                out,
                            );
                        },
                    );
                    black_box(steals)
                });
            },
        );
    }
    group.finish();
}

fn aig_level_benches(c: &mut Criterion) {
    // A uniform-cost AND level: the arena win here is pure layout (no
    // per-node allocation, stride-contiguous rows).
    const NUM_PIS: usize = 64;
    const NUM_ANDS: usize = 512;
    const NUM_PATTERNS: usize = 64 * 64;

    let mut state = 0x0DDB_1A5Eu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let pairs: Vec<(usize, u64, usize, u64)> = (0..NUM_ANDS)
        .map(|_| {
            (
                next() as usize % NUM_PIS,
                if next() & 1 == 1 { u64::MAX } else { 0 },
                next() as usize % NUM_PIS,
                if next() & 1 == 1 { u64::MAX } else { 0 },
            )
        })
        .collect();
    let patterns = PatternSet::random(NUM_PIS, NUM_PATTERNS, 0xEB5).unwrap();
    let num_words = NUM_PATTERNS / 64;

    let input_sigs: Vec<Signature> = (0..NUM_PIS)
        .map(|i| patterns.input_signature(i).clone())
        .collect();

    let mut arena = SignatureArena::new(NUM_PIS + NUM_ANDS, NUM_PATTERNS);
    for i in 0..NUM_PIS {
        arena
            .row_mut(i)
            .copy_from_slice(patterns.input_signature(i).words());
        arena.mark_written(i);
    }
    let group_rows: Vec<usize> = (NUM_PIS..NUM_PIS + NUM_ANDS).collect();
    let nodes: Vec<usize> = (0..NUM_ANDS).collect();
    let costs = vec![1u64; NUM_ANDS];

    let mut group = c.benchmark_group("simkernel_aig_level");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("pernode_old", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let buffers = parallel::evaluate_level(
                        &nodes,
                        num_words,
                        t,
                        &|node: usize, word_lo: usize, out: &mut [u64]| {
                            let (a, ma, bn, mb) = pairs[node];
                            let aw = &input_sigs[a].words()[word_lo..word_lo + out.len()];
                            let bw = &input_sigs[bn].words()[word_lo..word_lo + out.len()];
                            for ((o, &x), &y) in out.iter_mut().zip(aw).zip(bw) {
                                *o = (x ^ ma) & (y ^ mb);
                            }
                        },
                    );
                    black_box(buffers)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("arena_steal_{KERNEL_FLAVOUR}"), threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let (rows, reader) = arena.split_rows(&group_rows);
                    let steals = parallel::evaluate_level_stealing(
                        rows,
                        &nodes,
                        &costs,
                        t,
                        &|node: usize, word_lo: usize, out: &mut [u64]| {
                            let (a, ma, bn, mb) = pairs[node];
                            let aw = &reader.row(a)[word_lo..word_lo + out.len()];
                            let bw = &reader.row(bn)[word_lo..word_lo + out.len()];
                            kernels::and2_masked(aw, bw, ma, mb, out);
                        },
                    );
                    black_box(steals)
                });
            },
        );
    }
    group.finish();
}

fn simkernel_benches(c: &mut Criterion) {
    level_eval_benches(c);
    aig_level_benches(c);
}

criterion_group!(benches, simkernel_benches);
criterion_main!(benches);
