//! The sequential-sweeping harness: latch merging on machines with planted
//! sequential redundancy (duplicate and complemented-duplicate latches,
//! reachable constants, product-machine miters).
//!
//! For every benchmark the harness reports the input machine (real PIs,
//! latches, gates, levels), the swept sizes, the candidate/proof counters
//! of the sequential engine (ternary constants, induction refutations,
//! undetermined pairs) and the SAT/simulation/total wall-clock.  Every
//! sweep is verified against the BMC sequential-equivalence oracle unless
//! `--no-verify` is passed.
//!
//! Usage: `cargo run -p bench --release --bin table_seq -- [--scale tiny|small|large] [--depth K] [--patterns N] [--no-verify] [--json PATH] [--sat-par N]`
//!
//! With `--json PATH` the measured numbers are written as a JSON snapshot
//! (the format of the checked-in `BENCH_baseline_seq.json`, gated in CI by
//! `bench_diff`).  The JSON run additionally re-sweeps every benchmark with
//! `num_threads = sat_parallelism = N` (`--sat-par`, default 4) and
//! **asserts** that the committed proofs, all report counters and the swept
//! AIGER bytes are identical to the sequential run — the determinism
//! guarantee of the sequential engine, enforced on every snapshot.

use bench::{arg_value, parse_scale, secs};
use netlist::aiger::write_aiger_string;
use netlist::Aig;
use stp_sweep::{bmc_sec, Engine, SweepConfig, SweepResult, Sweeper};
use workloads::sequential::{random_sequential_aig, sequential_miter, with_duplicate_latches};
use workloads::Scale;

const ORACLE_FRAMES: usize = 5;
const ORACLE_CONFLICTS: u64 = 200_000;

/// The sequential benchmark suite: duplicate-latch workloads (half of them
/// with `X` initial values in the base machine) plus self-miters, all
/// seeded and scale-parametric.
fn seq_suite(scale: Scale) -> Vec<(String, Aig)> {
    let f = scale.factor();
    let mut suite = Vec::new();
    for (i, &seed) in [3u64, 17, 42, 64, 99].iter().enumerate() {
        let base = random_sequential_aig(3 + f, 4 * f, 4 + f, i % 2 == 1, seed);
        let workload = with_duplicate_latches(&base, 2 * f);
        suite.push((format!("dup_s{seed}"), workload.aig));
    }
    for &seed in &[7u64, 23] {
        let base = random_sequential_aig(3 + f, 3 * f, 4, false, seed);
        suite.push((format!("miter_s{seed}"), sequential_miter(&base, &base)));
    }
    suite
}

fn sweep(aig: &Aig, config: SweepConfig, threads: usize, sat_par: usize) -> SweepResult {
    Sweeper::new(Engine::Stp)
        .config(config.parallelism(threads).sat_parallelism(sat_par))
        .run(aig)
        .expect("valid sequential sweep config")
}

/// Asserts the determinism guarantee of the sequential engine: a parallel
/// run commits exactly the sequential run's proofs and produces
/// byte-identical output.
fn assert_parallel_identical(name: &str, sequential: &SweepResult, parallel: &SweepResult) {
    let (s, p) = (&sequential.report, &parallel.report);
    assert_eq!(
        (
            s.merges,
            s.constants,
            s.sat_calls_sat,
            s.sat_calls_unsat,
            s.sat_calls_total
        ),
        (
            p.merges,
            p.constants,
            p.sat_calls_sat,
            p.sat_calls_unsat,
            p.sat_calls_total
        ),
        "{name}: SAT/merge counters differ between parallelism settings"
    );
    assert_eq!(
        (
            s.seq_latches_after,
            s.seq_candidates,
            s.seq_ternary_constants,
            s.seq_induction_refuted,
            s.seq_induction_undet
        ),
        (
            p.seq_latches_after,
            p.seq_candidates,
            p.seq_ternary_constants,
            p.seq_induction_refuted,
            p.seq_induction_undet
        ),
        "{name}: sequential counters differ between parallelism settings"
    );
    assert_eq!(
        write_aiger_string(&sequential.aig),
        write_aiger_string(&parallel.aig),
        "{name}: swept AIGER differs between parallelism settings"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let json_path = arg_value(&args, "--json");
    let depth: usize = arg_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let sat_par: usize = arg_value(&args, "--sat-par")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let num_patterns: usize = arg_value(&args, "--patterns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    if depth == 0 || sat_par == 0 || num_patterns == 0 {
        eprintln!("--depth, --sat-par and --patterns must be nonzero");
        std::process::exit(2);
    }

    println!(
        "Sequential sweeping: latch correspondence by ternary analysis + {depth}-step induction"
    );
    println!("scale = {scale:?}, initial patterns = {num_patterns}, verify = {verify}\n");
    println!(
        "{:<12} {:>4} {:>5} {:>6} | {:>6} {:>5} | {:>5} {:>5} {:>4} {:>4} | {:>6} {:>6} | {:>8} {:>8}",
        "benchmark", "PI", "latch", "gates", "result", "latch", "cand", "const", "ref", "und",
        "sSAT", "tSAT", "sat", "total"
    );

    let config = SweepConfig::sequential(depth).with_patterns(num_patterns);
    let mut json_rows = Vec::new();

    for (name, aig) in seq_suite(scale) {
        let result = sweep(&aig, config, 1, 1);

        if json_path.is_some() {
            // The snapshot doubles as the determinism proof.
            let parallel = sweep(&aig, config, sat_par, sat_par);
            assert_parallel_identical(&name, &result, &parallel);
        }
        if verify {
            let verdict = bmc_sec(&aig, &result.aig, ORACLE_FRAMES, ORACLE_CONFLICTS);
            assert!(
                verdict.equivalent && !verdict.undetermined,
                "{name}: the BMC oracle rejected the sweep: {verdict:?}"
            );
        }

        let r = &result.report;
        let real_pis = aig.num_inputs() - aig.num_latches();
        json_rows.push(format!(
            "    {{\"benchmark\": \"{name}\", \"pi\": {real_pis}, \
             \"latches\": {}, \"gates\": {}, \"levels\": {}, \
             \"result\": {}, \"latches_after\": {}, \
             \"seq_candidates\": {}, \"seq_ternary_constants\": {}, \
             \"seq_refuted\": {}, \"seq_undet\": {}, \"ternary_iterations\": {}, \
             \"ssat\": {}, \"tsat\": {}, \"merges\": {}, \"constants\": {}, \
             \"sim_s\": {:.6}, \"sat_s\": {:.6}, \"total_s\": {:.6}}}",
            r.seq_latches_before,
            r.gates_before,
            r.levels,
            r.gates_after,
            r.seq_latches_after,
            r.seq_candidates,
            r.seq_ternary_constants,
            r.seq_induction_refuted,
            r.seq_induction_undet,
            r.ternary_iterations,
            r.sat_calls_sat,
            r.sat_calls_total,
            r.merges,
            r.constants,
            r.simulation_time.as_secs_f64(),
            r.sat_time.as_secs_f64(),
            r.total_time.as_secs_f64(),
        ));

        println!(
            "{:<12} {:>4} {:>5} {:>6} | {:>6} {:>5} | {:>5} {:>5} {:>4} {:>4} | {:>6} {:>6} | {:>8} {:>8}",
            name,
            real_pis,
            r.seq_latches_before,
            r.gates_before,
            r.gates_after,
            r.seq_latches_after,
            r.seq_candidates,
            r.seq_ternary_constants,
            r.seq_induction_refuted,
            r.seq_induction_undet,
            r.sat_calls_sat,
            r.sat_calls_total,
            secs(r.sat_time),
            secs(r.total_time),
        );
    }

    if let Some(path) = json_path {
        let document = format!(
            "{{\n  \"table\": \"table_seq_sequential\",\n  \"scale\": \"{scale:?}\",\n  \
             \"patterns\": {num_patterns},\n  \"seq_depth\": {depth},\n  \
             \"sat_par_checked\": {sat_par},\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(&path, document).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path} (parallelism {sat_par} verified identical to sequential)");
    }
}
