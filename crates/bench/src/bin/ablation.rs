//! Ablation study of the STP sweeper's design choices:
//!
//! * exhaustive window refinement on/off;
//! * SAT-guided initial patterns on/off;
//! * constant substitution on/off;
//! * window size limit (cf. the paper's `limit = log₂ n` choice).
//!
//! Usage: `cargo run -p bench --release --bin ablation -- [--scale tiny|small|large]`

use bench::{geometric_mean, parse_scale, secs};
use stp_sweep::{Engine, SweepConfig, Sweeper};
use workloads::hwmcc_suite;

struct Variant {
    name: &'static str,
    config: SweepConfig,
}

fn variants() -> Vec<Variant> {
    let base = SweepConfig::default();
    vec![
        Variant {
            name: "full (paper)",
            config: base,
        },
        Variant {
            name: "no window refinement",
            config: SweepConfig {
                window_refinement: false,
                ..base
            },
        },
        Variant {
            name: "no SAT-guided patterns",
            config: SweepConfig {
                sat_guided_patterns: false,
                ..base
            },
        },
        Variant {
            name: "no constant substitution",
            config: SweepConfig {
                constant_substitution: false,
                ..base
            },
        },
        Variant {
            name: "window limit 6",
            config: SweepConfig {
                window_limit: 6,
                ..base
            },
        },
        Variant {
            name: "window limit 16",
            config: SweepConfig {
                window_limit: 16,
                ..base
            },
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let suite = hwmcc_suite(scale);
    println!("Ablation of the STP sweeper on the HWMCC/IWLS-analog suite (scale = {scale:?})\n");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "variant", "merges", "sat SAT", "tot SAT", "sim-only", "sim time", "total time"
    );

    for variant in variants() {
        let mut merges = 0usize;
        let mut sat_sat = 0u64;
        let mut sat_total = 0u64;
        let mut sim_only = 0u64;
        let mut sim_time = Vec::new();
        let mut total_time = Vec::new();
        for bench in &suite {
            let result = Sweeper::new(Engine::Stp)
                .config(variant.config)
                .run(&bench.aig)
                .expect("ablation variants are valid configs");
            let r = result.report;
            merges += r.merges + r.constants;
            sat_sat += r.sat_calls_sat;
            sat_total += r.sat_calls_total;
            sim_only += r.proved_by_simulation + r.disproved_by_simulation;
            sim_time.push(r.simulation_time.as_secs_f64());
            total_time.push(r.total_time.as_secs_f64());
        }
        println!(
            "{:<26} {:>9} {:>9} {:>9} {:>9} {:>9}s {:>9}s",
            variant.name,
            merges,
            sat_sat,
            sat_total,
            sim_only,
            secs(std::time::Duration::from_secs_f64(sim_time.iter().sum())),
            secs(std::time::Duration::from_secs_f64(total_time.iter().sum())),
        );
        let _ = geometric_mean(total_time);
    }
}
