//! The CI bench-regression gate.
//!
//! Compares a fresh `table1 --json`, `table2 --json` or `table_seq --json`
//! snapshot against the matching checked-in baseline
//! (`BENCH_baseline.json` / `BENCH_baseline_table2.json` /
//! `BENCH_baseline_seq.json`) — the snapshot kind is detected from the
//! document's `"table"` field:
//!
//! * **deterministic counters** (gate counts, SAT calls, merges, constants,
//!   resimulation counts, SAT batches) must match the baseline exactly —
//!   the engines are seeded and deterministic, so any drift is a real
//!   behaviour change;
//! * **time-like fields** (per-benchmark wall-clock, the Table I speed-up
//!   geomeans) only fail when they *regress* beyond a tolerance (default
//!   ±30%, `--time-tolerance 0.3`); getting faster never fails.
//!
//! Usage:
//!
//! ```text
//! bench_diff <baseline.json> <fresh.json> [--time-tolerance F] [--time-floor S] [--skip-times]
//! ```
//!
//! Exits 0 when the fresh snapshot is no worse than the baseline, 1 on any
//! regression, 2 on usage/parse errors.  Rows whose baseline wall-clock is
//! below `--time-floor` seconds (default 0.005) are exempt from the time
//! check — sub-millisecond measurements are dominated by scheduler noise,
//! not by the code under test.  `--skip-times` restricts the check to the
//! deterministic counters entirely (useful on machines whose speed is not
//! comparable to the baseline host).

use bench::arg_value;
use bench::json::{parse, Json};

/// Collects human-readable regressions.
#[derive(Default)]
struct Findings {
    failures: Vec<String>,
    checks: usize,
}

impl Findings {
    fn check(&mut self, ok: bool, message: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(message());
        }
    }
}

/// The deterministic per-benchmark pipeline counters of a table1 snapshot;
/// any drift fails.
const EXACT_ROW_FIELDS: &[&str] = &[
    "gates_before",
    "gates_after",
    "sat_calls",
    "merges",
    "constants",
    "resim_events",
    "resim_nodes",
    "resim_skipped",
    "sat_batches",
    "sat_conflicts",
];

/// The run-parameter header fields of a table1 snapshot; the two snapshots
/// must describe the same workload to be comparable.
const HEADER_FIELDS: &[&str] = &["patterns", "lut_k", "threads"];

/// The deterministic fields of one entry of a pipeline row's `"passes"`
/// array; compared exactly whenever the baseline records the array (both
/// the default pipeline and `--passes` script snapshots do).
const PASS_EXACT_FIELDS: &[&str] = &["gates_before", "gates_after", "sat_calls", "merges"];

/// The deterministic per-benchmark sweeping counters of a table2 snapshot
/// (both engines); any drift fails.
const TABLE2_EXACT_ROW_FIELDS: &[&str] = &[
    "gates",
    "levels",
    "result_b",
    "result_s",
    "ssat_b",
    "tsat_b",
    "merges_b",
    "constants_b",
    "ssat_s",
    "tsat_s",
    "merges_s",
    "constants_s",
    "sat_batches_s",
    "sat_conflicts_s",
];

/// The time-like per-benchmark fields of a table2 snapshot, gated with the
/// usual tolerance/floor.
const TABLE2_TIME_ROW_FIELDS: &[&str] = &["total_b_s", "total_s_s"];

/// The run-parameter header fields of a table2 snapshot.
const TABLE2_HEADER_FIELDS: &[&str] = &["patterns", "sat_par_checked", "shards_checked"];

/// The deterministic per-benchmark counters of a table2 snapshot's
/// `batch_quality` section (both batch policies); any drift fails.  The
/// `mean_*` fields are derived from these and deliberately not re-gated.
const BATCH_QUALITY_EXACT_FIELDS: &[&str] =
    &["batches_sd", "committed_sd", "batches_ra", "committed_ra"];

/// The deterministic per-benchmark counters of a `table_seq --json`
/// sequential-sweeping snapshot; any drift fails.
const SEQ_EXACT_ROW_FIELDS: &[&str] = &[
    "latches",
    "gates",
    "levels",
    "result",
    "latches_after",
    "seq_candidates",
    "seq_ternary_constants",
    "seq_refuted",
    "seq_undet",
    "ternary_iterations",
    "ssat",
    "tsat",
    "merges",
    "constants",
];

/// The time-like per-benchmark fields of a table_seq snapshot.
const SEQ_TIME_ROW_FIELDS: &[&str] = &["total_s"];

/// The run-parameter header fields of a table_seq snapshot.
const SEQ_HEADER_FIELDS: &[&str] = &["patterns", "seq_depth", "sat_par_checked"];

fn num_field(row: &Json, key: &str) -> Result<f64, String> {
    row.num(key)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

/// Routes to the comparison matching the snapshot kind (the `"table"`
/// field); documents without one are treated as table1 snapshots.
fn compare(
    baseline: &Json,
    fresh: &Json,
    tolerance: f64,
    time_floor: f64,
    skip_times: bool,
) -> Findings {
    let base_kind = baseline.str("table").unwrap_or("table1_simulation");
    let fresh_kind = fresh.str("table").unwrap_or("table1_simulation");
    if base_kind != fresh_kind {
        let mut findings = Findings::default();
        findings.check(false, || {
            format!("snapshot kinds differ: baseline {base_kind:?} vs fresh {fresh_kind:?}")
        });
        return findings;
    }
    match base_kind {
        "table2_sweeping" => {
            let mut findings = compare_flat(
                baseline,
                fresh,
                tolerance,
                time_floor,
                skip_times,
                TABLE2_HEADER_FIELDS,
                TABLE2_EXACT_ROW_FIELDS,
                TABLE2_TIME_ROW_FIELDS,
                "BENCH_baseline_table2.json",
            );
            compare_batch_quality(&mut findings, baseline, fresh);
            findings
        }
        "table_seq_sequential" => compare_flat(
            baseline,
            fresh,
            tolerance,
            time_floor,
            skip_times,
            SEQ_HEADER_FIELDS,
            SEQ_EXACT_ROW_FIELDS,
            SEQ_TIME_ROW_FIELDS,
            "BENCH_baseline_seq.json",
        ),
        _ => compare_table1(baseline, fresh, tolerance, time_floor, skip_times),
    }
}

/// Compares two flat-row snapshots (`table2 --json`, `table_seq --json`):
/// the given counters exactly, the given wall-clock fields within the
/// tolerance/floor.
#[allow(clippy::too_many_arguments)]
fn compare_flat(
    baseline: &Json,
    fresh: &Json,
    tolerance: f64,
    time_floor: f64,
    skip_times: bool,
    header_fields: &[&str],
    exact_fields: &[&str],
    time_fields: &[&str],
    refresh_hint: &str,
) -> Findings {
    let mut findings = Findings::default();
    findings.check(baseline.str("scale") == fresh.str("scale"), || {
        format!(
            "workload scale differs: baseline {:?} vs fresh {:?}",
            baseline.str("scale"),
            fresh.str("scale")
        )
    });
    for &key in header_fields {
        let base = baseline.num(key).unwrap_or(1.0);
        let new = fresh.num(key).unwrap_or(1.0);
        findings.check(base == new, || {
            format!("run parameter '{key}' differs: baseline {base} vs fresh {new}")
        });
    }
    let empty: Vec<Json> = Vec::new();
    let base_rows = baseline
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let fresh_rows = fresh.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
    findings.check(!base_rows.is_empty(), || "baseline has no rows".into());
    for base_row in base_rows {
        let Some(name) = base_row.str("benchmark") else {
            findings.check(false, || "baseline row without a name".into());
            continue;
        };
        let Some(fresh_row) = fresh_rows.iter().find(|r| r.str("benchmark") == Some(name)) else {
            findings.check(false, || format!("{name}: missing from the fresh snapshot"));
            continue;
        };
        for &key in exact_fields {
            match (num_field(base_row, key), num_field(fresh_row, key)) {
                (Ok(base), Ok(new)) => findings.check(base == new, || {
                    format!("{name}: {key} changed: baseline {base} vs fresh {new}")
                }),
                (Err(e), _) | (_, Err(e)) => findings.check(false, || format!("{name}: {e}")),
            }
        }
        if !skip_times {
            for &key in time_fields {
                if let (Ok(base), Ok(new)) = (num_field(base_row, key), num_field(fresh_row, key)) {
                    findings.check(base < time_floor || new <= base * (1.0 + tolerance), || {
                        format!(
                            "{name}: {key} regressed beyond {:.0}%: \
                             baseline {base:.6}s vs fresh {new:.6}s",
                            tolerance * 100.0
                        )
                    });
                }
            }
        }
    }
    for fresh_row in fresh_rows {
        let name = fresh_row.str("benchmark").unwrap_or("<unnamed>");
        findings.check(
            base_rows.iter().any(|r| r.str("benchmark") == Some(name)),
            || format!("{name}: not in the baseline (refresh {refresh_hint})"),
        );
    }
    findings
}

/// Compares the `batch_quality` section of two table2 snapshots exactly,
/// whenever the baseline records one: the committed-batch accounting of both
/// batch policies is deterministic, so any drift is a behaviour change.
fn compare_batch_quality(findings: &mut Findings, baseline: &Json, fresh: &Json) {
    let Some(base_rows) = baseline.get("batch_quality").and_then(Json::as_arr) else {
        return;
    };
    let empty: Vec<Json> = Vec::new();
    let fresh_rows = fresh
        .get("batch_quality")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for base_row in base_rows {
        let Some(name) = base_row.str("benchmark") else {
            findings.check(false, || "baseline batch_quality row without a name".into());
            continue;
        };
        let Some(fresh_row) = fresh_rows.iter().find(|r| r.str("benchmark") == Some(name)) else {
            findings.check(false, || {
                format!("{name}: missing from the fresh snapshot's batch_quality section")
            });
            continue;
        };
        for &key in BATCH_QUALITY_EXACT_FIELDS {
            match (num_field(base_row, key), num_field(fresh_row, key)) {
                (Ok(base), Ok(new)) => findings.check(base == new, || {
                    format!("{name}: batch_quality {key} changed: baseline {base} vs fresh {new}")
                }),
                (Err(e), _) | (_, Err(e)) => {
                    findings.check(false, || format!("{name}: batch_quality: {e}"))
                }
            }
        }
    }
    for fresh_row in fresh_rows {
        let name = fresh_row.str("benchmark").unwrap_or("<unnamed>");
        findings.check(
            base_rows.iter().any(|r| r.str("benchmark") == Some(name)),
            || {
                format!(
                    "{name}: batch_quality row not in the baseline \
                     (refresh BENCH_baseline_table2.json)"
                )
            },
        );
    }
}

fn compare_table1(
    baseline: &Json,
    fresh: &Json,
    tolerance: f64,
    time_floor: f64,
    skip_times: bool,
) -> Findings {
    let mut findings = Findings::default();

    findings.check(baseline.str("scale") == fresh.str("scale"), || {
        format!(
            "workload scale differs: baseline {:?} vs fresh {:?}",
            baseline.str("scale"),
            fresh.str("scale")
        )
    });
    for &key in HEADER_FIELDS {
        let base = baseline.num(key).unwrap_or(1.0);
        let new = fresh.num(key).unwrap_or(1.0);
        findings.check(base == new, || {
            format!("run parameter '{key}' differs: baseline {base} vs fresh {new}")
        });
    }

    // Table I geomeans: dimensionless speed-ups, higher is better.
    if !skip_times {
        for &key in &["xa", "xl"] {
            let base = baseline.get("geomean").and_then(|g| g.num(key));
            let new = fresh.get("geomean").and_then(|g| g.num(key));
            if let (Some(base), Some(new)) = (base, new) {
                findings.check(new >= base / (1.0 + tolerance), || {
                    format!(
                        "geomean {key} regressed beyond {:.0}%: baseline {base:.3} vs fresh {new:.3}",
                        tolerance * 100.0
                    )
                });
            }
        }
    }

    let empty: Vec<Json> = Vec::new();
    let base_rows = baseline
        .get("pipeline")
        .and_then(|p| p.get("rows"))
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let fresh_rows = fresh
        .get("pipeline")
        .and_then(|p| p.get("rows"))
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    findings.check(!base_rows.is_empty(), || {
        "baseline has no pipeline rows".into()
    });

    for base_row in base_rows {
        let Some(name) = base_row.str("benchmark") else {
            findings.check(false, || "baseline pipeline row without a name".into());
            continue;
        };
        let Some(fresh_row) = fresh_rows.iter().find(|r| r.str("benchmark") == Some(name)) else {
            findings.check(false, || format!("{name}: missing from the fresh snapshot"));
            continue;
        };
        for &key in EXACT_ROW_FIELDS {
            match (num_field(base_row, key), num_field(fresh_row, key)) {
                (Ok(base), Ok(new)) => findings.check(base == new, || {
                    format!("{name}: {key} changed: baseline {base} vs fresh {new}")
                }),
                (Err(e), _) | (_, Err(e)) => findings.check(false, || format!("{name}: {e}")),
            }
        }
        compare_passes(&mut findings, name, base_row, fresh_row);
        if !skip_times {
            if let (Ok(base), Ok(new)) = (
                num_field(base_row, "total_s"),
                num_field(fresh_row, "total_s"),
            ) {
                // Sub-floor rows are noise-dominated; only gate rows whose
                // baseline time is large enough to measure a real ratio.
                findings.check(base < time_floor || new <= base * (1.0 + tolerance), || {
                    format!(
                        "{name}: pipeline wall-clock regressed beyond {:.0}%: \
                         baseline {base:.6}s vs fresh {new:.6}s",
                        tolerance * 100.0
                    )
                });
            }
        }
    }
    for fresh_row in fresh_rows {
        let name = fresh_row.str("benchmark").unwrap_or("<unnamed>");
        findings.check(
            base_rows.iter().any(|r| r.str("benchmark") == Some(name)),
            || format!("{name}: not in the baseline (refresh BENCH_baseline.json)"),
        );
    }
    findings
}

/// Compares the per-pass entries of one pipeline row exactly: the pass
/// sequence (names, in order), each pass's gate counts and deterministic
/// counters must all match the baseline.  Pass wall-clock (`time_s`) is
/// deliberately not gated — the row-level `total_s` covers time.
fn compare_passes(findings: &mut Findings, name: &str, base_row: &Json, fresh_row: &Json) {
    let Some(base_passes) = base_row.get("passes").and_then(Json::as_arr) else {
        return;
    };
    let empty: Vec<Json> = Vec::new();
    let fresh_passes = fresh_row
        .get("passes")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    findings.check(base_passes.len() == fresh_passes.len(), || {
        format!(
            "{name}: pass count changed: baseline {} vs fresh {}",
            base_passes.len(),
            fresh_passes.len()
        )
    });
    for (index, (base, fresh)) in base_passes.iter().zip(fresh_passes).enumerate() {
        let pass = base.str("name").unwrap_or("<unnamed>");
        findings.check(base.str("name") == fresh.str("name"), || {
            format!(
                "{name}: pass {index} changed: baseline {pass:?} vs fresh {:?}",
                fresh.str("name").unwrap_or("<unnamed>")
            )
        });
        for &key in PASS_EXACT_FIELDS {
            match (num_field(base, key), num_field(fresh, key)) {
                (Ok(base), Ok(new)) => findings.check(base == new, || {
                    format!("{name}: pass {pass}: {key} changed: baseline {base} vs fresh {new}")
                }),
                (Err(e), _) | (_, Err(e)) => {
                    findings.check(false, || format!("{name}: pass {pass}: {e}"))
                }
            }
        }
        // Pass counters (scripted snapshots) are emitted in a deterministic
        // order, so object equality is the exact-match check.
        match (base.get("counters"), fresh.get("counters")) {
            (None, None) => {}
            (Some(base_counters), Some(fresh_counters)) => {
                findings.check(base_counters == fresh_counters, || {
                    format!("{name}: pass {pass}: counters changed: baseline {base_counters:?} vs fresh {fresh_counters:?}")
                })
            }
            (base_counters, _) => findings.check(false, || {
                format!(
                    "{name}: pass {pass}: counters {} the fresh snapshot",
                    if base_counters.is_some() {
                        "missing from"
                    } else {
                        "unexpected in"
                    }
                )
            }),
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1usize;
    while i < args.len() {
        match args[i].as_str() {
            "--time-tolerance" | "--time-floor" => i += 2,
            "--skip-times" => i += 1,
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: bench_diff <baseline.json> <fresh.json> \
             [--time-tolerance F] [--time-floor S] [--skip-times]"
        );
        std::process::exit(2);
    }
    let tolerance: f64 = arg_value(&args, "--time-tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);
    let time_floor: f64 = arg_value(&args, "--time-floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.005);
    let skip_times = args.iter().any(|a| a == "--skip-times");

    let (baseline, fresh) = match (load(&positional[0]), load(&positional[1])) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    };

    let findings = compare(&baseline, &fresh, tolerance, time_floor, skip_times);
    if findings.failures.is_empty() {
        println!(
            "bench_diff: OK — {} checks against {} (time tolerance {:.0}%{})",
            findings.checks,
            positional[0],
            tolerance * 100.0,
            if skip_times { ", times skipped" } else { "" }
        );
    } else {
        eprintln!(
            "bench_diff: {} regression(s) against {}:",
            findings.failures.len(),
            positional[0]
        );
        for failure in &findings.failures {
            eprintln!("  - {failure}");
        }
        eprintln!(
            "if the change is intentional, refresh the baseline: \
             cargo run -p bench --release --bin table1 -- --json BENCH_baseline.json \
             (or: --bin table2 -- --scale tiny --json BENCH_baseline_table2.json, \
             or: --bin table_seq -- --scale tiny --json BENCH_baseline_seq.json)"
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(total_s: f64, sat_calls: u64, xl: f64) -> Json {
        parse(&format!(
            r#"{{"table": "table1_simulation", "scale": "Small", "patterns": 4096,
                "lut_k": 6, "threads": 1,
                "geomean": {{"xa": 0.4, "xl": {xl}}},
                "pipeline": {{"rows": [
                  {{"benchmark": "adder", "gates_before": 345, "gates_after": 345,
                    "sat_calls": {sat_calls}, "merges": 0, "constants": 0,
                    "resim_events": 0, "resim_nodes": 0, "resim_skipped": 0,
                    "sat_batches": 2, "sat_conflicts": 0,
                    "total_s": {total_s}}}
                ]}}}}"#
        ))
        .unwrap()
    }

    fn table2_snapshot(total_s: f64, ssat_s: u64, merges_s: u64) -> Json {
        table2_snapshot_with_quality(total_s, ssat_s, merges_s, 98)
    }

    fn table2_snapshot_with_quality(
        total_s: f64,
        ssat_s: u64,
        merges_s: u64,
        committed_ra: u64,
    ) -> Json {
        parse(&format!(
            r#"{{"table": "table2_sweeping", "scale": "Tiny", "patterns": 256,
                "sat_par_checked": 4, "shards_checked": 2,
                "rows": [
                  {{"benchmark": "6s100", "pi": 24, "po": 40, "levels": 12,
                    "gates": 600, "result_b": 510, "result_s": 500,
                    "ssat_b": 40, "tsat_b": 90, "merges_b": 30, "constants_b": 2,
                    "ssat_s": {ssat_s}, "tsat_s": 60, "merges_s": {merges_s},
                    "constants_s": 2, "sat_batches_s": 7, "sat_conflicts_s": 1,
                    "sim_b_s": 0.001, "sim_s_s": 0.002,
                    "total_b_s": 0.040, "total_s_s": {total_s}}}
                ],
                "batch_quality": [
                  {{"benchmark": "6s382r", "batches_sd": 100, "committed_sd": 100,
                    "batches_ra": 90, "committed_ra": {committed_ra},
                    "mean_sd": 1.0, "mean_ra": 1.09}}
                ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_snapshots_pass() {
        let base = snapshot(0.01, 3, 40.0);
        let findings = compare(&base, &base, 0.30, 0.0, false);
        assert!(findings.failures.is_empty(), "{:?}", findings.failures);
        assert!(findings.checks > 0);
    }

    #[test]
    fn count_drift_fails_even_within_tolerance() {
        let base = snapshot(0.01, 3, 40.0);
        let fresh = snapshot(0.01, 4, 40.0);
        let findings = compare(&base, &fresh, 0.30, 0.0, false);
        assert!(findings.failures.iter().any(|f| f.contains("sat_calls")));
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_but_speedup_passes() {
        let base = snapshot(0.010, 3, 40.0);
        let slow = snapshot(0.014, 3, 40.0);
        let fast = snapshot(0.001, 3, 40.0);
        assert!(!compare(&base, &slow, 0.30, 0.0, false).failures.is_empty());
        assert!(compare(&base, &fast, 0.30, 0.0, false).failures.is_empty());
        // --skip-times ignores the slowdown.
        assert!(compare(&base, &slow, 0.30, 0.0, true).failures.is_empty());
    }

    #[test]
    fn sub_floor_rows_are_exempt_from_the_time_check() {
        // A 3x slowdown on a 2 ms row: noise-dominated, below the 5 ms
        // floor, so it passes — but the same row fails with the floor at 0.
        let base = snapshot(0.002, 3, 40.0);
        let slow = snapshot(0.006, 3, 40.0);
        assert!(compare(&base, &slow, 0.30, 0.005, false)
            .failures
            .is_empty());
        assert!(!compare(&base, &slow, 0.30, 0.0, false).failures.is_empty());
    }

    #[test]
    fn geomean_speedup_loss_fails() {
        let base = snapshot(0.01, 3, 40.0);
        let fresh = snapshot(0.01, 3, 20.0);
        let findings = compare(&base, &fresh, 0.30, 0.0, false);
        assert!(findings.failures.iter().any(|f| f.contains("geomean xl")));
    }

    #[test]
    fn table2_snapshots_gate_counters_exactly_and_times_with_tolerance() {
        let base = table2_snapshot(0.050, 5, 25);
        // Identical snapshots pass.
        assert!(compare(&base, &base, 0.30, 0.0, false).failures.is_empty());
        // A counter drift fails even when times are fine.
        let drifted = table2_snapshot(0.050, 6, 25);
        let findings = compare(&base, &drifted, 0.30, 0.0, false);
        assert!(findings.failures.iter().any(|f| f.contains("ssat_s")));
        let merged = table2_snapshot(0.050, 5, 26);
        let findings = compare(&base, &merged, 0.30, 0.0, false);
        assert!(findings.failures.iter().any(|f| f.contains("merges_s")));
        // A slowdown beyond tolerance fails; a speedup passes; the floor and
        // --skip-times exempt it.
        let slow = table2_snapshot(0.080, 5, 25);
        assert!(!compare(&base, &slow, 0.30, 0.0, false).failures.is_empty());
        assert!(compare(&base, &slow, 0.30, 0.1, false).failures.is_empty());
        assert!(compare(&base, &slow, 0.30, 0.0, true).failures.is_empty());
        let fast = table2_snapshot(0.010, 5, 25);
        assert!(compare(&base, &fast, 0.30, 0.0, false).failures.is_empty());
    }

    #[test]
    fn table2_batch_quality_counters_are_gated_exactly() {
        let base = table2_snapshot_with_quality(0.050, 5, 25, 98);
        assert!(compare(&base, &base, 0.30, 0.0, false).failures.is_empty());
        // A drift in the refinement-aware committed-batch accounting fails
        // even when every engine counter agrees.
        let drifted = table2_snapshot_with_quality(0.050, 5, 25, 97);
        let findings = compare(&base, &drifted, 0.30, 0.0, false);
        assert!(
            findings
                .failures
                .iter()
                .any(|f| f.contains("batch_quality committed_ra")),
            "{:?}",
            findings.failures
        );
    }

    fn seq_snapshot(total_s: f64, latches_after: u64, refuted: u64) -> Json {
        parse(&format!(
            r#"{{"table": "table_seq_sequential", "scale": "Tiny", "patterns": 64,
                "seq_depth": 1, "sat_par_checked": 4,
                "rows": [
                  {{"benchmark": "dup_s3", "pi": 4, "latches": 9, "gates": 60,
                    "levels": 8, "result": 40, "latches_after": {latches_after},
                    "seq_candidates": 5, "seq_ternary_constants": 1,
                    "seq_refuted": {refuted}, "seq_undet": 0,
                    "ternary_iterations": 2,
                    "ssat": 0, "tsat": 10, "merges": 4, "constants": 1,
                    "sim_s": 0.001, "sat_s": 0.002, "total_s": {total_s}}}
                ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn table_seq_snapshots_gate_counters_exactly_and_times_with_tolerance() {
        let base = seq_snapshot(0.050, 4, 0);
        assert!(compare(&base, &base, 0.30, 0.0, false).failures.is_empty());
        // Any sequential-counter drift fails: a surviving latch...
        let drifted = seq_snapshot(0.050, 5, 0);
        let findings = compare(&base, &drifted, 0.30, 0.0, false);
        assert!(findings
            .failures
            .iter()
            .any(|f| f.contains("latches_after")));
        // ...or a refuted induction proof.
        let refuted = seq_snapshot(0.050, 4, 1);
        let findings = compare(&base, &refuted, 0.30, 0.0, false);
        assert!(findings.failures.iter().any(|f| f.contains("seq_refuted")));
        // Time gating follows the shared tolerance/floor/skip rules.
        let slow = seq_snapshot(0.080, 4, 0);
        assert!(!compare(&base, &slow, 0.30, 0.0, false).failures.is_empty());
        assert!(compare(&base, &slow, 0.30, 0.1, false).failures.is_empty());
        assert!(compare(&base, &slow, 0.30, 0.0, true).failures.is_empty());
        // A table_seq snapshot never compares against another kind.
        let table2 = table2_snapshot(0.050, 5, 25);
        let findings = compare(&table2, &base, 0.30, 0.0, false);
        assert!(findings
            .failures
            .iter()
            .any(|f| f.contains("snapshot kinds differ")));
    }

    fn scripted_snapshot(gates_after: u64, rewrites: u64) -> Json {
        parse(&format!(
            r#"{{"table": "table1_simulation", "scale": "Small", "patterns": 4096,
                "lut_k": 6, "threads": 1,
                "geomean": {{"xa": 0.4, "xl": 40.0}},
                "pipeline": {{"script": "rewrite;strash", "rows": [
                  {{"benchmark": "adder", "gates_before": 345, "gates_after": {gates_after},
                    "sat_calls": 0, "merges": 0, "constants": 0,
                    "resim_events": 0, "resim_nodes": 0, "resim_skipped": 0,
                    "sat_batches": 0, "sat_conflicts": 0,
                    "total_s": 0.01, "passes": [
                      {{"name": "rewrite", "gates_before": 345, "gates_after": {gates_after},
                        "sat_calls": 0, "merges": 0, "time_s": 0.005,
                        "counters": {{"candidates": 40, "rewrites": {rewrites}}}}},
                      {{"name": "strash", "gates_before": {gates_after}, "gates_after": {gates_after},
                        "sat_calls": 0, "merges": 0, "time_s": 0.001}}
                    ]}}
                ]}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn per_pass_counters_are_gated_exactly() {
        let base = scripted_snapshot(300, 12);
        assert!(compare(&base, &base, 0.30, 0.0, false).failures.is_empty());
        // A per-pass counter drift fails even when the row aggregates agree.
        let drifted = scripted_snapshot(300, 13);
        let findings = compare(&base, &drifted, 0.30, 0.0, false);
        assert!(
            findings.failures.iter().any(|f| f.contains("counters")),
            "{:?}",
            findings.failures
        );
        // A node-count drift in a pass fails.
        let grown = scripted_snapshot(310, 12);
        let findings = compare(&base, &grown, 0.30, 0.0, false);
        assert!(findings.failures.iter().any(|f| f.contains("gates_after")));
    }

    #[test]
    fn mismatched_snapshot_kinds_fail() {
        let table1 = snapshot(0.01, 3, 40.0);
        let table2 = table2_snapshot(0.050, 5, 25);
        let findings = compare(&table1, &table2, 0.30, 0.0, false);
        assert!(findings
            .failures
            .iter()
            .any(|f| f.contains("snapshot kinds differ")));
    }

    #[test]
    fn missing_benchmark_fails_both_directions() {
        let base = snapshot(0.01, 3, 40.0);
        let empty = parse(
            r#"{"scale": "Small", "patterns": 4096, "lut_k": 6, "threads": 1,
                "geomean": {"xa": 0.4, "xl": 40.0}, "pipeline": {"rows": []}}"#,
        )
        .unwrap();
        let findings = compare(&base, &empty, 0.30, 0.0, false);
        assert!(findings.failures.iter().any(|f| f.contains("missing")));
        let reverse = compare(&empty, &base, 0.30, 0.0, false);
        assert!(!reverse.failures.is_empty());
    }
}
