//! Regenerates **Table II** of the paper: SAT-sweeping with the baseline
//! FRAIG-style engine versus the proposed STP engine on the HWMCC/IWLS
//! analog suite.
//!
//! For every benchmark the harness reports the columns of Table II:
//! statistics of the input network, the swept size, the number of
//! satisfiable and total SAT calls of each engine, their simulation time and
//! their total runtime, plus the runtime ratio (STP / baseline).  Every
//! sweep is verified with the CEC checker unless `--no-verify` is passed.
//!
//! Usage: `cargo run -p bench --release --bin table2 -- [--scale tiny|small|large] [--patterns N] [--no-verify]`

use bench::{arg_value, geometric_mean, parse_scale, secs};
use stp_sweep::{cec, Engine, SweepConfig, Sweeper};
use workloads::hwmcc_suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let num_patterns: usize = arg_value(&args, "--patterns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);

    println!("Table II analog: SAT-sweeping on the HWMCC/IWLS-analog suite");
    println!("scale = {scale:?}, initial patterns = {num_patterns}, verify = {verify}\n");
    println!(
        "{:<14} {:>5}/{:<5} {:>5} {:>6} {:>6} | {:>7} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} {:>6}",
        "benchmark", "PI", "PO", "Lev", "Gate", "Result",
        "sSAT b", "sSAT s", "tSAT b", "tSAT s", "sim b", "sim s", "total b", "total s", "x"
    );

    let baseline_config = SweepConfig {
        num_initial_patterns: num_patterns,
        ..SweepConfig::baseline()
    };
    let stp_config = SweepConfig {
        num_initial_patterns: num_patterns,
        ..SweepConfig::default()
    };

    let mut ratios = Vec::new();
    let mut sat_calls_b = Vec::new();
    let mut sat_calls_s = Vec::new();
    let mut total_calls_b = Vec::new();
    let mut total_calls_s = Vec::new();
    let mut sim_b = Vec::new();
    let mut sim_s = Vec::new();
    let mut tot_b = Vec::new();
    let mut tot_s = Vec::new();

    for bench in hwmcc_suite(scale) {
        let aig = &bench.aig;
        let baseline = Sweeper::new(Engine::Baseline)
            .config(baseline_config)
            .run(aig)
            .expect("valid baseline config");
        let stp = Sweeper::new(Engine::Stp)
            .config(stp_config)
            .run(aig)
            .expect("valid STP config");

        if verify {
            let b_ok = cec::check_equivalence(aig, &baseline.aig, 200_000);
            let s_ok = cec::check_equivalence(aig, &stp.aig, 200_000);
            assert!(
                b_ok.equivalent,
                "{}: baseline sweep is not equivalent",
                bench.name
            );
            assert!(
                s_ok.equivalent,
                "{}: STP sweep is not equivalent",
                bench.name
            );
        }

        let rb = &baseline.report;
        let rs = &stp.report;
        let ratio = rs.total_time.as_secs_f64() / rb.total_time.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        sat_calls_b.push(rb.sat_calls_sat as f64);
        sat_calls_s.push(rs.sat_calls_sat as f64);
        total_calls_b.push(rb.sat_calls_total as f64);
        total_calls_s.push(rs.sat_calls_total as f64);
        sim_b.push(rb.simulation_time.as_secs_f64());
        sim_s.push(rs.simulation_time.as_secs_f64());
        tot_b.push(rb.total_time.as_secs_f64());
        tot_s.push(rs.total_time.as_secs_f64());

        println!(
            "{:<14} {:>5}/{:<5} {:>5} {:>6} {:>6} | {:>7} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} {:>6.2}",
            bench.name,
            aig.num_inputs(),
            aig.num_outputs(),
            rs.levels,
            rs.gates_before,
            rs.gates_after,
            rb.sat_calls_sat,
            rs.sat_calls_sat,
            rb.sat_calls_total,
            rs.sat_calls_total,
            secs(rb.simulation_time),
            secs(rs.simulation_time),
            secs(rb.total_time),
            secs(rs.total_time),
            ratio
        );
    }

    println!(
        "\n{:<14} {:>11} {:>5} {:>6} {:>6} | {:>7.1} {:>7.1} | {:>8.1} {:>8.1} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>6.2}",
        "Geo.",
        "",
        "",
        "",
        "",
        geometric_mean(sat_calls_b.iter().copied()),
        geometric_mean(sat_calls_s.iter().copied()),
        geometric_mean(total_calls_b.iter().copied()),
        geometric_mean(total_calls_s.iter().copied()),
        geometric_mean(sim_b.iter().copied()),
        geometric_mean(sim_s.iter().copied()),
        geometric_mean(tot_b.iter().copied()),
        geometric_mean(tot_s.iter().copied()),
        geometric_mean(ratios.iter().copied()),
    );
    println!(
        "Imp. (new/old): satisfiable SAT calls = {:.2}, total SAT calls = {:.2}, simulation time = {:.2}, total runtime = {:.2}",
        geometric_mean(sat_calls_s) / geometric_mean(sat_calls_b).max(1e-9),
        geometric_mean(total_calls_s) / geometric_mean(total_calls_b).max(1e-9),
        geometric_mean(sim_s) / geometric_mean(sim_b).max(1e-9),
        geometric_mean(tot_s) / geometric_mean(tot_b).max(1e-9),
    );
    println!("(paper: satisfiable SAT calls 0.09, total SAT calls 0.60, simulation 1.99, total runtime 0.65)");
}
