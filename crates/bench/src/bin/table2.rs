//! Regenerates **Table II** of the paper: SAT-sweeping with the baseline
//! FRAIG-style engine versus the proposed STP engine on the HWMCC/IWLS
//! analog suite.
//!
//! For every benchmark the harness reports the columns of Table II:
//! statistics of the input network, the swept size, the number of
//! satisfiable and total SAT calls of each engine, their simulation time and
//! their total runtime, plus the runtime ratio (STP / baseline).  Every
//! sweep is verified with the CEC checker unless `--no-verify` is passed.
//!
//! Usage: `cargo run -p bench --release --bin table2 -- [--scale tiny|small|large] [--patterns N] [--no-verify] [--json PATH] [--sat-par N] [--shards K]`
//!
//! With `--json PATH` the measured numbers are written as a JSON document
//! (the format of the checked-in `BENCH_baseline_table2.json`): the exact
//! per-benchmark SAT-call/merge/constant counters of both engines plus
//! their wall-clock times.  The JSON run additionally re-sweeps every
//! benchmark with `sat_parallelism = N` (`--sat-par`, default 4) and
//! **asserts** that the committed SAT calls, merges and the swept AIGER
//! output are byte-identical to the sequential run — the determinism
//! guarantee of the parallel prover, enforced on every snapshot.  With
//! `--shards K` (default 2) the same assertion also covers sharded proving
//! (`SweepConfig::shards`), and the snapshot gains a `batch_quality`
//! section: the arithmetic rows re-swept under both batch policies,
//! asserting that the refinement-aware policy commits identical results
//! while raising the mean committed batch size on at least two of them.

use bench::{arg_value, geometric_mean, parse_scale, secs};
use netlist::aiger::write_aiger_string;
use stp_sweep::{cec, BatchPolicy, Engine, SweepConfig, SweepResult, Sweeper};
use workloads::hwmcc_suite;

/// The Table II rows whose base circuits are arithmetic (divider,
/// multiplier, polynomial datapath, hypotenuse, square root, adder) — the
/// designs whose overlapping supports defeat the support-disjointness prior
/// and which the refinement-aware batch former is built for.
const ARITHMETIC_ROWS: &[&str] = &["6s20", "6s281b35", "6s382r", "6s392r", "oski2b1i", "leon2"];

/// Runs one engine on one benchmark with the given SAT parallelism.
fn sweep(aig: &netlist::Aig, engine: Engine, config: SweepConfig, sat_par: usize) -> SweepResult {
    Sweeper::new(engine)
        .config(config.sat_parallelism(sat_par))
        .run(aig)
        .expect("valid sweep config")
}

/// Asserts the parallel-prover determinism guarantee: the `variant` run
/// commits exactly the sequential run's SAT calls and merges and produces a
/// byte-identical network.
fn assert_identical(
    name: &str,
    engine: Engine,
    reference: &SweepResult,
    run: &SweepResult,
    variant: &str,
) {
    let (s, p) = (&reference.report, &run.report);
    assert_eq!(
        (s.sat_calls_sat, s.sat_calls_total, s.merges, s.constants),
        (p.sat_calls_sat, p.sat_calls_total, p.merges, p.constants),
        "{name} ({engine}): counters differ between sat_parallelism 1 and {variant}"
    );
    assert_eq!(
        (s.sat_batches, s.sat_parallel_conflicts),
        (p.sat_batches, p.sat_parallel_conflicts),
        "{name} ({engine}): batch accounting differs between sat_parallelism 1 and {variant}"
    );
    assert_eq!(
        write_aiger_string(&reference.aig),
        write_aiger_string(&run.aig),
        "{name} ({engine}): swept AIGER differs between sat_parallelism 1 and {variant}"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let json_path = arg_value(&args, "--json");
    let sat_par: usize = arg_value(&args, "--sat-par")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let shards: usize = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let num_patterns: usize = arg_value(&args, "--patterns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    if sat_par == 0 || num_patterns == 0 {
        eprintln!("--sat-par and --patterns must be nonzero");
        std::process::exit(2);
    }

    println!("Table II analog: SAT-sweeping on the HWMCC/IWLS-analog suite");
    println!("scale = {scale:?}, initial patterns = {num_patterns}, verify = {verify}\n");
    println!(
        "{:<14} {:>5}/{:<5} {:>5} {:>6} {:>6} | {:>7} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} {:>6}",
        "benchmark", "PI", "PO", "Lev", "Gate", "Result",
        "sSAT b", "sSAT s", "tSAT b", "tSAT s", "sim b", "sim s", "total b", "total s", "x"
    );

    let baseline_config = SweepConfig {
        num_initial_patterns: num_patterns,
        ..SweepConfig::baseline()
    };
    let stp_config = SweepConfig {
        num_initial_patterns: num_patterns,
        ..SweepConfig::default()
    };

    let mut ratios = Vec::new();
    let mut sat_calls_b = Vec::new();
    let mut sat_calls_s = Vec::new();
    let mut total_calls_b = Vec::new();
    let mut total_calls_s = Vec::new();
    let mut sim_b = Vec::new();
    let mut sim_s = Vec::new();
    let mut tot_b = Vec::new();
    let mut tot_s = Vec::new();
    let mut json_rows = Vec::new();

    for bench in hwmcc_suite(scale) {
        let aig = &bench.aig;
        let baseline = sweep(aig, Engine::Baseline, baseline_config, 1);
        let stp = sweep(aig, Engine::Stp, stp_config, 1);

        if json_path.is_some() {
            // The snapshot doubles as the determinism proof: both engines
            // must commit identical results under parallel SAT proving.
            let baseline_par = sweep(aig, Engine::Baseline, baseline_config, sat_par);
            assert_identical(
                bench.name,
                Engine::Baseline,
                &baseline,
                &baseline_par,
                &sat_par.to_string(),
            );
            let stp_par = sweep(aig, Engine::Stp, stp_config, sat_par);
            assert_identical(
                bench.name,
                Engine::Stp,
                &stp,
                &stp_par,
                &sat_par.to_string(),
            );
            if shards > 0 {
                // ... and under sharded proving: isolated sub-workers over
                // a partitioned solver pool must reconcile to the exact
                // sequential commit.
                let variant = format!("{sat_par} with {shards} shards");
                let baseline_sharded = sweep(
                    aig,
                    Engine::Baseline,
                    baseline_config.shards(shards),
                    sat_par,
                );
                assert_identical(
                    bench.name,
                    Engine::Baseline,
                    &baseline,
                    &baseline_sharded,
                    &variant,
                );
                let stp_sharded = sweep(aig, Engine::Stp, stp_config.shards(shards), sat_par);
                assert_identical(bench.name, Engine::Stp, &stp, &stp_sharded, &variant);
            }
        }

        if verify {
            let b_ok = cec::check_equivalence(aig, &baseline.aig, 200_000);
            let s_ok = cec::check_equivalence(aig, &stp.aig, 200_000);
            assert!(
                b_ok.equivalent,
                "{}: baseline sweep is not equivalent",
                bench.name
            );
            assert!(
                s_ok.equivalent,
                "{}: STP sweep is not equivalent",
                bench.name
            );
        }

        let rb = &baseline.report;
        let rs = &stp.report;
        let ratio = rs.total_time.as_secs_f64() / rb.total_time.as_secs_f64().max(1e-9);
        json_rows.push(format!(
            "    {{\"benchmark\": \"{}\", \"pi\": {}, \"po\": {}, \"levels\": {}, \"gates\": {}, \
             \"result_b\": {}, \"result_s\": {}, \
             \"ssat_b\": {}, \"tsat_b\": {}, \"merges_b\": {}, \"constants_b\": {}, \
             \"ssat_s\": {}, \"tsat_s\": {}, \"merges_s\": {}, \"constants_s\": {}, \
             \"sat_batches_s\": {}, \"sat_conflicts_s\": {}, \
             \"sim_b_s\": {:.6}, \"sim_s_s\": {:.6}, \"total_b_s\": {:.6}, \"total_s_s\": {:.6}}}",
            bench.name,
            aig.num_inputs(),
            aig.num_outputs(),
            rs.levels,
            rs.gates_before,
            rb.gates_after,
            rs.gates_after,
            rb.sat_calls_sat,
            rb.sat_calls_total,
            rb.merges,
            rb.constants,
            rs.sat_calls_sat,
            rs.sat_calls_total,
            rs.merges,
            rs.constants,
            rs.sat_batches,
            rs.sat_parallel_conflicts,
            rb.simulation_time.as_secs_f64(),
            rs.simulation_time.as_secs_f64(),
            rb.total_time.as_secs_f64(),
            rs.total_time.as_secs_f64(),
        ));
        ratios.push(ratio);
        sat_calls_b.push(rb.sat_calls_sat as f64);
        sat_calls_s.push(rs.sat_calls_sat as f64);
        total_calls_b.push(rb.sat_calls_total as f64);
        total_calls_s.push(rs.sat_calls_total as f64);
        sim_b.push(rb.simulation_time.as_secs_f64());
        sim_s.push(rs.simulation_time.as_secs_f64());
        tot_b.push(rb.total_time.as_secs_f64());
        tot_s.push(rs.total_time.as_secs_f64());

        println!(
            "{:<14} {:>5}/{:<5} {:>5} {:>6} {:>6} | {:>7} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} {:>6.2}",
            bench.name,
            aig.num_inputs(),
            aig.num_outputs(),
            rs.levels,
            rs.gates_before,
            rs.gates_after,
            rb.sat_calls_sat,
            rs.sat_calls_sat,
            rb.sat_calls_total,
            rs.sat_calls_total,
            secs(rb.simulation_time),
            secs(rs.simulation_time),
            secs(rb.total_time),
            secs(rs.total_time),
            ratio
        );
    }

    println!(
        "\n{:<14} {:>11} {:>5} {:>6} {:>6} | {:>7.1} {:>7.1} | {:>8.1} {:>8.1} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>6.2}",
        "Geo.",
        "",
        "",
        "",
        "",
        geometric_mean(sat_calls_b.iter().copied()),
        geometric_mean(sat_calls_s.iter().copied()),
        geometric_mean(total_calls_b.iter().copied()),
        geometric_mean(total_calls_s.iter().copied()),
        geometric_mean(sim_b.iter().copied()),
        geometric_mean(sim_s.iter().copied()),
        geometric_mean(tot_b.iter().copied()),
        geometric_mean(tot_s.iter().copied()),
        geometric_mean(ratios.iter().copied()),
    );
    println!(
        "Imp. (new/old): satisfiable SAT calls = {:.2}, total SAT calls = {:.2}, simulation time = {:.2}, total runtime = {:.2}",
        geometric_mean(sat_calls_s) / geometric_mean(sat_calls_b).max(1e-9),
        geometric_mean(total_calls_s) / geometric_mean(total_calls_b).max(1e-9),
        geometric_mean(sim_s) / geometric_mean(sim_b).max(1e-9),
        geometric_mean(tot_s) / geometric_mean(tot_b).max(1e-9),
    );
    println!("(paper: satisfiable SAT calls 0.09, total SAT calls 0.60, simulation 1.99, total runtime 0.65)");

    if let Some(path) = json_path {
        // Batch-quality check: on the arithmetic rows the refinement-aware
        // batch former must commit results identical to the
        // support-disjointness prior while packing strictly more candidates
        // per committed batch on at least two of them.
        let mut batch_quality_rows = Vec::new();
        let mut wins = 0usize;
        println!("\nbatch quality (Baseline engine, sat_parallelism {sat_par}):");
        for bench in hwmcc_suite(scale)
            .iter()
            .filter(|b| ARITHMETIC_ROWS.contains(&b.name))
        {
            let sd = sweep(
                &bench.aig,
                Engine::Baseline,
                baseline_config.batch_policy(BatchPolicy::SupportDisjoint),
                sat_par,
            );
            let ra = sweep(
                &bench.aig,
                Engine::Baseline,
                baseline_config.batch_policy(BatchPolicy::RefinementAware),
                sat_par,
            );
            let (s, r) = (&sd.report, &ra.report);
            assert_eq!(
                (s.sat_calls_sat, s.sat_calls_total, s.merges, s.constants),
                (r.sat_calls_sat, r.sat_calls_total, r.merges, r.constants),
                "{}: committed counters differ between batch policies",
                bench.name
            );
            assert_eq!(
                write_aiger_string(&sd.aig),
                write_aiger_string(&ra.aig),
                "{}: swept AIGER differs between batch policies",
                bench.name
            );
            let mean = |batches: u64, committed: u64| {
                if batches == 0 {
                    0.0
                } else {
                    committed as f64 / batches as f64
                }
            };
            let mean_sd = mean(s.sat_batches, s.sat_batch_committed);
            let mean_ra = mean(r.sat_batches, r.sat_batch_committed);
            if mean_ra > mean_sd {
                wins += 1;
            }
            println!(
                "  {:<14} support-disjoint {:.3} ({} batches)  refinement-aware {:.3} ({} batches)",
                bench.name, mean_sd, s.sat_batches, mean_ra, r.sat_batches
            );
            batch_quality_rows.push(format!(
                "    {{\"benchmark\": \"{}\", \
                 \"batches_sd\": {}, \"committed_sd\": {}, \
                 \"batches_ra\": {}, \"committed_ra\": {}, \
                 \"mean_sd\": {:.6}, \"mean_ra\": {:.6}}}",
                bench.name,
                s.sat_batches,
                s.sat_batch_committed,
                r.sat_batches,
                r.sat_batch_committed,
                mean_sd,
                mean_ra,
            ));
        }
        assert!(
            wins >= 2,
            "refinement-aware batching raised the mean committed batch size on only {wins} \
             arithmetic rows (expected at least 2)"
        );
        println!(
            "  refinement-aware wins on {wins}/{} rows",
            batch_quality_rows.len()
        );

        let document = format!(
            "{{\n  \"table\": \"table2_sweeping\",\n  \"scale\": \"{scale:?}\",\n  \
             \"patterns\": {num_patterns},\n  \"sat_par_checked\": {sat_par},\n  \
             \"shards_checked\": {shards},\n  \
             \"rows\": [\n{}\n  ],\n  \"batch_quality\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n"),
            batch_quality_rows.join(",\n")
        );
        std::fs::write(&path, document).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "wrote {path} (sat_parallelism {sat_par}, {shards} shards and both batch policies \
             verified identical to sequential)"
        );
    }
}
