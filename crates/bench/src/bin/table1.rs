//! Regenerates **Table I** of the paper: circuit-simulation runtime on the
//! EPFL-analog suite.
//!
//! For every benchmark the harness measures four runtimes:
//!
//! * `TA(base)` — word-parallel bitwise simulation of the AIG (the
//!   Mockturtle baseline);
//! * `TA(stp)`  — STP simulation of the same network expressed as 2-LUTs;
//! * `TL(base)` — per-pattern bitwise simulation of the 6-LUT network;
//! * `TL(stp)`  — STP simulation of the 6-LUT network.
//!
//! The paper reports parity on `TA` and a ~7.2× average speed-up on `TL`;
//! the shape (not the absolute numbers) is what this harness reproduces.
//!
//! Usage: `cargo run -p bench --release --bin table1 -- [--scale tiny|small|large] [--patterns N] [--lut-k K] [--threads T] [--json PATH] [--passes SCRIPT] [--checkpoint-every N] [--compact-every N] [--resume PATH]`
//!
//! `--threads T` runs every simulator through the level-scheduled parallel
//! evaluator with `T` workers and sweeps with `SweepConfig::parallelism(T)`;
//! results are bit-identical to `--threads 1` (the default), only the times
//! change.
//!
//! With `--json PATH` the measured numbers are also written as a JSON
//! document (the format of the checked-in `BENCH_baseline.json`).  The JSON
//! additionally runs the standard sweeping pipeline (sweep → strash →
//! sweep, `SweepConfig::fast`) on every benchmark and records the
//! *per-pass* reports, so snapshots track where the gates and the time go
//! pass by pass rather than only in aggregate.  No `verify` pass is run
//! here: the CEC miters of the hard arithmetic benchmarks (`hyp`, `log2`,
//! …) are intractable by design — sweep correctness is covered by the
//! test-suite and by `table2` (which verifies on the sweeping suite).
//!
//! `--passes SCRIPT` replaces the default pipeline of the JSON section with
//! an arbitrary pass script (e.g. `--passes "dc2(2)"`, see
//! `stp_sweep::passes::parse_script` for the grammar).  The per-pass JSON
//! rows then additionally carry each pass's deterministic counters (e.g.
//! `rewrites`, `iterations`), so `bench_diff` against a script baseline
//! pins the pass-level behaviour exactly.  Scripted runs keep the
//! `sat_parallelism` 1-vs-4 determinism cross-check; they cannot be
//! combined with `--checkpoint-every` (the cancel→resume cycle is specific
//! to the default pipeline).
//!
//! `--checkpoint-every N` exercises the checkpoint/resume subsystem: every
//! sweep pass of the JSON pipeline section is cancelled (via a
//! [`CancelToken`] tripped after `N` committed SAT calls), checkpointed,
//! and resumed to completion — the snapshot therefore records the numbers
//! of *resumed* runs, and `bench_diff` against the untouched baseline
//! proves the cancel→resume identity on real workloads.  The first pass's
//! mid-sweep checkpoint of each benchmark is saved as
//! `table1_<bench>.ckpt`.
//!
//! `--compact-every N` enables periodic pattern compaction
//! ([`SweepConfig::compact_every`]) on every sweep pass of the JSON pipeline
//! section.  Compaction is behaviour-neutral, so the snapshot's counters —
//! and therefore `bench_diff` against a baseline captured *without*
//! compaction — must stay exact; the flag turns the regression gate into a
//! proof of that neutrality on real workloads.
//!
//! `--resume PATH` loads such a file, locates the matching benchmark by
//! netlist fingerprint in the (deterministically regenerated) suite,
//! resumes it to completion and prints the cumulative report.

use bench::{arg_value, geometric_mean, parse_scale, timed};
use bitsim::{AigSimulator, LutSimulator, PatternSet};
use netlist::lutmap;
use stp_sweep::stp_sim::StpSimulator;
use stp_sweep::{
    Budget, CancelToken, Engine, Observer, PassReport, Pipeline, PipelineResult, SatCallOutcome,
    SweepCheckpoint, SweepConfig, SweepError, SweepReport, SweepResult, Sweeper,
};
use workloads::{epfl_suite, Scale};

/// Cancels a run from inside the event stream: trips a [`CancelToken`]
/// after a fixed number of committed SAT calls.
struct CancelAfterSatCalls {
    remaining: u64,
    token: CancelToken,
    checkpoints_seen: u64,
}

impl Observer for CancelAfterSatCalls {
    fn on_sat_call(&mut self, _outcome: SatCallOutcome) {
        if self.remaining == 0 {
            self.token.cancel();
        } else {
            self.remaining -= 1;
        }
    }

    fn on_checkpoint(&mut self, _checkpoint: &SweepCheckpoint, _encoded: &[u8]) {
        self.checkpoints_seen += 1;
    }
}

/// Runs one sweep pass as a cancel→checkpoint→resume cycle: the run is
/// cancelled after `every` committed SAT calls, the stop checkpoint is
/// round-tripped through its binary encoding (and optionally saved to
/// disk), and the resumed run completes the pass.  The identity guarantee
/// makes the returned result indistinguishable from an uninterrupted run —
/// which `bench_diff` then pins against the baseline.
fn checkpointed_sweep_pass(
    name: &str,
    aig: &netlist::Aig,
    config: SweepConfig,
    every: u64,
    save_to: Option<&str>,
) -> SweepResult {
    let token = CancelToken::new();
    let mut canceller = CancelAfterSatCalls {
        remaining: every,
        token: token.clone(),
        checkpoints_seen: 0,
    };
    let run = Sweeper::new(Engine::Stp)
        .config(config)
        .budget(Budget::unlimited().with_cancel_token(token))
        .observer(&mut canceller)
        .run(aig);
    match run {
        // The pass finished before the cancel point: nothing to resume.
        Ok(full) => full,
        Err(SweepError::BudgetExhausted {
            checkpoint: Some(checkpoint),
            ..
        }) => {
            if let Some(path) = save_to {
                checkpoint
                    .save(path)
                    .unwrap_or_else(|e| panic!("{name}: writing {path}: {e}"));
            }
            let restored = SweepCheckpoint::decode(&checkpoint.encode())
                .unwrap_or_else(|e| panic!("{name}: checkpoint round trip: {e}"));
            Sweeper::new(Engine::Stp)
                .resume_from(aig, &restored)
                .unwrap_or_else(|e| panic!("{name}: resume rejected: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("{name}: resumed run failed: {e}"))
        }
        Err(other) => panic!("{name}: checkpointed sweep failed: {other}"),
    }
}

/// The `--checkpoint-every` variant of the standard pipeline: the same
/// sweep → strash → sweep composition (aggregation mirrors
/// [`Pipeline::run`]), with every sweep pass executed through
/// [`checkpointed_sweep_pass`].
fn run_pipeline_checkpointed(
    name: &str,
    aig: &netlist::Aig,
    threads: usize,
    every: u64,
    compact_every: u64,
) -> PipelineResult {
    let config = SweepConfig::fast()
        .parallelism(threads)
        .checkpoint_every(every as usize)
        .compact_every(compact_every);
    let mut current = aig.clone();
    let mut aggregate = SweepReport {
        gates_before: aig.num_ands(),
        gates_after: aig.num_ands(),
        levels: aig.depth(),
        ..SweepReport::default()
    };
    let mut passes = Vec::new();
    for (index, pass) in ["sweep(stp)", "strash", "sweep(stp)"].iter().enumerate() {
        let gates_before = current.num_ands();
        if *pass == "strash" {
            let (cleaned, time) = timed(|| current.cleanup().0);
            current = cleaned;
            aggregate.gates_after = current.num_ands();
            aggregate.total_time += time;
            passes.push(PassReport {
                name: (*pass).to_string(),
                gates_before,
                gates_after: current.num_ands(),
                report: None,
                time,
                counters: Vec::new(),
            });
        } else {
            let save = (index == 0).then(|| format!("table1_{name}.ckpt"));
            let result = checkpointed_sweep_pass(name, &current, config, every, save.as_deref());
            aggregate.merge(&result.report);
            passes.push(PassReport {
                name: (*pass).to_string(),
                gates_before,
                gates_after: result.aig.num_ands(),
                report: Some(result.report),
                time: result.report.total_time,
                counters: Vec::new(),
            });
            current = result.aig;
        }
    }
    PipelineResult {
        aig: current,
        report: aggregate,
        passes,
    }
}

/// Runs the standard pipeline on one benchmark and renders its JSON row.
///
/// The pipeline is run twice — sequentially and with `sat_parallelism = 4`
/// — and the deterministic counters plus the final network must agree (the
/// parallel prover's determinism guarantee); the row reports the sequential
/// run's numbers.  With `checkpoint_every` set, the sequential run is the
/// cancel→resume execution of [`run_pipeline_checkpointed`] — its counters
/// must *still* agree with the plain parallel run, pinning the resume
/// identity per benchmark before `bench_diff` pins it against the baseline.
fn pipeline_json_row(
    name: &str,
    aig: &netlist::Aig,
    threads: usize,
    script: Option<&str>,
    checkpoint_every: Option<u64>,
    compact_every: u64,
    par_times: &mut (f64, f64),
) -> String {
    let run = |sat_par: usize| {
        let config = SweepConfig::fast()
            .parallelism(threads)
            .sat_parallelism(sat_par)
            .compact_every(compact_every);
        let manager = match script {
            Some(script) => Pipeline::new(config)
                .with_script(script)
                .unwrap_or_else(|e| panic!("{name}: --passes script: {e}")),
            None => Pipeline::new(config)
                .sweep(Engine::Stp)
                .strash()
                .sweep(Engine::Stp),
        };
        manager
            .run(aig)
            .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"))
    };
    let outcome = match checkpoint_every {
        Some(every) => run_pipeline_checkpointed(name, aig, threads, every, compact_every),
        None => run(1),
    };
    let parallel = run(4);
    assert_eq!(
        (
            outcome.report.sat_calls_total,
            outcome.report.merges,
            outcome.report.constants,
            outcome.report.sat_batches,
            outcome.report.sat_parallel_conflicts,
        ),
        (
            parallel.report.sat_calls_total,
            parallel.report.merges,
            parallel.report.constants,
            parallel.report.sat_batches,
            parallel.report.sat_parallel_conflicts,
        ),
        "{name}: pipeline counters differ between sat_parallelism 1 and 4"
    );
    assert_eq!(
        netlist::aiger::write_aiger_string(&outcome.aig),
        netlist::aiger::write_aiger_string(&parallel.aig),
        "{name}: pipeline output differs between sat_parallelism 1 and 4"
    );
    par_times.0 += outcome.report.total_time.as_secs_f64();
    par_times.1 += parallel.report.total_time.as_secs_f64();
    let passes: Vec<String> = outcome
        .passes
        .iter()
        .map(|p| {
            // Pass counters only appear in scripted (`--passes`) snapshots:
            // the default-pipeline snapshot format — and therefore the
            // checked-in `BENCH_baseline.json` — stays byte-identical.
            let counters = if script.is_some() && !p.counters.is_empty() {
                let entries: Vec<String> = p
                    .counters
                    .iter()
                    .map(|(key, value)| format!("\"{key}\": {value}"))
                    .collect();
                format!(", \"counters\": {{{}}}", entries.join(", "))
            } else {
                String::new()
            };
            format!(
                "{{\"name\": \"{}\", \"gates_before\": {}, \"gates_after\": {}, \
                 \"sat_calls\": {}, \"merges\": {}, \"time_s\": {:.6}{}}}",
                p.name,
                p.gates_before,
                p.gates_after,
                p.report.map(|r| r.sat_calls_total).unwrap_or(0),
                p.report.map(|r| r.merges).unwrap_or(0),
                p.time.as_secs_f64(),
                counters
            )
        })
        .collect();
    let r = &outcome.report;
    format!(
        "      {{\"benchmark\": \"{}\", \"gates_before\": {}, \"gates_after\": {}, \
         \"sat_calls\": {}, \"merges\": {}, \"constants\": {}, \
         \"resim_events\": {}, \"resim_nodes\": {}, \"resim_skipped\": {}, \
         \"sat_batches\": {}, \"sat_conflicts\": {}, \
         \"total_s\": {:.6}, \"passes\": [{}]}}",
        name,
        r.gates_before,
        r.gates_after,
        r.sat_calls_total,
        r.merges,
        r.constants,
        r.resim_events,
        r.resim_nodes,
        r.resim_skipped_nodes,
        r.sat_batches,
        r.sat_parallel_conflicts,
        r.total_time.as_secs_f64(),
        passes.join(", ")
    )
}

/// The `--resume <file>` mode: load a checkpoint, find the benchmark whose
/// netlist fingerprint matches in the (deterministically regenerated)
/// suite, resume it to completion and print the cumulative report.
fn run_resume(path: &str, scale: Scale) -> ! {
    let checkpoint = match SweepCheckpoint::load(path) {
        Ok(checkpoint) => checkpoint,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    let suite = epfl_suite(scale);
    let Some(bench) = suite.iter().find(|b| checkpoint.matches(&b.aig)) else {
        eprintln!(
            "{path}: no benchmark of the {scale:?} suite matches the checkpoint's \
             netlist fingerprint {:016x} (was the checkpoint taken at another --scale?)",
            checkpoint.fingerprint()
        );
        std::process::exit(1);
    };
    println!(
        "resuming {} from {path}: engine {}, {} SAT calls / {} candidates committed",
        bench.name,
        checkpoint.engine(),
        checkpoint.sat_calls(),
        checkpoint.committed_candidates()
    );
    let resumed = Sweeper::new(checkpoint.engine())
        .resume_from(&bench.aig, &checkpoint)
        .and_then(|session| session.run());
    match resumed {
        Ok(result) => {
            println!("resumed run finished: {}", result.report);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{path}: resume failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    if let Some(path) = arg_value(&args, "--resume") {
        run_resume(&path, scale);
    }
    let num_patterns: usize = arg_value(&args, "--patterns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    let lut_k: usize = arg_value(&args, "--lut-k")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let checkpoint_every: Option<u64> = arg_value(&args, "--checkpoint-every").map(|v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--checkpoint-every expects a positive SAT-call count");
            std::process::exit(2);
        })
    });
    let compact_every: u64 = arg_value(&args, "--compact-every")
        .map(|v| {
            v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                eprintln!("--compact-every expects a positive counter-example count");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    let passes_script: Option<String> = arg_value(&args, "--passes");
    // Validate the script up-front (and collect the scheduled pass names
    // for the snapshot header) instead of panicking per benchmark.
    let script_pass_names: Option<Vec<String>> =
        passes_script
            .as_deref()
            .map(|script| match stp_sweep::passes::parse_script(script) {
                Ok(parsed) => parsed.iter().map(|p| p.name().to_string()).collect(),
                Err(e) => {
                    eprintln!("--passes: {e}");
                    std::process::exit(2);
                }
            });
    if passes_script.is_some() && checkpoint_every.is_some() {
        eprintln!("--passes cannot be combined with --checkpoint-every");
        std::process::exit(2);
    }
    if num_patterns == 0 || threads == 0 {
        eprintln!("--patterns and --threads must be nonzero");
        std::process::exit(2);
    }

    println!("Table I analog: circuit simulation on the EPFL-analog suite");
    println!("scale = {scale:?}, patterns = {num_patterns}, k = {lut_k}, threads = {threads}\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>7} {:>10} {:>10} {:>7}",
        "benchmark", "gates", "TA base", "TA stp", "xA", "TL base", "TL stp", "xL"
    );

    let mut ta_ratios = Vec::new();
    let mut tl_ratios = Vec::new();
    let mut ta_base_all = Vec::new();
    let mut tl_base_all = Vec::new();
    let mut ta_stp_all = Vec::new();
    let mut tl_stp_all = Vec::new();
    let mut json_rows = Vec::new();

    let suite = epfl_suite(scale);
    for bench in &suite {
        let aig = &bench.aig;
        let patterns = PatternSet::random(aig.num_inputs(), num_patterns, 0xEB5)
            .expect("--patterns is validated nonzero");

        // TA baseline: word-parallel AIG simulation.
        let (_, ta_base) = timed(|| AigSimulator::new(aig).run_parallel(&patterns, threads));
        // TA STP: the AIG expressed as a 2-LUT network, simulated by STP.
        let aig_as_luts = lutmap::map_to_luts(aig, 2);
        let stp2 = StpSimulator::new(&aig_as_luts);
        let (_, ta_stp) = timed(|| stp2.simulate_all_parallel(&patterns, threads));

        // TL: the 6-LUT mapping of the benchmark.
        let lut_net = lutmap::map_to_luts(aig, lut_k);
        let (_, tl_base) = timed(|| LutSimulator::new(&lut_net).run(&patterns));
        let stp6 = StpSimulator::new(&lut_net);
        let (_, tl_stp) = timed(|| stp6.simulate_all_parallel(&patterns, threads));

        let xa = ta_base.as_secs_f64() / ta_stp.as_secs_f64().max(1e-9);
        let xl = tl_base.as_secs_f64() / tl_stp.as_secs_f64().max(1e-9);
        ta_ratios.push(xa);
        tl_ratios.push(xl);
        ta_base_all.push(ta_base.as_secs_f64());
        tl_base_all.push(tl_base.as_secs_f64());
        ta_stp_all.push(ta_stp.as_secs_f64());
        tl_stp_all.push(tl_stp.as_secs_f64());

        json_rows.push(format!(
            "    {{\"benchmark\": \"{}\", \"gates\": {}, \"ta_base_s\": {:.6}, \
             \"ta_stp_s\": {:.6}, \"xa\": {:.3}, \"tl_base_s\": {:.6}, \
             \"tl_stp_s\": {:.6}, \"xl\": {:.3}}}",
            bench.name,
            aig.num_ands(),
            ta_base.as_secs_f64(),
            ta_stp.as_secs_f64(),
            xa,
            tl_base.as_secs_f64(),
            tl_stp.as_secs_f64(),
            xl
        ));

        println!(
            "{:<12} {:>8} {:>9.3}s {:>9.3}s {:>6.2}x {:>9.3}s {:>9.3}s {:>6.2}x",
            bench.name,
            aig.num_ands(),
            ta_base.as_secs_f64(),
            ta_stp.as_secs_f64(),
            xa,
            tl_base.as_secs_f64(),
            tl_stp.as_secs_f64(),
            xl
        );
    }

    println!(
        "\n{:<12} {:>8} {:>9.3}s {:>9.3}s {:>6.2}x {:>9.3}s {:>9.3}s {:>6.2}x",
        "Geo.",
        "",
        geometric_mean(ta_base_all),
        geometric_mean(ta_stp_all),
        geometric_mean(ta_ratios.iter().copied()),
        geometric_mean(tl_base_all),
        geometric_mean(tl_stp_all),
        geometric_mean(tl_ratios.iter().copied()),
    );
    println!(
        "Imp. (old/new): TA = {:.2}x, TL = {:.2}x   (paper: TA 0.99x, TL 7.18x)",
        geometric_mean(ta_ratios.iter().copied()),
        geometric_mean(tl_ratios.iter().copied())
    );

    if let Some(path) = arg_value(&args, "--json") {
        // The sweeping pipeline section: per-pass reports per benchmark.
        match (&passes_script, checkpoint_every) {
            (Some(script), _) => {
                println!("\nrunning the pass script \"{script}\" per benchmark ...")
            }
            (None, Some(every)) => println!(
                "\nrunning the sweep pipeline (sweep -> strash -> sweep) per benchmark, \
                 cancelling each sweep after {every} SAT calls and resuming from its \
                 checkpoint (table1_<bench>.ckpt) ..."
            ),
            (None, None) => {
                println!(
                    "\nrunning the sweep pipeline (sweep -> strash -> sweep) per benchmark ..."
                )
            }
        }
        if compact_every > 0 {
            println!(
                "pattern compaction every {compact_every} counter-example(s); counters must \
                 match a compaction-free baseline exactly"
            );
        }
        let mut par_times = (0.0f64, 0.0f64);
        let pipeline_rows: Vec<String> = suite
            .iter()
            .map(|bench| {
                pipeline_json_row(
                    bench.name,
                    &bench.aig,
                    threads,
                    passes_script.as_deref(),
                    checkpoint_every,
                    compact_every,
                    &mut par_times,
                )
            })
            .collect();
        println!(
            "pipeline wall-clock: sat_parallelism 1 = {:.3}s, sat_parallelism 4 = {:.3}s \
             (identical counters and outputs)",
            par_times.0, par_times.1
        );
        // The default-pipeline header is spelled out verbatim so the
        // checked-in `BENCH_baseline.json` stays byte-identical; scripted
        // runs record the script plus the scheduled pass names.
        let pipeline_header = match (&passes_script, &script_pass_names) {
            (Some(script), Some(names)) => {
                let names: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
                format!(
                    "\"config\": \"fast\",\n    \"script\": \"{script}\",\n    \
                     \"passes\": [{}]",
                    names.join(", ")
                )
            }
            _ => "\"config\": \"fast\",\n    \
                  \"passes\": [\"sweep(stp)\", \"strash\", \"sweep(stp)\"]"
                .to_string(),
        };
        let document = format!(
            "{{\n  \"table\": \"table1_simulation\",\n  \"scale\": \"{scale:?}\",\n  \
             \"patterns\": {num_patterns},\n  \"lut_k\": {lut_k},\n  \"threads\": {threads},\n  \"rows\": [\n{}\n  ],\n  \
             \"geomean\": {{\"xa\": {:.3}, \"xl\": {:.3}}},\n  \
             \"paper\": {{\"xa\": 0.99, \"xl\": 7.18}},\n  \
             \"pipeline\": {{\n    {},\n    \
             \"rows\": [\n{}\n    ]\n  }}\n}}\n",
            json_rows.join(",\n"),
            geometric_mean(ta_ratios),
            geometric_mean(tl_ratios),
            pipeline_header,
            pipeline_rows.join(",\n")
        );
        std::fs::write(&path, document).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
