//! Regenerates **Table I** of the paper: circuit-simulation runtime on the
//! EPFL-analog suite.
//!
//! For every benchmark the harness measures four runtimes:
//!
//! * `TA(base)` — word-parallel bitwise simulation of the AIG (the
//!   Mockturtle baseline);
//! * `TA(stp)`  — STP simulation of the same network expressed as 2-LUTs;
//! * `TL(base)` — per-pattern bitwise simulation of the 6-LUT network;
//! * `TL(stp)`  — STP simulation of the 6-LUT network.
//!
//! The paper reports parity on `TA` and a ~7.2× average speed-up on `TL`;
//! the shape (not the absolute numbers) is what this harness reproduces.
//!
//! Usage: `cargo run -p bench --release --bin table1 -- [--scale tiny|small|large] [--patterns N] [--lut-k K] [--threads T] [--json PATH]`
//!
//! `--threads T` runs every simulator through the level-scheduled parallel
//! evaluator with `T` workers and sweeps with `SweepConfig::parallelism(T)`;
//! results are bit-identical to `--threads 1` (the default), only the times
//! change.
//!
//! With `--json PATH` the measured numbers are also written as a JSON
//! document (the format of the checked-in `BENCH_baseline.json`).  The JSON
//! additionally runs the standard sweeping pipeline (sweep → strash →
//! sweep, `SweepConfig::fast`) on every benchmark and records the
//! *per-pass* reports, so snapshots track where the gates and the time go
//! pass by pass rather than only in aggregate.  No `verify` pass is run
//! here: the CEC miters of the hard arithmetic benchmarks (`hyp`, `log2`,
//! …) are intractable by design — sweep correctness is covered by the
//! test-suite and by `table2` (which verifies on the sweeping suite).

use bench::{arg_value, geometric_mean, parse_scale, timed};
use bitsim::{AigSimulator, LutSimulator, PatternSet};
use netlist::lutmap;
use stp_sweep::stp_sim::StpSimulator;
use stp_sweep::{Engine, Pipeline, SweepConfig};
use workloads::epfl_suite;

/// Runs the standard pipeline on one benchmark and renders its JSON row.
///
/// The pipeline is run twice — sequentially and with `sat_parallelism = 4`
/// — and the deterministic counters plus the final network must agree (the
/// parallel prover's determinism guarantee); the row reports the sequential
/// run's numbers.
fn pipeline_json_row(
    name: &str,
    aig: &netlist::Aig,
    threads: usize,
    par_times: &mut (f64, f64),
) -> String {
    let run = |sat_par: usize| {
        Pipeline::new(
            SweepConfig::fast()
                .parallelism(threads)
                .sat_parallelism(sat_par),
        )
        .sweep(Engine::Stp)
        .strash()
        .sweep(Engine::Stp)
        .run(aig)
        .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"))
    };
    let outcome = run(1);
    let parallel = run(4);
    assert_eq!(
        (
            outcome.report.sat_calls_total,
            outcome.report.merges,
            outcome.report.constants,
            outcome.report.sat_batches,
            outcome.report.sat_parallel_conflicts,
        ),
        (
            parallel.report.sat_calls_total,
            parallel.report.merges,
            parallel.report.constants,
            parallel.report.sat_batches,
            parallel.report.sat_parallel_conflicts,
        ),
        "{name}: pipeline counters differ between sat_parallelism 1 and 4"
    );
    assert_eq!(
        netlist::aiger::write_aiger_string(&outcome.aig),
        netlist::aiger::write_aiger_string(&parallel.aig),
        "{name}: pipeline output differs between sat_parallelism 1 and 4"
    );
    par_times.0 += outcome.report.total_time.as_secs_f64();
    par_times.1 += parallel.report.total_time.as_secs_f64();
    let passes: Vec<String> = outcome
        .passes
        .iter()
        .map(|p| {
            format!(
                "{{\"name\": \"{}\", \"gates_before\": {}, \"gates_after\": {}, \
                 \"sat_calls\": {}, \"merges\": {}, \"time_s\": {:.6}}}",
                p.name,
                p.gates_before,
                p.gates_after,
                p.report.map(|r| r.sat_calls_total).unwrap_or(0),
                p.report.map(|r| r.merges).unwrap_or(0),
                p.time.as_secs_f64()
            )
        })
        .collect();
    let r = &outcome.report;
    format!(
        "      {{\"benchmark\": \"{}\", \"gates_before\": {}, \"gates_after\": {}, \
         \"sat_calls\": {}, \"merges\": {}, \"constants\": {}, \
         \"resim_events\": {}, \"resim_nodes\": {}, \"resim_skipped\": {}, \
         \"sat_batches\": {}, \"sat_conflicts\": {}, \
         \"total_s\": {:.6}, \"passes\": [{}]}}",
        name,
        r.gates_before,
        r.gates_after,
        r.sat_calls_total,
        r.merges,
        r.constants,
        r.resim_events,
        r.resim_nodes,
        r.resim_skipped_nodes,
        r.sat_batches,
        r.sat_parallel_conflicts,
        r.total_time.as_secs_f64(),
        passes.join(", ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let num_patterns: usize = arg_value(&args, "--patterns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    let lut_k: usize = arg_value(&args, "--lut-k")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if num_patterns == 0 || threads == 0 {
        eprintln!("--patterns and --threads must be nonzero");
        std::process::exit(2);
    }

    println!("Table I analog: circuit simulation on the EPFL-analog suite");
    println!("scale = {scale:?}, patterns = {num_patterns}, k = {lut_k}, threads = {threads}\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>7} {:>10} {:>10} {:>7}",
        "benchmark", "gates", "TA base", "TA stp", "xA", "TL base", "TL stp", "xL"
    );

    let mut ta_ratios = Vec::new();
    let mut tl_ratios = Vec::new();
    let mut ta_base_all = Vec::new();
    let mut tl_base_all = Vec::new();
    let mut ta_stp_all = Vec::new();
    let mut tl_stp_all = Vec::new();
    let mut json_rows = Vec::new();

    let suite = epfl_suite(scale);
    for bench in &suite {
        let aig = &bench.aig;
        let patterns = PatternSet::random(aig.num_inputs(), num_patterns, 0xEB5)
            .expect("--patterns is validated nonzero");

        // TA baseline: word-parallel AIG simulation.
        let (_, ta_base) = timed(|| AigSimulator::new(aig).run_parallel(&patterns, threads));
        // TA STP: the AIG expressed as a 2-LUT network, simulated by STP.
        let aig_as_luts = lutmap::map_to_luts(aig, 2);
        let stp2 = StpSimulator::new(&aig_as_luts);
        let (_, ta_stp) = timed(|| stp2.simulate_all_parallel(&patterns, threads));

        // TL: the 6-LUT mapping of the benchmark.
        let lut_net = lutmap::map_to_luts(aig, lut_k);
        let (_, tl_base) = timed(|| LutSimulator::new(&lut_net).run(&patterns));
        let stp6 = StpSimulator::new(&lut_net);
        let (_, tl_stp) = timed(|| stp6.simulate_all_parallel(&patterns, threads));

        let xa = ta_base.as_secs_f64() / ta_stp.as_secs_f64().max(1e-9);
        let xl = tl_base.as_secs_f64() / tl_stp.as_secs_f64().max(1e-9);
        ta_ratios.push(xa);
        tl_ratios.push(xl);
        ta_base_all.push(ta_base.as_secs_f64());
        tl_base_all.push(tl_base.as_secs_f64());
        ta_stp_all.push(ta_stp.as_secs_f64());
        tl_stp_all.push(tl_stp.as_secs_f64());

        json_rows.push(format!(
            "    {{\"benchmark\": \"{}\", \"gates\": {}, \"ta_base_s\": {:.6}, \
             \"ta_stp_s\": {:.6}, \"xa\": {:.3}, \"tl_base_s\": {:.6}, \
             \"tl_stp_s\": {:.6}, \"xl\": {:.3}}}",
            bench.name,
            aig.num_ands(),
            ta_base.as_secs_f64(),
            ta_stp.as_secs_f64(),
            xa,
            tl_base.as_secs_f64(),
            tl_stp.as_secs_f64(),
            xl
        ));

        println!(
            "{:<12} {:>8} {:>9.3}s {:>9.3}s {:>6.2}x {:>9.3}s {:>9.3}s {:>6.2}x",
            bench.name,
            aig.num_ands(),
            ta_base.as_secs_f64(),
            ta_stp.as_secs_f64(),
            xa,
            tl_base.as_secs_f64(),
            tl_stp.as_secs_f64(),
            xl
        );
    }

    println!(
        "\n{:<12} {:>8} {:>9.3}s {:>9.3}s {:>6.2}x {:>9.3}s {:>9.3}s {:>6.2}x",
        "Geo.",
        "",
        geometric_mean(ta_base_all),
        geometric_mean(ta_stp_all),
        geometric_mean(ta_ratios.iter().copied()),
        geometric_mean(tl_base_all),
        geometric_mean(tl_stp_all),
        geometric_mean(tl_ratios.iter().copied()),
    );
    println!(
        "Imp. (old/new): TA = {:.2}x, TL = {:.2}x   (paper: TA 0.99x, TL 7.18x)",
        geometric_mean(ta_ratios.iter().copied()),
        geometric_mean(tl_ratios.iter().copied())
    );

    if let Some(path) = arg_value(&args, "--json") {
        // The sweeping pipeline section: per-pass reports per benchmark.
        println!("\nrunning the sweep pipeline (sweep -> strash -> sweep) per benchmark ...");
        let mut par_times = (0.0f64, 0.0f64);
        let pipeline_rows: Vec<String> = suite
            .iter()
            .map(|bench| pipeline_json_row(bench.name, &bench.aig, threads, &mut par_times))
            .collect();
        println!(
            "pipeline wall-clock: sat_parallelism 1 = {:.3}s, sat_parallelism 4 = {:.3}s \
             (identical counters and outputs)",
            par_times.0, par_times.1
        );
        let document = format!(
            "{{\n  \"table\": \"table1_simulation\",\n  \"scale\": \"{scale:?}\",\n  \
             \"patterns\": {num_patterns},\n  \"lut_k\": {lut_k},\n  \"threads\": {threads},\n  \"rows\": [\n{}\n  ],\n  \
             \"geomean\": {{\"xa\": {:.3}, \"xl\": {:.3}}},\n  \
             \"paper\": {{\"xa\": 0.99, \"xl\": 7.18}},\n  \
             \"pipeline\": {{\n    \"config\": \"fast\",\n    \
             \"passes\": [\"sweep(stp)\", \"strash\", \"sweep(stp)\"],\n    \
             \"rows\": [\n{}\n    ]\n  }}\n}}\n",
            json_rows.join(",\n"),
            geometric_mean(ta_ratios),
            geometric_mean(tl_ratios),
            pipeline_rows.join(",\n")
        );
        std::fs::write(&path, document).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
