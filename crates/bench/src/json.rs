//! A minimal JSON reader for the benchmark snapshots.
//!
//! The bench harness writes its snapshots (`table1 --json`,
//! `BENCH_baseline.json`) by hand and the regression checker
//! (`bench_diff`) reads them back; the build environment has no serde, so
//! this module implements the small recursive-descent parser the checker
//! needs.  It supports the full JSON value grammar with the usual string
//! escapes; numbers are read as `f64` (every numeric field in the snapshots
//! fits).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, kept as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)` as a number.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: `self.get(key)` as a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

/// Parses a JSON document.  Trailing content after the top-level value is an
/// error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("invalid number '{text}' at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match escaped {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape '\\{}'", *other as char)),
                }
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = utf8_len(b);
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(
            r#"{"name": "table1", "n": 42, "x": -1.5e-3, "ok": true,
                "none": null, "rows": [{"a": 1}, {"a": 2}], "empty": [], "eo": {}}"#,
        )
        .unwrap();
        assert_eq!(doc.str("name"), Some("table1"));
        assert_eq!(doc.num("n"), Some(42.0));
        assert!((doc.num("x").unwrap() + 0.0015).abs() < 1e-12);
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].num("a"), Some(2.0));
        assert_eq!(doc.get("empty").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(doc.get("eo"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn decodes_string_escapes() {
        let doc = parse(r#"["a\"b", "\\", "\n\t", "A"]"#).unwrap();
        let items = doc.as_arr().unwrap();
        assert_eq!(items[0].as_str(), Some("a\"b"));
        assert_eq!(items[1].as_str(), Some("\\"));
        assert_eq!(items[2].as_str(), Some("\n\t"));
        assert_eq!(items[3].as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_the_checked_in_baseline() {
        // The checker must be able to read the snapshot format as written
        // by `table1 --json`.
        let baseline = include_str!("../../../BENCH_baseline.json");
        let doc = parse(baseline).expect("baseline parses");
        assert_eq!(doc.str("table"), Some("table1_simulation"));
        assert!(doc.get("pipeline").unwrap().get("rows").is_some());
    }
}
