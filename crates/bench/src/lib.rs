//! # bench — the table-regeneration harness
//!
//! Binaries (run with `cargo run -p bench --release --bin <name>`):
//!
//! * `table1` — regenerates Table I (circuit-simulation runtime on the
//!   EPFL-analog suite: bitwise baseline vs. STP, AIG and 6-LUT networks).
//! * `table2` — regenerates Table II (SAT-sweeping: SAT calls, simulation
//!   time and total runtime of the baseline FRAIG engine vs. the STP
//!   engine on the HWMCC/IWLS-analog suite).
//! * `table_seq` — the sequential-sweeping harness (latch merging by
//!   ternary analysis + k-step induction on machines with planted
//!   sequential redundancy, every sweep verified by the BMC oracle).
//! * `ablation` — the design-choice ablations
//!   (window refinement on/off, SAT-guided patterns on/off, window limit).
//!
//! Criterion benches (`cargo bench -p bench`) cover the same comparisons on
//! a fixed subset so they can be tracked over time.
//!
//! * `bench_diff` — the CI regression gate: compares a fresh `table1 --json`
//!   snapshot against the checked-in `BENCH_baseline.json` (deterministic
//!   counters exactly, time-like fields within a tolerance).
//!
//! This library exposes the small amount of shared measurement machinery
//! and the snapshot [`json`] reader.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Geometric mean of a sequence of positive values; zero entries are clamped
/// to a small epsilon so that a single zero does not collapse the mean (the
/// paper's tables do the same implicitly by reporting two decimal places).
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for v in values {
        let v = v.max(1e-9);
        log_sum += v.ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Parses a `--key value` style command-line option.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses the `--scale` option into a [`workloads::Scale`].
pub fn parse_scale(args: &[String]) -> workloads::Scale {
    match arg_value(args, "--scale").as_deref() {
        Some("tiny") => workloads::Scale::Tiny,
        Some("large") => workloads::Scale::Large,
        _ => workloads::Scale::Small,
    }
}

/// Formats a duration in seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
        assert!(geometric_mean([0.0, 4.0]) > 0.0);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "tiny", "--patterns", "128"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--patterns"), Some("128".to_string()));
        assert_eq!(arg_value(&args, "--missing"), None);
        assert_eq!(parse_scale(&args), workloads::Scale::Tiny);
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
