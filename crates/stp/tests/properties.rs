//! Property-based tests of the semi-tensor product algebra.

use proptest::prelude::*;
use stp::swap::{power_reducing_matrix, retrieval_matrix, stack_arguments, swap_matrix};
use stp::{BoolVec, LogicMatrix, Matrix};

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(0u64..4, rows * cols).prop_map(move |data| {
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m[(r, c)] = data[r * cols + c];
                }
            }
            m
        })
    })
}

fn arb_logic_matrix(max_arity: usize) -> impl Strategy<Value = LogicMatrix> {
    (0..=max_arity).prop_flat_map(|arity| {
        proptest::collection::vec(any::<bool>(), 1 << arity).prop_map(move |bits| {
            let mut m = LogicMatrix::constant_false(arity);
            for (j, &b) in bits.iter().enumerate() {
                m.set_column(j, BoolVec::new(b));
            }
            m
        })
    })
}

fn arb_args(arity: usize) -> impl Strategy<Value = Vec<BoolVec>> {
    proptest::collection::vec(any::<bool>().prop_map(BoolVec::new), arity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 1: the dimensions of X ⋉ Y are (m·t/n, q·t/p).
    #[test]
    fn stp_dimension_rule(x in arb_matrix(4), y in arb_matrix(4)) {
        let (m, n) = x.shape();
        let (p, q) = y.shape();
        let t = {
            // lcm
            fn gcd(a: usize, b: usize) -> usize { if b == 0 { a } else { gcd(b, a % b) } }
            n / gcd(n, p) * p
        };
        let r = x.stp(&y);
        prop_assert_eq!(r.shape(), (m * t / n, q * t / p));
    }

    /// The STP is associative.
    #[test]
    fn stp_is_associative(a in arb_matrix(3), b in arb_matrix(3), c in arb_matrix(3)) {
        let left = a.stp(&b).stp(&c);
        let right = a.stp(&b.stp(&c));
        prop_assert_eq!(left, right);
    }

    /// Property 1 (swap with a column vector): Z ⋉ A = (I_t ⊗ A) ⋉ Z.
    #[test]
    fn stp_column_swap_property(a in arb_matrix(3), entries in proptest::collection::vec(0u64..4, 1..4)) {
        let z = Matrix::column(&entries);
        let left = z.stp(&a);
        let right = Matrix::identity(entries.len()).kron(&a).stp(&z);
        prop_assert_eq!(left, right);
    }

    /// Logic-matrix composition agrees with dense STP (Definition 2 +
    /// Example 1 generalised).
    #[test]
    fn logic_composition_matches_dense(a in arb_logic_matrix(3), b in arb_logic_matrix(3)) {
        prop_assume!(a.arity() >= 1);
        prop_assume!(a.arity() + b.arity() - 1 <= 8);
        let composed = a.stp_logic(&b);
        let dense = a.to_matrix().stp(&b.to_matrix());
        prop_assert_eq!(LogicMatrix::from_matrix(&dense).expect("still a logic matrix"), composed);
    }

    /// Applying a logic matrix column by column equals full application.
    #[test]
    fn partial_application_is_consistent(m in arb_logic_matrix(4), flip in any::<bool>()) {
        prop_assume!(m.arity() >= 1);
        let args: Vec<BoolVec> = (0..m.arity()).map(|i| BoolVec::new((i % 2 == 0) ^ flip)).collect();
        let mut current = m.clone();
        for &a in &args {
            current = current.apply_first(a);
        }
        prop_assert_eq!(current.column(0), m.apply(&args));
    }

    /// The swap matrix really swaps stacked Boolean arguments.
    #[test]
    fn swap_matrix_swaps(a in any::<bool>(), b in any::<bool>()) {
        let x = BoolVec::new(a).to_matrix();
        let y = BoolVec::new(b).to_matrix();
        let swapped = swap_matrix(2, 2).stp(&x).stp(&y);
        prop_assert_eq!(swapped, y.stp(&x));
    }

    /// The power-reducing matrix removes duplicated basis vectors.
    #[test]
    fn power_reduction_on_stacked_arguments(args in arb_args(3)) {
        let stacked = stack_arguments(&args);
        let dim = stacked.rows();
        let squared = stacked.kron(&stacked);
        prop_assert_eq!(power_reducing_matrix(dim).stp(&stacked), squared);
    }

    /// Retrieval matrices extract each stacked variable.
    #[test]
    fn retrieval_matrices_extract(args in arb_args(4)) {
        prop_assume!(!args.is_empty());
        let stacked = stack_arguments(&args);
        for (i, expected) in args.iter().enumerate() {
            let s = retrieval_matrix(i + 1, args.len());
            prop_assert_eq!(s.stp(&stacked), expected.to_matrix());
        }
    }

    /// Truth-table round trips preserve the function.
    #[test]
    fn truth_table_round_trip(m in arb_logic_matrix(5)) {
        let bits = m.to_truth_table_bits();
        let back = LogicMatrix::from_truth_table_bits(m.arity(), &bits);
        prop_assert_eq!(back, m);
    }
}
