//! Auxiliary structural matrices used when normalising STP expressions:
//! the swap matrix, the power-reducing matrix and variable-retrieval
//! matrices.
//!
//! These matrices let any STP expression over Boolean column vectors be
//! rewritten into the canonical form `M_Φ ⋉ x₁ ⋉ … ⋉ xₙ` of Property 3:
//!
//! * the **swap matrix** `W[m, n]` reorders factors: `x ⋉ y = W[m, n] ⋉ y ⋉ x`
//!   for column vectors `x ∈ ℝᵐ`, `y ∈ ℝⁿ`;
//! * the **power-reducing matrix** `M_r(k)` removes duplicated factors:
//!   `z ⋉ z = M_r(k) ⋉ z` for any canonical basis vector `z ∈ ℝᵏ`;
//! * the **retrieval matrix** `S_i^n` extracts a single variable from the
//!   stacked vector `x₍ₙ₎ = x₁ ⋉ … ⋉ xₙ`: `x_i = S_i^n ⋉ x₍ₙ₎`.

use crate::Matrix;

/// The swap matrix `W[m, n]`, an `mn × mn` permutation matrix such that for
/// column vectors `x ∈ ℝᵐ` and `y ∈ ℝⁿ`:
///
/// `W[m, n] ⋉ x ⋉ y = y ⋉ x`.
///
/// ```
/// use stp::{swap, BoolVec, Matrix};
///
/// let x = BoolVec::TRUE.to_matrix();
/// let y = BoolVec::FALSE.to_matrix();
/// let swapped = swap::swap_matrix(2, 2).stp(&x).stp(&y);
/// assert_eq!(swapped, y.stp(&x));
/// ```
pub fn swap_matrix(m: usize, n: usize) -> Matrix {
    let dim = m * n;
    let mut w = Matrix::zeros(dim, dim);
    // Column index of x ⊗ y for basis vectors e_i ⊗ e_j is i*n + j; the swap
    // matrix sends it to e_j ⊗ e_i at position j*m + i.
    for i in 0..m {
        for j in 0..n {
            w[(j * m + i, i * n + j)] = 1;
        }
    }
    w
}

/// The generalised power-reducing matrix `M_r(k)`, a `k² × k` matrix such
/// that `z ⋉ z = M_r(k) ⋉ z` for every canonical basis vector `z ∈ ℝᵏ`.
///
/// For `k = 2` this is the classical `M_r = δ₄[1, 4]` of the STP literature.
pub fn power_reducing_matrix(k: usize) -> Matrix {
    let mut m = Matrix::zeros(k * k, k);
    for i in 0..k {
        m[(i * k + i, i)] = 1;
    }
    m
}

/// The retrieval matrix `S_i^n` (1-based `i`), a `2 × 2ⁿ` matrix such that
/// `x_i = S_i^n ⋉ x₍ₙ₎` where `x₍ₙ₎ = x₁ ⋉ … ⋉ xₙ` is the stacked argument
/// vector of `n` Boolean variables.
///
/// # Panics
///
/// Panics if `i` is zero or greater than `n`.
pub fn retrieval_matrix(i: usize, n: usize) -> Matrix {
    assert!(i >= 1 && i <= n, "retrieval index out of range");
    let front = Matrix::ones_row(1usize << (i - 1));
    let back = Matrix::ones_row(1usize << (n - i));
    front.kron(&Matrix::identity(2)).kron(&back)
}

/// Stacks a sequence of Boolean basis column vectors into the single column
/// vector `x₍ₙ₎ = x₁ ⋉ … ⋉ xₙ` of dimension `2ⁿ`.
pub fn stack_arguments(args: &[crate::BoolVec]) -> Matrix {
    let mut acc = Matrix::identity(1);
    for a in args {
        acc = acc.kron(&a.to_matrix());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoolVec;

    #[test]
    fn swap_matrix_swaps_boolean_vectors() {
        for a in [BoolVec::TRUE, BoolVec::FALSE] {
            for b in [BoolVec::TRUE, BoolVec::FALSE] {
                let left = swap_matrix(2, 2).stp(&a.to_matrix()).stp(&b.to_matrix());
                let right = b.to_matrix().stp(&a.to_matrix());
                assert_eq!(left, right);
            }
        }
    }

    #[test]
    fn swap_matrix_rectangular() {
        // x in R^2, y in R^4 (a stacked pair).
        let x = BoolVec::TRUE.to_matrix();
        let y = stack_arguments(&[BoolVec::FALSE, BoolVec::TRUE]);
        let left = swap_matrix(2, 4).stp(&x).stp(&y);
        let right = y.stp(&x);
        assert_eq!(left, right);
    }

    #[test]
    fn power_reduction() {
        for k_log in 1..=3usize {
            let k = 1usize << k_log;
            let mr = power_reducing_matrix(k);
            for idx in 0..k {
                let mut entries = vec![0u64; k];
                entries[idx] = 1;
                let z = Matrix::column(&entries);
                let squared = z.kron(&z);
                assert_eq!(mr.stp(&z), squared);
            }
        }
    }

    #[test]
    fn retrieval_extracts_each_variable() {
        let args = [BoolVec::TRUE, BoolVec::FALSE, BoolVec::TRUE, BoolVec::FALSE];
        let stacked = stack_arguments(&args);
        for (i, expected) in args.iter().enumerate() {
            let s = retrieval_matrix(i + 1, args.len());
            assert_eq!(s.stp(&stacked), expected.to_matrix());
        }
    }

    #[test]
    #[should_panic(expected = "retrieval index out of range")]
    fn retrieval_rejects_zero() {
        retrieval_matrix(0, 3);
    }

    #[test]
    fn stack_dimensions() {
        let stacked = stack_arguments(&[BoolVec::TRUE; 5]);
        assert_eq!(stacked.shape(), (32, 1));
        assert_eq!(stacked[(0, 0)], 1);
    }
}
