use crate::StpError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense matrix over unsigned integers.
///
/// The semi-tensor product only ever needs 0/1 entries when manipulating
/// logic matrices, but the general algebra (Kronecker products, identity
/// padding, swap matrices) is defined over arbitrary integer matrices, so the
/// element type is `u64` to keep intermediate products exact.
///
/// Storage is row-major.
///
/// ```
/// use stp::Matrix;
///
/// let a = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
/// let i = Matrix::identity(2);
/// assert_eq!(a.mul(&i).unwrap(), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl Matrix {
    /// Creates a zero matrix of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix `I_n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[&[u64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a column vector from a slice.
    pub fn column(entries: &[u64]) -> Self {
        assert!(!entries.is_empty(), "column vector must be non-empty");
        Matrix {
            rows: entries.len(),
            cols: 1,
            data: entries.to_vec(),
        }
    }

    /// Builds a row vector from a slice.
    pub fn row(entries: &[u64]) -> Self {
        assert!(!entries.is_empty(), "row vector must be non-empty");
        Matrix {
            rows: 1,
            cols: entries.len(),
            data: entries.to_vec(),
        }
    }

    /// Builds a `1 × n` row of ones (written `1ₙᵀ` in the STP literature).
    pub fn ones_row(n: usize) -> Self {
        Matrix {
            rows: 1,
            cols: n,
            data: vec![1; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Dimensions as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the entry at `(row, col)`, or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<u64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Ordinary matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`StpError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, StpError> {
        if self.cols != rhs.rows {
            return Err(StpError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
                operation: "ordinary matrix product",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                }
            }
        }
        Ok(out)
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self.data[i * self.cols + j];
                if a == 0 {
                    continue;
                }
                for p in 0..rhs.rows {
                    for q in 0..rhs.cols {
                        out.data[(i * rhs.rows + p) * cols + (j * rhs.cols + q)] =
                            a * rhs.data[p * rhs.cols + q];
                    }
                }
            }
        }
        out
    }

    /// Semi-tensor product `self ⋉ rhs` (Definition 1).
    ///
    /// `X ⋉ Y = (X ⊗ I_{t/n}) · (Y ⊗ I_{t/p})` where `n = X.cols()`,
    /// `p = Y.rows()` and `t = lcm(n, p)`.  The STP is defined for matrices
    /// of arbitrary dimensions, so this never fails.
    pub fn stp(&self, rhs: &Matrix) -> Matrix {
        let n = self.cols;
        let p = rhs.rows;
        let t = lcm(n, p);
        let left = if t / n == 1 {
            self.clone()
        } else {
            self.kron(&Matrix::identity(t / n))
        };
        let right = if t / p == 1 {
            rhs.clone()
        } else {
            rhs.kron(&Matrix::identity(t / p))
        };
        left.mul(&right)
            .expect("STP padding guarantees conformable dimensions")
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Returns `true` if every column contains exactly one `1` and zeros
    /// elsewhere — i.e. the matrix is a *logic matrix* when it has two rows.
    pub fn is_column_stochastic_boolean(&self) -> bool {
        for j in 0..self.cols {
            let mut ones = 0usize;
            for i in 0..self.rows {
                match self.data[i * self.cols + j] {
                    0 => {}
                    1 => ones += 1,
                    _ => return false,
                }
            }
            if ones != 1 {
                return false;
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = u64;

    fn index(&self, (row, col): (usize, usize)) -> &u64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut u64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Greatest common divisor.
pub(crate) fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple.
pub(crate) fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral_for_mul() {
        let a = Matrix::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.mul(&Matrix::identity(3)).unwrap(), a);
        assert_eq!(Matrix::identity(2).mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_rejects_bad_dims() {
        let a = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
        let b = Matrix::from_rows(&[&[1, 2, 3]]);
        assert!(matches!(a.mul(&b), Err(StpError::DimensionMismatch { .. })));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = Matrix::from_rows(&[&[1, 2]]);
        let b = Matrix::from_rows(&[&[0, 3], &[4, 0]]);
        let k = a.kron(&b);
        assert_eq!(k.shape(), (2, 4));
        assert_eq!(k[(0, 1)], 3);
        assert_eq!(k[(0, 3)], 6);
        assert_eq!(k[(1, 0)], 4);
        assert_eq!(k[(1, 2)], 8);
    }

    #[test]
    fn stp_reduces_to_ordinary_product_when_conformable() {
        let a = Matrix::from_rows(&[&[1, 0], &[0, 1]]);
        let b = Matrix::from_rows(&[&[2, 1], &[1, 2]]);
        assert_eq!(a.stp(&b), a.mul(&b).unwrap());
    }

    #[test]
    fn stp_dimension_rule() {
        // X in M_{2x4}, Y = I_2: t = lcm(4, 2) = 4, result stays 2x4 and equals X.
        let x = Matrix::from_rows(&[&[1, 1, 1, 0], &[0, 0, 0, 1]]);
        let y = Matrix::identity(2);
        let r = x.stp(&y);
        assert_eq!(r.shape(), (2, 4));
        assert_eq!(r, x);
    }

    #[test]
    fn stp_associativity_on_small_matrices() {
        let a = Matrix::from_rows(&[&[1, 0, 1], &[0, 1, 1]]);
        let b = Matrix::from_rows(&[&[1, 1], &[0, 1], &[1, 0]]);
        let c = Matrix::from_rows(&[&[1], &[2]]);
        let left = a.stp(&b).stp(&c);
        let right = a.stp(&b.stp(&c));
        assert_eq!(left, right);
    }

    #[test]
    fn swap_property_row_vector() {
        // Property 1: A ⋉ Z_r = Z_r ⋉ (I_t ⊗ A) for a row vector Z_r of length t.
        let a = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
        let z = Matrix::row(&[5, 6, 7]);
        let left = a.stp(&z);
        let right = z.stp(&Matrix::identity(3).kron(&a));
        assert_eq!(left, right);
    }

    #[test]
    fn swap_property_column_vector() {
        // Property 1: Z_c ⋉ A = (I_t ⊗ A) ⋉ Z_c for a column vector Z_c of length t.
        let a = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
        let z = Matrix::column(&[5, 6, 7]);
        let left = z.stp(&a);
        let right = Matrix::identity(3).kron(&a).stp(&z);
        assert_eq!(left, right);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn column_stochastic_detection() {
        let good = Matrix::from_rows(&[&[1, 0, 1, 1], &[0, 1, 0, 0]]);
        assert!(good.is_column_stochastic_boolean());
        let bad = Matrix::from_rows(&[&[1, 0], &[1, 1]]);
        assert!(!bad.is_column_stochastic_boolean());
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(lcm(12, 8), 24);
        assert_eq!(lcm(1, 7), 7);
    }
}
