//! # stp — semi-tensor product of matrices
//!
//! This crate implements the matrix algebra used by the STP-based circuit
//! simulator of *"A Semi-Tensor Product based Circuit Simulation for
//! SAT-sweeping"* (DATE 2024):
//!
//! * [`Matrix`] — dense integer matrices with the ordinary product, the
//!   Kronecker product and the **semi-tensor product** (Definition 1 of the
//!   paper): `X ⋉ Y = (X ⊗ I_{t/n}) · (Y ⊗ I_{t/p})` with `t = lcm(n, p)`.
//! * [`BoolVec`] — Boolean values as the column vectors
//!   `True = [1, 0]ᵀ`, `False = [0, 1]ᵀ` (the set `B` of the paper).
//! * [`LogicMatrix`] — `2 × 2ⁿ` logic matrices whose columns are elements of
//!   `B`, stored bit-packed.  A logic matrix is exactly a truth table read in
//!   the paper's right-to-left column convention; the *structural matrix*
//!   `M_σ` of an operator `σ` is provided for all common Boolean operators.
//! * [`swap`] — the swap matrix `W[m,n]`, the power-reducing matrix and the
//!   variable-retrieval matrices used when normalising STP expressions.
//! * [`Expr`] and [`canonical_form`] — a tiny Boolean-expression AST and the
//!   algebraic construction of the canonical form `M_Φ` such that
//!   `Φ(x₁,…,xₙ) = M_Φ ⋉ x₁ ⋉ … ⋉ xₙ` (Property 3 of the paper).
//!
//! ```
//! use stp::{BoolVec, LogicMatrix};
//!
//! // Prove a → b = ¬a ∨ b (Example 1 of the paper).
//! let implies = LogicMatrix::implies();
//! let or_not = LogicMatrix::or().stp_logic(&LogicMatrix::not());
//! assert_eq!(implies, or_not);
//!
//! // Simulate with the pattern a = false, b = true.
//! let value = implies.apply(&[BoolVec::FALSE, BoolVec::TRUE]);
//! assert_eq!(value, BoolVec::TRUE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boolean;
mod canonical;
mod error;
mod logic_matrix;
mod matrix;
pub mod swap;

pub use boolean::BoolVec;
pub use canonical::{canonical_form, canonical_form_enumerated, simulate_canonical, Expr};
pub use error::StpError;
pub use logic_matrix::LogicMatrix;
pub use matrix::Matrix;
