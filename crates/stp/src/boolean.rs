use crate::Matrix;
use std::fmt;

/// A Boolean value represented as a column vector of the set `B`
/// (Equation (1) of the paper):
///
/// * `True  = [1, 0]ᵀ`
/// * `False = [0, 1]ᵀ`
///
/// In the delta notation of the STP literature these are `δ₂¹` and `δ₂²`.
///
/// ```
/// use stp::BoolVec;
///
/// assert_eq!(BoolVec::from(true), BoolVec::TRUE);
/// assert_eq!(BoolVec::TRUE.negate(), BoolVec::FALSE);
/// assert!(bool::from(BoolVec::TRUE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolVec {
    /// `true` iff the vector is `[1, 0]ᵀ`.
    value: bool,
}

impl BoolVec {
    /// The vector `[1, 0]ᵀ`.
    pub const TRUE: BoolVec = BoolVec { value: true };
    /// The vector `[0, 1]ᵀ`.
    pub const FALSE: BoolVec = BoolVec { value: false };

    /// Creates a Boolean vector from a `bool`.
    pub fn new(value: bool) -> Self {
        BoolVec { value }
    }

    /// The underlying Boolean value.
    pub fn value(self) -> bool {
        self.value
    }

    /// Logical negation, i.e. multiplication by the structural matrix `M¬`.
    #[must_use]
    pub fn negate(self) -> Self {
        BoolVec { value: !self.value }
    }

    /// The delta index of this vector: `δ₂¹` for true (index 1), `δ₂²` for
    /// false (index 2), following the column convention of logic matrices.
    pub fn delta_index(self) -> usize {
        if self.value {
            1
        } else {
            2
        }
    }

    /// The row of the vector that contains the `1`: `0` for true, `1` for
    /// false.  This is the index used when a logic matrix column is selected
    /// by an STP multiplication.
    pub fn selector(self) -> usize {
        if self.value {
            0
        } else {
            1
        }
    }

    /// Converts to a dense `2 × 1` [`Matrix`].
    pub fn to_matrix(self) -> Matrix {
        if self.value {
            Matrix::column(&[1, 0])
        } else {
            Matrix::column(&[0, 1])
        }
    }

    /// Parses a dense `2 × 1` matrix back into a Boolean vector, returning
    /// `None` when the matrix is not an element of `B`.
    pub fn from_matrix(m: &Matrix) -> Option<Self> {
        if m.shape() != (2, 1) {
            return None;
        }
        match (m.get(0, 0)?, m.get(1, 0)?) {
            (1, 0) => Some(BoolVec::TRUE),
            (0, 1) => Some(BoolVec::FALSE),
            _ => None,
        }
    }
}

impl From<bool> for BoolVec {
    fn from(value: bool) -> Self {
        BoolVec { value }
    }
}

impl From<BoolVec> for bool {
    fn from(v: BoolVec) -> Self {
        v.value
    }
}

impl fmt::Display for BoolVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.value {
            write!(f, "[1 0]ᵀ")
        } else {
            write!(f, "[0 1]ᵀ")
        }
    }
}

/// Computes the column index selected by a sequence of Boolean vectors when
/// they multiply a `2 × 2ⁿ` logic matrix from the right.
///
/// The paper reads truth-table columns *right to left*: the assignment
/// `x₁ = 1, …, xₙ = 1` selects column 0 and the all-false assignment selects
/// column `2ⁿ - 1`.  Equivalently the selected column is the big-endian
/// number formed by the *selector* bits of the arguments.
pub(crate) fn column_index(args: &[BoolVec]) -> usize {
    let mut idx = 0usize;
    for a in args {
        idx = (idx << 1) | a.selector();
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_conversion() {
        assert!(BoolVec::TRUE.value());
        assert!(!BoolVec::FALSE.value());
        assert_eq!(BoolVec::from(true), BoolVec::TRUE);
        assert!(!bool::from(BoolVec::FALSE));
    }

    #[test]
    fn negation() {
        assert_eq!(BoolVec::TRUE.negate(), BoolVec::FALSE);
        assert_eq!(BoolVec::FALSE.negate(), BoolVec::TRUE);
    }

    #[test]
    fn delta_and_selector() {
        assert_eq!(BoolVec::TRUE.delta_index(), 1);
        assert_eq!(BoolVec::FALSE.delta_index(), 2);
        assert_eq!(BoolVec::TRUE.selector(), 0);
        assert_eq!(BoolVec::FALSE.selector(), 1);
    }

    #[test]
    fn matrix_round_trip() {
        for v in [BoolVec::TRUE, BoolVec::FALSE] {
            assert_eq!(BoolVec::from_matrix(&v.to_matrix()), Some(v));
        }
        let not_bool = Matrix::column(&[1, 1]);
        assert_eq!(BoolVec::from_matrix(&not_bool), None);
    }

    #[test]
    fn column_index_convention() {
        // All-true selects column 0; all-false selects the last column.
        assert_eq!(column_index(&[BoolVec::TRUE, BoolVec::TRUE]), 0);
        assert_eq!(column_index(&[BoolVec::TRUE, BoolVec::FALSE]), 1);
        assert_eq!(column_index(&[BoolVec::FALSE, BoolVec::TRUE]), 2);
        assert_eq!(column_index(&[BoolVec::FALSE, BoolVec::FALSE]), 3);
    }

    #[test]
    fn display() {
        assert_eq!(BoolVec::TRUE.to_string(), "[1 0]ᵀ");
        assert_eq!(BoolVec::FALSE.to_string(), "[0 1]ᵀ");
    }
}
